//! # mmv — Materialized Mediated Views
//!
//! A reproduction, as a production-quality Rust workspace, of
//! **Lu, Moerkotte, Schu & Subrahmanian, "Efficient Maintenance of
//! Materialized Mediated Views" (SIGMOD 1995)**.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] (`mmv-core`) — the paper's contribution: `T_P`/`W_P`
//!   fixpoints over constrained databases, support-tracked non-ground
//!   views, Extended DRed, Straight Delete, insertion, and the
//!   zero-maintenance external-update story of Section 4.
//! * [`constraints`] (`mmv-constraints`) — the constraint language and
//!   solver substrate.
//! * [`domains`] (`mmv-domains`) — the mediator's external systems
//!   (arith, relational, spatial, face recognition, text) behind the
//!   `in(X, dom:f(args))` domain calls.
//! * [`service`] (`mmv-service`) — the concurrent view service: batched
//!   update transactions, epoch-tagged snapshot reads, and a replayable
//!   update log over the core maintenance algorithms.
//! * [`obs`] (`mmv-obs`) — dependency-free observability: the lock-free
//!   metrics registry, batch-lifecycle traces, and Prometheus/JSON
//!   exposition the service reports through.
//! * [`storage`] (`mmv-storage`) — the relational engine backing the
//!   simulated PARADOX/DBASE databases.
//! * [`datalog`] (`mmv-datalog`) — ground Datalog baselines (semi-naive,
//!   DRed, counting, recomputation).
//!
//! See `examples/` for runnable scenarios (start with
//! `cargo run --example quickstart`) and DESIGN.md / EXPERIMENTS.md for
//! the reproduction map.

#![forbid(unsafe_code)]

pub use mmv_constraints as constraints;
pub use mmv_core as core;
pub use mmv_datalog as datalog;
pub use mmv_domains as domains;
pub use mmv_obs as obs;
pub use mmv_service as service;
pub use mmv_storage as storage;
