//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of criterion 0.5's API that `benches/maintenance.rs`
//! uses: [`Criterion`] with `sample_size`/`measurement_time`/`warm_up_time`,
//! `bench_function`, `benchmark_group`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's full statistical pipeline this shim runs a
//! warm-up, then collects per-iteration wall-clock samples for the
//! configured measurement time and reports min / median / mean / p95.
//! That is enough for the coarse A/B comparisons the E1–E7 experiments
//! make; swap the real criterion back in when a registry is available —
//! no bench-source changes are needed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How much setup output to batch per measured call in
/// [`Bencher::iter_batched`]. The shim runs one setup per routine call
/// regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine input: criterion would batch many per allocation.
    SmallInput,
    /// Large routine input: criterion would batch few per allocation.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    cfg: &'a Config,
    samples: Vec<Duration>,
}

impl Bencher<'_> {
    /// Measures `routine` repeatedly until the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_deadline = Instant::now() + self.cfg.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let deadline = Instant::now() + self.cfg.measurement_time;
        while Instant::now() < deadline || self.samples.len() < self.cfg.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter`], but re-creates the routine's input with
    /// `setup` outside the timed region before every call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.cfg.warm_up_time;
        while Instant::now() < warm_deadline {
            let input = setup();
            black_box(routine(input));
        }
        let deadline = Instant::now() + self.cfg.measurement_time;
        while Instant::now() < deadline || self.samples.len() < self.cfg.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

/// The benchmark driver: configuration plus result reporting.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    cfg: Config,
}

impl Criterion {
    /// Sets the minimum number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.cfg.sample_size = n;
        self
    }

    /// Sets the wall-clock measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Sets the warm-up period run before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&self.cfg, id, f);
        self
    }

    /// Opens a named group; benchmark ids are prefixed with `name/`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            cfg: &self.cfg,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    cfg: &'a Config,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self.cfg, &format!("{}/{}", self.name, id), f);
        self
    }

    /// Ends the group. (The shim reports eagerly; this is a no-op.)
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher<'_>)>(cfg: &Config, id: &str, mut f: F) {
    let mut b = Bencher {
        cfg,
        samples: Vec::with_capacity(cfg.sample_size),
    };
    f(&mut b);
    let mut ns: Vec<u128> = b.samples.iter().map(|d| d.as_nanos()).collect();
    if ns.is_empty() {
        println!("{id:<40} no samples collected");
        return;
    }
    ns.sort_unstable();
    let min = ns[0];
    let median = ns[ns.len() / 2];
    let p95 = ns[((ns.len() * 95) / 100).min(ns.len() - 1)];
    let mean = ns.iter().sum::<u128>() / ns.len() as u128;
    println!(
        "{id:<40} n={:<5} min {:>12}  median {:>12}  mean {:>12}  p95 {:>12}",
        ns.len(),
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(p95),
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declares a benchmark group: a named runner function plus its
/// configuration and target benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_criterion() -> Criterion {
        Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn iter_collects_at_least_sample_size() {
        let mut c = fast_criterion();
        c.bench_function("smoke_iter", |b| b.iter(|| 2 + 2));
        let mut g = c.benchmark_group("grp");
        g.bench_function("smoke_batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn group_macros_compile_and_run() {
        fn target(c: &mut Criterion) {
            c.bench_function("macro_target", |b| b.iter(|| black_box(1)));
        }
        criterion_group! {
            name = benches;
            config = fast_criterion();
            targets = target
        }
        benches();
    }

    #[test]
    fn format_is_humane() {
        assert_eq!(fmt_ns(12), "12 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000), "2.000 ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.200 s");
    }
}
