//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest 1.x's API that its test suites use:
//! the [`proptest!`] macro with `#![proptest_config(..)]`, the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, [`Just`],
//! [`prop_oneof!`] (weighted and unweighted), `collection::vec`, integer
//! range strategies, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs via
//!   the panic message (`Debug`-formatted) but is not minimized.
//! * **Deterministic by default.** Each test function derives its RNG
//!   seed from its name, so CI runs are reproducible; set
//!   `PROPTEST_SEED` to explore a different stream, and `PROPTEST_CASES`
//!   to change the case count (both honored the same way the test suites
//!   already use them).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::SmallRng;
pub use rand::SeedableRng;

/// The RNG handed to strategies. An alias so strategy signatures read
/// like proptest's `TestRunner`-based ones.
pub type TestRng = SmallRng;

/// A generator of random values of type `Self::Value`.
///
/// Unlike real proptest there is no value tree: `new_value` returns the
/// value directly and nothing shrinks.
pub trait Strategy {
    /// The type of values this strategy generates.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: std::fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to produce a dependent strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `pred`, regenerating instead.
    /// Gives up (panics with `reason`) after 1000 consecutive rejections.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: std::fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter: too many rejections: {}", self.reason);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                use rand::Rng as _;
                let (lo, hi) = self.clone().into_inner();
                assert!(lo <= hi, "empty range strategy");
                if hi < <$t>::MAX {
                    rng.gen_range(lo..hi + 1)
                } else if lo > <$t>::MIN {
                    rng.gen_range(lo - 1..hi) + 1
                } else {
                    // Full-width range: any sample is uniform enough here.
                    rng.gen_range(<$t>::MIN..<$t>::MAX)
                }
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
);

/// A weighted union of strategies, built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T: std::fmt::Debug> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = options.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof: zero total weight");
        Self { options, total }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        use rand::Rng as _;
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.options {
            if pick < *w {
                return s.new_value(rng);
            }
            pick -= w;
        }
        unreachable!("prop_oneof: weight bookkeeping")
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec()`](fn@vec): a fixed size, `a..b`, or `a..=b`.
    pub trait IntoSizeRange {
        /// The inclusive (lo, hi) bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start() <= self.end(), "empty size range");
            (*self.start(), *self.end())
        }
    }

    /// A strategy for `Vec`s of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    /// A strategy for `BTreeSet`s of values from `element`. The size
    /// range bounds the number of *insertion attempts*; duplicates
    /// collapse, so the set may come out smaller, as in real proptest.
    pub fn btree_set<S: Strategy>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        let (lo, hi) = size.bounds();
        BTreeSetStrategy { element, lo, hi }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            use rand::Rng as _;
            let n = if self.lo == self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi + 1)
            };
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// See [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng as _;
            let n = if self.lo == self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi + 1)
            };
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for source compatibility; the shim never persists
    /// failures, so only `None` makes sense.
    pub failure_persistence: Option<()>,
    /// Accepted for source compatibility; the shim does not shrink.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; the shim caps `prop_filter`
    /// rejections at a fixed 1000 per value instead.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            failure_persistence: None,
            max_shrink_iters: 1024,
            max_global_rejects: 1024,
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod runner {
    use super::{ProptestConfig, Strategy, TestRng};
    use rand::SeedableRng as _;

    /// Derives a reproducible per-test seed: `PROPTEST_SEED` if set,
    /// otherwise an FNV-1a hash of the test name.
    pub fn seed_for(test_name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse() {
                return seed;
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Runs `body` against `cases` random values of `strategy`,
    /// reporting the failing input on panic.
    pub fn run<S: Strategy>(
        config: &ProptestConfig,
        test_name: &str,
        strategy: &S,
        body: impl Fn(&S::Value),
    ) {
        let mut rng = TestRng::seed_from_u64(seed_for(test_name));
        for case in 0..config.cases {
            let value = strategy.new_value(&mut rng);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&value)));
            if let Err(payload) = result {
                eprintln!(
                    "proptest (shim): {test_name} failed at case {case}/{} with input:\n  {value:#?}",
                    config.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Asserts a condition inside a property, reporting the inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property, reporting the inputs on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property, reporting the inputs on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks among several strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running the body against random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ($($strategy,)+);
                $crate::runner::run(
                    &config,
                    concat!(module_path!(), "::", stringify!($name)),
                    &strategy,
                    |__values| {
                        let ($($arg,)+) = __values.clone();
                        $body
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vec_generate_in_bounds() {
        use crate::SeedableRng as _;
        let mut rng = crate::TestRng::seed_from_u64(1);
        let strat = collection::vec((0i64..10, 5u32..=6), 2..5usize);
        for _ in 0..200 {
            let v = strat.new_value(&mut rng);
            assert!((2..5).contains(&v.len()));
            for (a, b) in v {
                assert!((0..10).contains(&a));
                assert!((5..=6).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_respects_zero_weight_paths() {
        use crate::SeedableRng as _;
        let mut rng = crate::TestRng::seed_from_u64(2);
        let strat = prop_oneof![3 => Just(1i64), 1 => 10i64..20];
        let mut low = 0;
        for _ in 0..400 {
            let v = strat.new_value(&mut rng);
            assert!(v == 1 || (10..20).contains(&v));
            if v == 1 {
                low += 1;
            }
        }
        assert!((200..400).contains(&low), "weighting off: {low}/400");
    }

    #[test]
    fn flat_map_sees_outer_value() {
        use crate::SeedableRng as _;
        let mut rng = crate::TestRng::seed_from_u64(3);
        let strat = (1usize..4).prop_flat_map(|n| collection::vec(0i64..5, n..=n));
        for _ in 0..100 {
            let v = strat.new_value(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_roundtrip(x in 0i64..100, v in collection::vec(0u32..3, 0..4usize)) {
            prop_assert!((0..100).contains(&x));
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
