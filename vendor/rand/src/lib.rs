//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *small, deterministic* subset of rand 0.8's API that the
//! benchmark generators use: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through splitmix64 — the same
//! construction rand 0.8's 64-bit `SmallRng` uses — so the statistical
//! quality matches what the real crate would provide. Exact output
//! streams are not guaranteed to match rand's; all workloads in this
//! workspace are generated and consumed by the same code, so only
//! determinism-per-seed matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from integer state.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a range by [`Rng::gen_range`].
pub trait SampleUniform: Copy {
    /// Uniformly samples from `[lo, hi)` using `rng`. `lo < hi` is the
    /// caller's obligation (checked by `gen_range`).
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// The object-safe core of a generator: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniformly samples from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty, as rand 0.8 does.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        // Compare 53 uniform mantissa bits against p, as rand does.
        let bits = self.next_u64() >> 11;
        (bits as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_sample_uniform {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                debug_assert!(lo < hi);
                let span = (hi as $u).wrapping_sub(lo as $u);
                // Widening-multiply rejection-free sampling is overkill
                // here; modulo bias over a 64-bit stream is negligible
                // for benchmark workload spans (< 2^32).
                let r = rng.next_u64() % (span as u64);
                (lo as $u).wrapping_add(r as $u) as $t
            }
        }
    )*};
}

impl_sample_uniform!(
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
);

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl SampleRange<i64> for RangeInclusive<i64> {
    fn sample(self, rng: &mut dyn RngCore) -> i64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        if (lo, hi) == (i64::MIN, i64::MAX) {
            return rng.next_u64() as i64;
        }
        if hi < i64::MAX {
            i64::sample_half_open(lo, hi + 1, rng)
        } else {
            // lo > MIN here (full range handled above): shift down one.
            i64::sample_half_open(lo - 1, hi, rng) + 1
        }
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample(self, rng: &mut dyn RngCore) -> u64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        if (lo, hi) == (u64::MIN, u64::MAX) {
            return rng.next_u64();
        }
        if hi < u64::MAX {
            u64::sample_half_open(lo, hi + 1, rng)
        } else {
            // lo > 0 here (full range handled above): shift down one.
            u64::sample_half_open(lo - 1, hi, rng) + 1
        }
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm behind rand 0.8's 64-bit `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 state expansion, per the xoshiro authors'
            // recommendation (and rand's own seeding path).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<i64> = (0..16).map(|_| a.gen_range(0..1000)).collect();
        let ys: Vec<i64> = (0..16).map(|_| c.gen_range(0..1000)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
