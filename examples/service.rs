//! The concurrent view service: batched transactions, epoch-tagged
//! snapshots, and a replayable update log.
//!
//! A writer thread applies batched update transactions to the paper's
//! law-enforcement mediator while reader threads keep answering
//! "who is a suspect?" off consistent snapshots — no reader ever blocks
//! on maintenance or observes a half-applied batch.
//!
//! Run: `cargo run --example service`

use mmv::constraints::{NoDomains, SolverConfig, Value};
use mmv::core::batch::UpdateBatch;
use mmv::core::parser::{parse_atom, parse_program};
use mmv::core::tp::Operator;
use mmv::core::view::SupportMode;
use mmv::service::{ServiceWorker, ViewService};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn main() {
    // The paper's Example 3 mediator, slightly enlarged: sightings feed
    // "seen with likely narcotics dealer carrying cash", which feeds
    // suspicion.
    let program = "
        seenwith(X, Y) <- X = don & Y = ed.
        seenwith(X, Y) <- X = don & Y = john.
        seenwith(X, Y) <- X = ann & Y = ed.
        swlndc(X, Y) <- || seenwith(X, Y).
        suspect(Y) <- || swlndc(X, Y).
    ";
    let parsed = parse_program(program).expect("program parses");
    let service = Arc::new(
        ViewService::builder()
            .build(parsed.db)
            .expect("initial view builds"),
    );
    let cfg = SolverConfig::default();
    println!(
        "epoch {}: {} view entries",
        service.epoch(),
        service.snapshot().len()
    );

    // Readers: poll the current snapshot until told to stop, checking
    // that epochs only ever move forward.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|r| {
            let service = service.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let cfg = SolverConfig::default();
                let mut last_epoch = 0;
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = service.snapshot();
                    assert!(snap.epoch() >= last_epoch, "epochs must be monotone");
                    last_epoch = snap.epoch();
                    let _ = snap
                        .ask("suspect", &[Value::str("ed")], &NoDomains, &cfg)
                        .expect("snapshot query");
                    reads += 1;
                }
                (r, reads, last_epoch)
            })
        })
        .collect();

    // Writer: a worker thread applying batched transactions. The first
    // batch retracts don's sightings and books a new one; the second
    // clears ed entirely.
    let (tx, worker) = ServiceWorker::spawn(service.clone());
    let batch1 = UpdateBatch::deleting(vec![
        parse_atom("seenwith(X, Y) <- X = don & Y = ed").expect("atom"),
        parse_atom("seenwith(X, Y) <- X = don & Y = john").expect("atom"),
    ])
    .insert(parse_atom("seenwith(X, Y) <- X = don & Y = jane").expect("atom"));
    let batch2 = UpdateBatch::deleting(vec![parse_atom("seenwith(X, Y) <- Y = ed").expect("atom")]);
    tx.submit(batch1).expect("submit");
    tx.submit(batch2).expect("submit");
    drop(tx);
    let applied = worker.join().expect("worker drains");
    println!("worker applied {applied} batches");

    // Let the readers observe the final epoch before stopping them.
    std::thread::sleep(std::time::Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        let (r, reads, epoch) = reader.join().expect("reader");
        println!("reader {r}: {reads} snapshot reads, final epoch {epoch}");
    }

    // The final snapshot: ed is no longer a suspect, jane is.
    let snap = service.snapshot();
    println!("\nfinal view (epoch {}):\n{snap}", snap.epoch());
    assert!(!snap
        .ask("suspect", &[Value::str("ed")], &NoDomains, &cfg)
        .unwrap());
    assert!(snap
        .ask("suspect", &[Value::str("jane")], &NoDomains, &cfg)
        .unwrap());

    // Recovery: replaying the log onto a fresh view reproduces the
    // served state exactly.
    let replayed = service
        .log()
        .replay(
            service.db(),
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            service.config(),
        )
        .expect("replay");
    assert!(replayed.syntactically_equal(&snap.merged_view()));
    println!("log replay reproduces the served view ✓");
}
