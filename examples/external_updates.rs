//! Section 4 in action: external domains change; the `W_P` view needs
//! *no maintenance whatsoever* while staying exactly as accurate as a
//! freshly rebuilt `T_P` view (Theorem 4 + Corollary 1).
//!
//! Run with: `cargo run --example external_updates`

use mmv::constraints::SolverConfig;
use mmv::core::{FixpointConfig, MaintenanceStrategy, MediatedMaterializedView};
use mmv::domains::DomainManager;
use mmv_bench::sensors::{monitoring_db, SensorDomain};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A monitoring mediator: alert_i(X) <- in(X, sensors:read(i)) & X >= 50.
    let n = 64;
    let sensors = Arc::new(SensorDomain::new(n));
    let mut manager = DomainManager::new();
    manager.register(sensors.clone());
    let db = monitoring_db(n, 50);

    let cfg = FixpointConfig::default();
    let mut tp = MediatedMaterializedView::materialize(
        db.clone(),
        MaintenanceStrategy::TpRecompute,
        &manager,
        manager.clock(),
        cfg.clone(),
    )
    .expect("materialize T_P");
    let mut wp = MediatedMaterializedView::materialize(
        db,
        MaintenanceStrategy::WpDeferred,
        &manager,
        manager.clock(),
        cfg,
    )
    .expect("materialize W_P");
    println!(
        "initial views: T_P holds {} entries (all readings below threshold \
         were pruned), W_P holds {} syntactic entries",
        tp.view().len(),
        wp.view().len()
    );

    // A storm of external updates.
    let updates = 200;
    let start = Instant::now();
    for k in 0..updates {
        sensors.set(k % n, vec![30 + (k as i64 % 40), 77]);
        tp.on_external_change(&manager, manager.clock())
            .expect("tp maintenance");
    }
    let tp_time = start.elapsed();

    for k in 0..updates {
        sensors.set(k % n, vec![35 + (k as i64 % 40), 77]);
    }
    let start = Instant::now();
    for _ in 0..updates {
        wp.on_external_change(&manager, manager.clock())
            .expect("wp maintenance");
    }
    let wp_time = start.elapsed();

    println!(
        "{updates} external updates: T_P maintenance {:?}, W_P maintenance {:?} \
         ({}x)",
        tp_time,
        wp_time,
        (tp_time.as_nanos() / wp_time.as_nanos().max(1))
    );

    // Corollary 1: answers agree exactly, at any time, with no W_P work.
    let scfg = SolverConfig::default();
    let mut checked = 0;
    for i in 0..n {
        let pred = format!("alert{i}");
        let a = tp.query(&pred, &[None], &manager, &scfg).expect("tp query");
        let b = wp.query(&pred, &[None], &manager, &scfg).expect("wp query");
        assert_eq!(a, b, "answers diverged on {pred}");
        checked += a.len();
    }
    println!(
        "all {n} alert predicates agree between the maintained T_P view and \
         the untouched W_P view ({checked} alert instances) — Corollary 1 holds."
    );
}
