//! Constrained databases à la Kanellakis–Kuper–Revesz (the paper's
//! Example 2 and Example 6): infinite arithmetic constraint sets,
//! recursive views, and deletion where the counting algorithm fails.
//!
//! Run with: `cargo run --example constrained_db`

use mmv::constraints::{NoDomains, SolverConfig, Value};
use mmv::core::{
    fixpoint, parse_atom, parse_program, stdel_delete, FixpointConfig, Operator, SupportMode,
};
use mmv::datalog::{CountingEngine, DlAtom, DlProgram, DlRule, DlTerm, Fact};
use mmv::domains::{ArithDomain, DomainManager};
use std::sync::Arc;

fn main() {
    let mut manager = DomainManager::new();
    manager.register(Arc::new(ArithDomain));

    // --- 1. Infinite constraint sets, represented symbolically ----------
    // arith:great(3) is the paper's great(X): all integers > 3, held as a
    // symbolic range, "not computed all at once".
    let parsed = parse_program(
        r#"
        % big(X): X > 100, an infinite set
        big(X) <- in(X, arith:great(100)).
        % bounded(X): 95 <= X <= 105
        bounded(X) <- X >= 95 & X <= 105.
        % both: the intersection, finite again
        both(X) <- || big(X), bounded(X).
        "#,
    )
    .expect("parses");
    let cfg = FixpointConfig::default();
    let (view, _) = fixpoint(
        &parsed.db,
        &manager,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg,
    )
    .expect("materializes");
    let scfg = SolverConfig::default();
    let both = view.query("both", &[None], &manager, &scfg).expect("query");
    println!(
        "both(X) = big ∩ bounded = {:?}  (an infinite set intersected down to 5 values)",
        both.iter().map(|t| t[0].clone()).collect::<Vec<_>>()
    );

    // --- 2. The paper's Example 6: a recursive constrained view ----------
    let parsed = parse_program(
        r#"
        p(X, Y) <- X = a & Y = b.
        p(X, Y) <- X = a & Y = c.
        p(X, Y) <- X = c & Y = d.
        a(X, Y) <- || p(X, Y).
        a(X, Y) <- || p(X, Z), a(Z, Y).
        "#,
    )
    .expect("parses");
    let (mut view, _) = fixpoint(
        &parsed.db,
        &NoDomains,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg,
    )
    .expect("materializes");
    println!("\nExample 6 view ({} entries, with supports):", view.len());
    print!("{view}");

    // The counting algorithm cannot even be constructed for the ground
    // analogue of this program — predicate-level recursion means
    // potentially infinite counts.
    let ground = DlProgram::new(
        vec![
            DlRule::new(
                DlAtom::new("a", vec![DlTerm::Var(0), DlTerm::Var(1)]),
                vec![DlAtom::new("p", vec![DlTerm::Var(0), DlTerm::Var(1)])],
            )
            .unwrap(),
            DlRule::new(
                DlAtom::new("a", vec![DlTerm::Var(0), DlTerm::Var(1)]),
                vec![
                    DlAtom::new("p", vec![DlTerm::Var(0), DlTerm::Var(2)]),
                    DlAtom::new("a", vec![DlTerm::Var(2), DlTerm::Var(1)]),
                ],
            )
            .unwrap(),
        ],
        vec![Fact::new("p", vec![Value::str("a"), Value::str("b")])],
    );
    match CountingEngine::new(ground) {
        Err(e) => println!("\ncounting algorithm: {e}"),
        Ok(_) => unreachable!("recursive program must be rejected"),
    }

    // StDel handles it: delete p(c, d); the derived a(c,d) and the
    // recursive a(a,d) go with it (the paper's walk-through).
    let deletion = parse_atom("p(X, Y) <- X = c & Y = d").expect("parses");
    let stats = stdel_delete(&mut view, &deletion, &NoDomains, &scfg).expect("stdel");
    println!(
        "StDel on the recursive view: {} replacements, {} entries removed, 0 rederivations",
        stats.direct_replacements + stats.propagated_replacements,
        stats.removed
    );
    let remaining = view.instances(&NoDomains, &scfg).expect("instances");
    println!("remaining instances:");
    for (pred, args) in &remaining {
        println!("  {pred}{args:?}");
    }
    assert!(remaining.iter().all(|(_, args)| args[1] != Value::str("d")));
}
