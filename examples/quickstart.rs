//! Quickstart: define a mediated view, materialize it, query it, and
//! maintain it under both kinds of updates.
//!
//! Run with: `cargo run --example quickstart`

use mmv::constraints::{NoDomains, SolverConfig, Value};
use mmv::core::{
    fixpoint, insert_atom, parse_atom, parse_program, stdel_delete, FixpointConfig, Operator,
    SupportMode,
};

fn main() {
    // 1. A tiny constrained database (the paper's Example 5 family):
    //    facts carry *constraints*, not just ground tuples.
    let program = r#"
        % base data: b holds the integers 0..9
        b(X) <- X >= 0 & X <= 9.
        % a is everything in b, plus 7..12 independently
        a(X) <- || b(X).
        a(X) <- X >= 7 & X <= 12.
        % c is derived from a
        c(X) <- || a(X).
    "#;
    let parsed = parse_program(program).expect("parses");
    println!("mediator:\n{}", parsed.db);

    // 2. Materialize with T_P, tracking supports (one entry per
    //    derivation, each carrying its derivation index).
    let cfg = FixpointConfig::default();
    let (mut view, stats) = fixpoint(
        &parsed.db,
        &NoDomains,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg,
    )
    .expect("materializes");
    println!(
        "materialized view ({} entries, {} rounds):\n{view}",
        view.len(),
        stats.iterations
    );

    // 3. Query: which values does c hold?
    let scfg = SolverConfig::default();
    let answers = view.query("c", &[None], &NoDomains, &scfg).expect("query");
    println!(
        "c has {} instances: {:?}\n",
        answers.len(),
        answers.iter().map(|t| t[0].clone()).collect::<Vec<_>>()
    );

    // 4. View update, kind 1a — deletion (Straight Delete, Algorithm 2):
    //    remove 8 from b. c keeps 8 via the independent a-fact.
    let deletion = parse_atom("b(X) <- X = 8").expect("parses");
    let dstats = stdel_delete(&mut view, &deletion, &NoDomains, &scfg).expect("stdel");
    println!(
        "deleted [b(8)]: {} direct + {} propagated replacements, no rederivation",
        dstats.direct_replacements, dstats.propagated_replacements
    );
    let b8 = view
        .query("b", &[Some(Value::int(8))], &NoDomains, &scfg)
        .unwrap();
    let c8 = view
        .query("c", &[Some(Value::int(8))], &NoDomains, &scfg)
        .unwrap();
    println!(
        "b(8) gone: {}; c(8) survives via the independent fact: {}\n",
        b8.is_empty(),
        !c8.is_empty()
    );

    // 5. View update, kind 1b — insertion (Algorithm 3): add 20..22 to b;
    //    the insertion propagates up through a to c.
    let insertion = parse_atom("b(X) <- X >= 20 & X <= 22").expect("parses");
    let istats = insert_atom(
        &parsed.db,
        &mut view,
        &insertion,
        &NoDomains,
        Operator::Tp,
        &cfg,
    )
    .expect("insert");
    println!(
        "inserted [b(20..22)]: base added = {}, {} derived entries propagated",
        istats.added, istats.propagated
    );
    let c21 = view
        .query("c", &[Some(Value::int(21))], &NoDomains, &scfg)
        .unwrap();
    println!("c(21) now derivable: {}", !c21.is_empty());
    println!("\nfinal view:\n{view}");
}
