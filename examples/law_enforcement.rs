//! The paper's running example (Example 1 / Figure 1): the
//! law-enforcement mediator spanning five external systems —
//! face extraction, a mugshot database, a PARADOX phone book, a spatial
//! system, and a DBASE employee table.
//!
//! ```text
//!                    ┌───────────────── mediator ─────────────────┐
//!                    │ seenwith ──> swlndc ──> suspect            │
//!                    └─┬──────┬──────┬─────────┬─────────┬────────┘
//!                      │      │      │         │         │
//!                 facextract facedb paradox spatialdb  dbase
//!                 (segment/  (find  (phone   (geocode/ (empl_abc)
//!                  matchface) face/  book)    range)
//!                            name)
//! ```
//!
//! Run with: `cargo run --example law_enforcement`

use mmv::constraints::{SolverConfig, Value};
use mmv::core::{parse_atom, FixpointConfig, MaintenanceStrategy, MediatedMaterializedView};
use mmv_bench::gen::lawenf::{build, person_name, LawEnfSpec};

fn main() {
    // Build a synthetic world: 10 people, 6 surveillance photos; person 0
    // is "don" (the paper's Don Corleone stand-in) and appears in every
    // photo.
    let spec = LawEnfSpec {
        people: 10,
        photos: 6,
        faces_per_photo: 3,
        near_dc_fraction: 0.6,
        employee_fraction: 0.6,
        seed: 42,
    };
    let world = build(&spec);
    println!("domains online: {:?}", world.manager.domain_names());
    println!("mediator:\n{}", world.db);

    // Materialize with W_P: the view is *syntactic* — three constrained
    // atoms, one per clause — and never needs maintenance.
    let mut mv = MediatedMaterializedView::materialize(
        world.db.clone(),
        MaintenanceStrategy::WpDeferred,
        &world.manager,
        world.manager.clock(),
        FixpointConfig::default(),
    )
    .expect("materializes");
    println!(
        "materialized mediated view: {} non-ground entries\n",
        mv.view().len()
    );

    let scfg = SolverConfig {
        product_budget: 5_000_000,
        ..SolverConfig::default()
    };
    let suspects = |mv: &MediatedMaterializedView| {
        mv.query(
            "suspect",
            &[Some(Value::str(&world.target)), None],
            &world.manager,
            &scfg,
        )
        .expect("query")
        .iter()
        .map(|t| t[1].as_str().unwrap_or("?").to_string())
        .collect::<Vec<_>>()
    };
    println!("suspects seen with {}: {:?}\n", world.target, suspects(&mv));

    // External update (kind 2): new surveillance photos arrive. Under
    // W_P, *no maintenance action whatsoever* is needed (Theorem 4).
    // Pick a companion who would qualify as a suspect (near DC and
    // employed) but has not been photographed with don yet; face id
    // i+1 belongs to person i.
    let current = suspects(&mv);
    let (newcomer_idx, newcomer) = (1..spec.people)
        .map(|i| (i, person_name(i)))
        .find(|(i, name)| {
            let near_dc = (*i as f64 / spec.people as f64) < spec.near_dc_fraction;
            near_dc && !current.contains(name)
        })
        .expect("someone lives near DC and is not yet a suspect");
    // Two external systems change at once: the photo arrives, and (if
    // needed) ABC Corp's employee table gains the newcomer.
    let employed = !world
        .dbase
        .read()
        .expect("catalog lock")
        .table("empl_abc")
        .expect("table")
        .select_eq("name", &Value::str(&newcomer))
        .is_empty();
    if !employed {
        world
            .dbase
            .write()
            .expect("catalog lock")
            .insert("empl_abc", &[Value::str(&newcomer)])
            .expect("schema ok");
    }
    world.face.add_photo(
        "surveillancedata",
        "tonight_cam1",
        &[1, 1 + newcomer_idx as u64],
    );
    let action = mv
        .on_external_change(&world.manager, world.manager.clock())
        .expect("maintenance");
    println!("photo of don with {newcomer} added; maintenance action: {action:?}");
    println!("suspects now: {:?}\n", suspects(&mv));

    // View update (kind 1): external evidence clears one association —
    // "the photograph was a forgery intended to frame John" (Example 3).
    let cleared = suspects(&mv).first().cloned().expect("a suspect exists");
    let deletion = parse_atom(&format!("seenwith(don, {cleared})")).expect("parses");
    let stats = mv.delete(&deletion, &world.manager).expect("stdel");
    println!(
        "cleared {cleared} (StDel: {} replacements, {} entries removed)",
        stats.direct_replacements + stats.propagated_replacements,
        stats.removed,
    );
    println!("suspects after clearing: {:?}", suspects(&mv));
}
