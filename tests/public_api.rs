//! Coverage of the remaining public-API surface: boolean queries,
//! view compaction, statistics, database validation, the facade
//! re-exports, and error rendering.

use mmv::constraints::{NoDomains, SolverConfig, Value};
use mmv::core::{
    fixpoint, parse_atom, parse_program, stdel_delete, FixpointConfig, Operator, SupportMode,
};

fn demo_view() -> (mmv::core::ConstrainedDatabase, mmv::core::MaterializedView) {
    let db = parse_program(
        "b(X) <- X >= 0 & X <= 9.\n\
         a(X) <- || b(X).",
    )
    .expect("parses")
    .db;
    let (view, stats) = fixpoint(
        &db,
        &NoDomains,
        Operator::Tp,
        SupportMode::WithSupports,
        &FixpointConfig::default(),
    )
    .expect("fixpoint");
    assert!(stats.derivations_tried >= 2);
    (db, view)
}

#[test]
fn ask_boolean_queries() {
    let (_, view) = demo_view();
    let cfg = SolverConfig::default();
    assert!(view.ask("a", &[Value::int(5)], &NoDomains, &cfg).unwrap());
    assert!(!view.ask("a", &[Value::int(50)], &NoDomains, &cfg).unwrap());
    assert!(!view
        .ask("ghost", &[Value::int(5)], &NoDomains, &cfg)
        .unwrap());
    // Wrong arity: simply no matching instances.
    assert!(!view
        .ask("a", &[Value::int(1), Value::int(2)], &NoDomains, &cfg)
        .unwrap());
}

#[test]
fn compaction_preserves_semantics_and_drops_tombstones() {
    let (_, mut view) = demo_view();
    let cfg = SolverConfig::default();
    let deletion = parse_atom("b(X) <- X >= 0 & X <= 9").expect("parses");
    stdel_delete(&mut view, &deletion, &NoDomains, &cfg).expect("stdel");
    let before_inst = view.instances(&NoDomains, &cfg).unwrap();
    let compacted = view.compact();
    assert!(compacted.len() <= view.len());
    assert_eq!(compacted.instances(&NoDomains, &cfg).unwrap(), before_inst);
    assert!(before_inst.is_empty(), "everything was deleted");
}

#[test]
fn fixpoint_stats_are_meaningful() {
    let db = parse_program(
        "b(X) <- X >= 0 & X <= 4.\n\
         dead(X) <- X >= 10 & X <= 4.  % syntactically unsatisfiable\n\
         a(X) <- X >= 100 || b(X).     % unsolvable join under T_P",
    )
    .expect("parses")
    .db;
    let (view, stats) = fixpoint(
        &db,
        &NoDomains,
        Operator::Tp,
        SupportMode::WithSupports,
        &FixpointConfig::default(),
    )
    .expect("fixpoint");
    assert_eq!(view.len(), 1, "only the b fact survives");
    assert!(stats.pruned_unsolvable >= 1 || stats.pruned_syntactic >= 1);
    // Under W_P everything is kept.
    let (wp, _) = fixpoint(
        &db,
        &NoDomains,
        Operator::Wp,
        SupportMode::WithSupports,
        &FixpointConfig::default(),
    )
    .expect("fixpoint");
    assert!(wp.len() >= 2);
}

#[test]
fn validation_through_parser() {
    let db = parse_program("a(X) <- || ghost(X). a(X, Y) <- X = Y.")
        .expect("parses")
        .db;
    let issues = db.validate();
    assert_eq!(issues.len(), 2, "{issues:?}");
    for i in &issues {
        assert!(!i.to_string().is_empty());
    }
}

#[test]
fn parse_errors_render_positions() {
    let err = parse_program("a(X) <- X >=").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("parse error at 1:"), "{msg}");
}

#[test]
fn facade_reexports_all_crates() {
    // Touch one item from each re-exported crate so the facade stays
    // complete.
    let _ = mmv::constraints::ValueSet::ints_between(1, 3);
    let _ = mmv::storage::Schema::new(vec![("k", mmv::storage::ColumnType::Int)]);
    let _ = mmv::domains::ArithDomain;
    let _ = mmv::datalog::Database::new();
    let _ = mmv::core::ConstrainedDatabase::new();
}

#[test]
fn fixpoint_error_renders() {
    let db = parse_program(
        "n(X) <- X >= 0.\n\
         n(X) <- X > Y || n(Y).",
    )
    .expect("parses")
    .db;
    let cfg = FixpointConfig {
        max_iterations: 4,
        ..FixpointConfig::default()
    };
    let err = fixpoint(
        &db,
        &NoDomains,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg,
    )
    .expect_err("diverges");
    assert!(err.to_string().contains("budget"));
}
