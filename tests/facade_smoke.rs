//! CI smoke test for the `mmv` facade: every step goes through the
//! re-exported paths (`mmv::core`, `mmv::constraints`, ...) so a broken
//! re-export or a crates/facade version skew fails fast, in a test that
//! runs in milliseconds.

use mmv::constraints::{CmpOp, Constraint, NoDomains, Term, Value, Var};
use mmv::core::{
    dred_delete, fixpoint, BodyAtom, Clause, ConstrainedAtom, ConstrainedDatabase, FixpointConfig,
    Operator, SupportMode,
};

fn x() -> Term {
    Term::var(Var(0))
}

fn interval(lo: i64, hi: i64) -> Constraint {
    Constraint::cmp(x(), CmpOp::Ge, Term::int(lo)).and(Constraint::cmp(
        x(),
        CmpOp::Le,
        Term::int(hi),
    ))
}

#[test]
fn facade_constructs_materializes_and_deletes() {
    // Build p <- base, base holding [0, 9], through facade paths only.
    let mut db = ConstrainedDatabase::new();
    db.push(Clause::fact("base", vec![x()], interval(0, 9)));
    db.push(Clause::new(
        "p",
        vec![x()],
        Constraint::truth(),
        vec![BodyAtom::new("base", vec![x()])],
    ));

    let cfg = FixpointConfig::default();
    let (mut view, stats) = fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg)
        .expect("fixpoint over the facade-built database");
    assert!(stats.derivations_tried >= 2);
    assert!(view
        .ask("p", &[Value::int(4)], &NoDomains, &cfg.solver)
        .expect("query p(4)"));

    // Delete base over [0, 4]; Extended DRed must propagate to p.
    let deletion = ConstrainedAtom::new("base", vec![x()], interval(0, 4));
    dred_delete(&db, &mut view, &deletion, &NoDomains, &cfg).expect("dred_delete");
    assert!(!view
        .ask("p", &[Value::int(4)], &NoDomains, &cfg.solver)
        .expect("query p(4) after delete"));
    assert!(view
        .ask("p", &[Value::int(7)], &NoDomains, &cfg.solver)
        .expect("query p(7) after delete"));
}

#[test]
fn facade_sibling_crates_resolve() {
    // Touch each re-exported crate root so a dropped facade dependency
    // cannot go unnoticed.
    let _ = mmv::datalog::Database::default();
    let _ = mmv::domains::DomainManager::new();
    let _ = mmv::storage::Catalog::new();
    let _ = mmv::constraints::SolverConfig::default();
}
