//! Every worked example of the paper, executed end-to-end through the
//! public textual API (parser → fixpoint → maintenance → queries).
//!
//! Examples 4 and 5 share one database whose comparison glyphs are
//! ambiguous in the source scan; the `>=` reading — the one consistent
//! with both walk-throughs — is used here (see
//! `crates/core/src/delete_stdel.rs` for the argument).

use mmv::constraints::{NoDomains, SolverConfig, Value, ValueSet};
use mmv::core::{
    dred_delete, fixpoint, insert_atom, parse_atom, parse_program, stdel_delete, FixpointConfig,
    Operator, SupportMode,
};
use mmv::domains::{Domain, DomainManager};
use std::sync::Arc;

fn cfg() -> FixpointConfig {
    FixpointConfig::default()
}

fn scfg() -> SolverConfig {
    SolverConfig::default()
}

/// Examples 4/5's constrained database.
fn example45_db() -> mmv::core::ConstrainedDatabase {
    parse_program(
        "a(X) <- X >= 3.\n\
         a(X) <- || b(X).\n\
         b(X) <- X >= 5.\n\
         c(X) <- || a(X).",
    )
    .expect("parses")
    .db
}

#[test]
fn example_3_ground_deletion_cascades() {
    // "deleting seenwith(don, john) … the materialized view will be
    // updated by the deletion of the two atoms seenwith(don, john) and
    // swlndc(don, john)."
    let db = parse_program(
        "seenwith(don, john).\n\
         seenwith(don, ed).\n\
         swlndc(X, Y) <- || seenwith(X, Y).",
    )
    .expect("parses")
    .db;
    let (mut view, _) = fixpoint(
        &db,
        &NoDomains,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg(),
    )
    .expect("fixpoint");
    assert_eq!(view.len(), 4);
    let deletion = parse_atom("seenwith(don, john)").expect("parses");
    let stats = stdel_delete(&mut view, &deletion, &NoDomains, &scfg()).expect("stdel");
    // Exactly the two atoms of the paper's P_OUT are deleted.
    assert_eq!(stats.removed, 2);
    let inst = view.instances(&NoDomains, &scfg()).expect("instances");
    assert_eq!(inst.len(), 2);
    assert!(inst.iter().all(|(_, t)| t[1] == Value::str("ed")));
}

#[test]
fn example_4_extended_dred_rederivation() {
    // Delete b(6): a(6) "has a proof independently" via a(X) <- X >= 3
    // and must survive rederivation; likewise c(6) through it.
    let db = example45_db();
    let (mut view, _) =
        fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg()).expect("fixpoint");
    let deletion = parse_atom("b(X) <- X = 6").expect("parses");
    let stats = dred_delete(&db, &mut view, &deletion, &NoDomains, &cfg()).expect("dred");
    assert_eq!(stats.del_atoms, 1);
    assert!(stats.pout_atoms >= 3, "B@6, A@6, C@6 in the overestimate");
    assert!(stats.rederived >= 1, "a@6 comes back");
    let q = |p: &str, v: i64| {
        view.query(p, &[Some(Value::int(v))], &NoDomains, &scfg())
            .expect("query")
            .len()
    };
    assert_eq!(q("b", 6), 0, "b lost 6");
    assert_eq!(q("a", 6), 1, "a keeps 6 independently");
    assert_eq!(q("c", 6), 1, "c keeps 6 through a");
    assert_eq!(q("b", 7), 1, "untouched instances intact");
}

#[test]
fn example_5_stdel_walkthrough() {
    // The paper's full StDel trace: delete b(6); the replacements follow
    // the supports <3>, <2,<3>>, <4,<2,<3>>> (1-based) with NO
    // rederivation, yielding "X >= 5 & X != 6" entries.
    let db = example45_db();
    let (mut view, _) = fixpoint(
        &db,
        &NoDomains,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg(),
    )
    .expect("fixpoint");
    assert_eq!(view.len(), 5, "the paper's five-entry view");
    let deletion = parse_atom("b(X) <- X = 6").expect("parses");
    let stats = stdel_delete(&mut view, &deletion, &NoDomains, &scfg()).expect("stdel");
    assert_eq!(stats.direct_replacements, 1, "b's entry");
    assert_eq!(
        stats.propagated_replacements, 2,
        "a's and c's derived entries"
    );
    assert_eq!(stats.pout_pairs, 3);
    assert_eq!(stats.removed, 0, "nothing becomes unsolvable");
    // Semantics: 6 is gone from the derived chain but kept where an
    // independent proof exists.
    let q = |p: &str, v: i64| {
        view.query(p, &[Some(Value::int(v))], &NoDomains, &scfg())
            .expect("query")
            .len()
    };
    assert_eq!(q("b", 6), 0);
    assert_eq!(q("a", 6), 1, "via a(X) <- X >= 3");
    assert_eq!(q("c", 6), 1);
    assert_eq!(q("b", 9), 1);
}

#[test]
fn example_6_recursive_view_deletion() {
    let db = parse_program(
        "p(X, Y) <- X = a & Y = b.\n\
         p(X, Y) <- X = a & Y = c.\n\
         p(X, Y) <- X = c & Y = d.\n\
         a(X, Y) <- || p(X, Y).\n\
         a(X, Y) <- || p(X, Z), a(Z, Y).",
    )
    .expect("parses")
    .db;
    let (mut view, _) = fixpoint(
        &db,
        &NoDomains,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg(),
    )
    .expect("fixpoint");
    // The paper's 7-entry view, including the recursive a(a, d).
    assert_eq!(view.len(), 7);
    let deletion = parse_atom("p(X, Y) <- X = c & Y = d").expect("parses");
    let stats = stdel_delete(&mut view, &deletion, &NoDomains, &scfg()).expect("stdel");
    // "The constraints of each of constraint atoms 3, 6, and 7 are not
    // solvable. Hence these atoms may be removed."
    assert_eq!(stats.removed, 3);
    let inst = view.instances(&NoDomains, &scfg()).expect("instances");
    let expected: Vec<(&str, &str, &str)> = vec![
        ("a", "a", "b"),
        ("a", "a", "c"),
        ("p", "a", "b"),
        ("p", "a", "c"),
    ];
    let got: Vec<(String, String, String)> = inst
        .iter()
        .map(|(p, t)| {
            (
                p.to_string(),
                t[0].as_str().unwrap().to_string(),
                t[1].as_str().unwrap().to_string(),
            )
        })
        .collect();
    assert_eq!(
        got,
        expected
            .iter()
            .map(|(a, b, c)| (a.to_string(), b.to_string(), c.to_string()))
            .collect::<Vec<_>>()
    );
}

/// Example 7/8's domain: a function `g` whose output changes over time.
struct FlickerDomain {
    values: std::sync::RwLock<Vec<Value>>,
    version: std::sync::atomic::AtomicU64,
}

impl FlickerDomain {
    fn set(&self, values: Vec<Value>) {
        *self.values.write().unwrap() = values;
        self.version
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

impl Domain for FlickerDomain {
    fn name(&self) -> &str {
        "d"
    }
    fn call(&self, func: &str, _args: &[Value]) -> ValueSet {
        match func {
            "g" => ValueSet::finite(self.values.read().unwrap().iter().cloned()),
            _ => ValueSet::Empty,
        }
    }
    fn version(&self) -> u64 {
        self.version.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[test]
fn example_7_function_shrink_under_wp() {
    // B(X) <- in(X, d:g(b)); g(b) = {a} at time t, {} at t+1. The T_P
    // view at t+1 "would be empty"; the W_P view keeps the syntactic
    // atom and its instances become empty at query time.
    let flicker = Arc::new(FlickerDomain {
        values: std::sync::RwLock::new(vec![Value::str("a")]),
        version: std::sync::atomic::AtomicU64::new(0),
    });
    let mut manager = DomainManager::new();
    manager.register(flicker.clone());
    let db = parse_program("bee(X) <- in(X, d:g(b)).")
        .expect("parses")
        .db;
    let (wp, _) = fixpoint(
        &db,
        &manager,
        Operator::Wp,
        SupportMode::WithSupports,
        &cfg(),
    )
    .expect("fixpoint");
    assert_eq!(wp.len(), 1);
    assert_eq!(
        wp.query("bee", &[None], &manager, &scfg())
            .expect("query")
            .len(),
        1
    );
    flicker.set(vec![]);
    assert_eq!(wp.len(), 1, "syntactically unchanged (Theorem 4)");
    assert!(
        wp.query("bee", &[None], &manager, &scfg())
            .expect("query")
            .is_empty(),
        "instances empty at t+1"
    );
    // T_P built at t+1 is empty — and agrees with W_P's instances.
    let (tp, _) = fixpoint(
        &db,
        &manager,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg(),
    )
    .expect("fixpoint");
    assert_eq!(tp.len(), 0);
}

#[test]
fn example_8_wp_instances_track_tp() {
    // P = { A(X) <- in(X, d1:f(X)) || B(X, Y);  B(a,b);  B(b,b) } with
    // f_t(b) = {b}, f_t(x) = {} otherwise. [M] = {B(a,b), B(b,b), A(b)}.
    struct F {
        mode: std::sync::atomic::AtomicU64,
    }
    impl Domain for F {
        fn name(&self) -> &str {
            "d1"
        }
        fn call(&self, func: &str, args: &[Value]) -> ValueSet {
            if func != "f" {
                return ValueSet::Empty;
            }
            let target = match self.mode.load(std::sync::atomic::Ordering::Relaxed) {
                0 => Value::str("b"),
                _ => Value::str("a"),
            };
            match args.first() {
                Some(v) if *v == target => ValueSet::singleton(target),
                _ => ValueSet::Empty,
            }
        }
        fn version(&self) -> u64 {
            self.mode.load(std::sync::atomic::Ordering::Relaxed)
        }
    }
    let f = Arc::new(F {
        mode: std::sync::atomic::AtomicU64::new(0),
    });
    let mut manager = DomainManager::new();
    manager.register(f.clone());
    let db = parse_program(
        "bee(a, b).\n\
         bee(b, b).\n\
         aay(X) <- in(X, d1:f(X)) || bee(X, Y).",
    )
    .expect("parses")
    .db;
    let (wp, _) = fixpoint(
        &db,
        &manager,
        Operator::Wp,
        SupportMode::WithSupports,
        &cfg(),
    )
    .expect("fixpoint");
    // At time t: [M] contains A(b) (f(b) = {b}).
    let inst = wp.instances(&manager, &scfg()).expect("instances");
    let aay: Vec<_> = inst.iter().filter(|(p, _)| p.as_ref() == "aay").collect();
    assert_eq!(aay.len(), 1);
    assert_eq!(aay[0].1[0], Value::str("b"));
    // At time t+1 (f(a) = {a}, f(b) = {}): [M] contains A(a) instead —
    // with the view untouched.
    f.mode.store(1, std::sync::atomic::Ordering::Relaxed);
    let inst2 = wp.instances(&manager, &scfg()).expect("instances");
    let aay2: Vec<_> = inst2.iter().filter(|(p, _)| p.as_ref() == "aay").collect();
    assert_eq!(aay2.len(), 1);
    assert_eq!(aay2[0].1[0], Value::str("a"));
    // Matching T_P views at each time point (Corollary 1) — checked via
    // a fresh build.
    let (tp2, _) = fixpoint(
        &db,
        &manager,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg(),
    )
    .expect("fixpoint");
    assert_eq!(tp2.instances(&manager, &scfg()).expect("instances"), inst2);
}

#[test]
fn insertion_motivating_case() {
    // §3 "Atom Addition": seenwith(don, jane) may be inserted "even
    // though this fact may not be derivable using clause (1)".
    let db = parse_program(
        "seenwith(don, ed).\n\
         swlndc(X, Y) <- || seenwith(X, Y).\n\
         suspect(Y) <- || swlndc(X, Y).",
    )
    .expect("parses")
    .db;
    let (mut view, _) = fixpoint(
        &db,
        &NoDomains,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg(),
    )
    .expect("fixpoint");
    let ins = parse_atom("seenwith(don, jane)").expect("parses");
    let stats =
        insert_atom(&db, &mut view, &ins, &NoDomains, Operator::Tp, &cfg()).expect("insert");
    assert!(stats.added);
    assert_eq!(stats.propagated, 2, "swlndc and suspect follow");
    let hits = view
        .query("suspect", &[Some(Value::str("jane"))], &NoDomains, &scfg())
        .expect("query");
    assert_eq!(hits.len(), 1);
}
