//! Differential testing across engines: on *ground* programs the
//! constrained engine (non-ground views, supports, StDel/DRed) must
//! coincide exactly with the ground Datalog engine and all its baselines
//! (semi-naive evaluation, ground DRed, counting where applicable).

use mmv::constraints::{NoDomains, SolverConfig, Value};
use mmv::core::{
    dred_delete, fixpoint, stdel_delete, ConstrainedAtom, FixpointConfig, Operator, SupportMode,
};
use mmv::datalog::{apply_update, evaluate, CountingEngine, Fact};
use mmv_bench::gen::ground::{ground_to_constrained, tc_program, two_hop_program};
use proptest::prelude::*;
use std::collections::BTreeSet;

type FactSet = BTreeSet<(String, Vec<Value>)>;

fn ground_set(db: &mmv::datalog::Database) -> FactSet {
    db.facts().map(|f| (f.pred.to_string(), f.args)).collect()
}

fn constrained_set(view: &mmv::core::MaterializedView, cfg: &SolverConfig) -> FactSet {
    view.instances(&NoDomains, cfg)
        .expect("finite instances on ground programs")
        .into_iter()
        .map(|(p, t)| (p.to_string(), t))
        .collect()
}

/// Random DAG edges over `nodes` vertices (i -> j only for i < j), so
/// the recursive closure has finitely many derivations.
fn dag_edges(nodes: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::btree_set((0..nodes as i64 - 1, 1..nodes as i64), 1..nodes * 2)
        .prop_map(|set| set.into_iter().filter(|(a, b)| a < b).collect::<Vec<_>>())
        .prop_filter("need at least one edge", |v| !v.is_empty())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(16), failure_persistence: None, ..ProptestConfig::default()
    })]

    /// Least models agree between engines (recursive TC on DAGs).
    #[test]
    fn least_models_agree(edges in dag_edges(8)) {
        let p = tc_program(&edges);
        let ground = evaluate(&p);
        let cdb = ground_to_constrained(&p);
        let cfg = FixpointConfig::default();
        let (view, _) = fixpoint(&cdb, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg).unwrap();
        prop_assert_eq!(ground_set(&ground), constrained_set(&view, &cfg.solver));
    }

    /// Edge deletion: ground DRed == constrained StDel == constrained
    /// Extended DRed, on recursive closures.
    #[test]
    fn deletion_agrees_across_engines(edges in dag_edges(7), victim_idx in 0usize..64) {
        let p = tc_program(&edges);
        let materialized = evaluate(&p);
        let victim = edges[victim_idx % edges.len()];
        let vfact = Fact::new("edge", vec![Value::Int(victim.0), Value::Int(victim.1)]);
        let (ground_after, _) = apply_update(&p, &materialized, &[vfact], &[]);

        let cdb = ground_to_constrained(&p);
        let cfg = FixpointConfig { max_entries: 4_000_000, ..FixpointConfig::default() };
        let deletion = ConstrainedAtom::fact(
            "edge",
            vec![Value::Int(victim.0), Value::Int(victim.1)],
        );

        let (mut vs, _) = fixpoint(&cdb, &NoDomains, Operator::Tp, SupportMode::WithSupports, &cfg).unwrap();
        stdel_delete(&mut vs, &deletion, &NoDomains, &cfg.solver).unwrap();
        prop_assert_eq!(ground_set(&ground_after), constrained_set(&vs, &cfg.solver));

        let (mut vp, _) = fixpoint(&cdb, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg).unwrap();
        dred_delete(&cdb, &mut vp, &deletion, &NoDomains, &cfg).unwrap();
        prop_assert_eq!(ground_set(&ground_after), constrained_set(&vp, &cfg.solver));
    }

    /// Nonrecursive programs: the counting engine agrees with semi-naive
    /// recomputation under random mixed updates.
    #[test]
    fn counting_agrees_on_nonrecursive(
        edges in dag_edges(8),
        dels in proptest::collection::vec(0usize..64, 0..3),
        adds in proptest::collection::vec((0i64..8, 0i64..8), 0..3),
    ) {
        let p = two_hop_program(&edges);
        let mut engine = CountingEngine::new(p.clone()).unwrap();
        let deletions: Vec<Fact> = dels
            .iter()
            .map(|&i| {
                let e = edges[i % edges.len()];
                Fact::new("edge", vec![Value::Int(e.0), Value::Int(e.1)])
            })
            .collect();
        let insertions: Vec<Fact> = adds
            .iter()
            .filter(|(a, b)| a != b)
            .map(|&(a, b)| Fact::new("edge", vec![Value::Int(a), Value::Int(b)]))
            .collect();
        engine.update(&deletions, &insertions);

        let mut p2 = p.clone();
        p2.edb.retain(|f| !deletions.contains(f));
        for f in &insertions {
            if !p2.edb.contains(f) {
                p2.edb.push(f.clone());
            }
        }
        let expected = evaluate(&p2);
        prop_assert_eq!(
            engine.database().sorted_facts(),
            expected.sorted_facts()
        );
    }

    /// Ground DRed with mixed updates agrees with recomputation.
    #[test]
    fn ground_dred_mixed_updates(
        edges in dag_edges(8),
        dels in proptest::collection::vec(0usize..64, 0..3),
        adds in proptest::collection::vec((0i64..8, 0i64..8), 0..3),
    ) {
        let p = tc_program(&edges);
        let materialized = evaluate(&p);
        let deletions: Vec<Fact> = dels
            .iter()
            .map(|&i| {
                let e = edges[i % edges.len()];
                Fact::new("edge", vec![Value::Int(e.0), Value::Int(e.1)])
            })
            .collect();
        let insertions: Vec<Fact> = adds
            .iter()
            .filter(|(a, b)| a != b)
            .map(|&(a, b)| Fact::new("edge", vec![Value::Int(a), Value::Int(b)]))
            .collect();
        let (after, _) = apply_update(&p, &materialized, &deletions, &insertions);

        let mut p2 = p.clone();
        p2.edb.retain(|f| !deletions.contains(f));
        for f in &insertions {
            if !p2.edb.contains(f) {
                p2.edb.push(f.clone());
            }
        }
        let expected = evaluate(&p2);
        prop_assert_eq!(after.sorted_facts(), expected.sorted_facts());
    }
}
