//! Property-based tests of the paper's theorems: for randomized
//! constrained programs and updates, every incremental algorithm must
//! agree with its declarative oracle (Theorems 1–3), and `W_P` views must
//! be syntactically stable and instance-exact under external change
//! (Theorem 4, Corollary 1).

use mmv::constraints::{CmpOp, Constraint, NoDomains, Term, Var};
use mmv::core::{
    deletion_oracle, dred_delete, fixpoint, insert_atom, insertion_oracle, stdel_delete, BodyAtom,
    Clause, ConstrainedAtom, ConstrainedDatabase, FixpointConfig, Operator, SupportMode,
};
use proptest::prelude::*;

/// A randomized bounded-interval layered program description.
#[derive(Debug, Clone)]
struct ProgramSpec {
    /// Per layer-0 predicate: the interval facts (lo, width).
    facts: Vec<Vec<(i64, i64)>>,
    /// Derived layers: for each layer, for each predicate, body indices
    /// into the previous layer.
    layers: Vec<Vec<Vec<usize>>>,
}

fn x() -> Term {
    Term::var(Var(0))
}

fn interval(lo: i64, hi: i64) -> Constraint {
    Constraint::cmp(x(), CmpOp::Ge, Term::int(lo)).and(Constraint::cmp(
        x(),
        CmpOp::Le,
        Term::int(hi),
    ))
}

fn build_db(spec: &ProgramSpec) -> ConstrainedDatabase {
    let mut db = ConstrainedDatabase::new();
    for (j, facts) in spec.facts.iter().enumerate() {
        for (lo, width) in facts {
            db.push(Clause::fact(
                &format!("p0_{j}"),
                vec![x()],
                interval(*lo, lo + width),
            ));
        }
    }
    for (l, layer) in spec.layers.iter().enumerate() {
        for (j, body) in layer.iter().enumerate() {
            db.push(Clause::new(
                &format!("p{}_{j}", l + 1),
                vec![x()],
                Constraint::truth(),
                body.iter()
                    .map(|&src| BodyAtom::new(&format!("p{l}_{src}"), vec![x()]))
                    .collect(),
            ));
        }
    }
    db
}

fn spec_strategy() -> impl Strategy<Value = ProgramSpec> {
    let facts = proptest::collection::vec(
        proptest::collection::vec((0i64..60, 1i64..25), 1..3),
        2..4usize,
    );
    facts.prop_flat_map(|facts| {
        let preds = facts.len();
        let layers = proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec(0..preds, 1..3usize),
                preds..=preds,
            ),
            1..3usize,
        );
        layers.prop_map(move |layers| ProgramSpec {
            facts: facts.clone(),
            layers,
        })
    })
}

fn deletion_strategy() -> impl Strategy<Value = (usize, i64, i64)> {
    // (layer-0 predicate index, interval lo, width)
    (0usize..4, 0i64..85, 0i64..10)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(24), failure_persistence: None, ..ProptestConfig::default()
    })]

    /// Theorem 2: StDel's result has exactly the instances of
    /// `T_{P'} ↑ ω (∅)`.
    #[test]
    fn stdel_matches_oracle(spec in spec_strategy(), del in deletion_strategy()) {
        let db = build_db(&spec);
        let cfg = FixpointConfig::default();
        let (mut view, _) = fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::WithSupports, &cfg).unwrap();
        let pred = format!("p0_{}", del.0 % spec.facts.len());
        let deletion = ConstrainedAtom::new(&pred, vec![x()], interval(del.1, del.1 + del.2));
        let expected = deletion_oracle(&db, &view, &deletion, &NoDomains, &cfg).unwrap();
        stdel_delete(&mut view, &deletion, &NoDomains, &cfg.solver).unwrap();
        let got = view.instances(&NoDomains, &cfg.solver).unwrap();
        prop_assert_eq!(got, expected);
    }

    /// Theorem 1: Extended DRed's result has exactly the instances of
    /// `T_{P'} ↑ ω (∅)`.
    #[test]
    fn dred_matches_oracle(spec in spec_strategy(), del in deletion_strategy()) {
        let db = build_db(&spec);
        let cfg = FixpointConfig::default();
        let (mut view, _) = fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg).unwrap();
        let pred = format!("p0_{}", del.0 % spec.facts.len());
        let deletion = ConstrainedAtom::new(&pred, vec![x()], interval(del.1, del.1 + del.2));
        let expected = deletion_oracle(&db, &view, &deletion, &NoDomains, &cfg).unwrap();
        dred_delete(&db, &mut view, &deletion, &NoDomains, &cfg).unwrap();
        let got = view.instances(&NoDomains, &cfg.solver).unwrap();
        prop_assert_eq!(got, expected);
    }

    /// StDel and Extended DRed agree with each other on the same update.
    #[test]
    fn stdel_and_dred_agree(spec in spec_strategy(), del in deletion_strategy()) {
        let db = build_db(&spec);
        let cfg = FixpointConfig::default();
        let (mut vs, _) = fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::WithSupports, &cfg).unwrap();
        let (mut vp, _) = fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg).unwrap();
        let pred = format!("p0_{}", del.0 % spec.facts.len());
        let deletion = ConstrainedAtom::new(&pred, vec![x()], interval(del.1, del.1 + del.2));
        stdel_delete(&mut vs, &deletion, &NoDomains, &cfg.solver).unwrap();
        dred_delete(&db, &mut vp, &deletion, &NoDomains, &cfg).unwrap();
        prop_assert_eq!(
            vs.instances(&NoDomains, &cfg.solver).unwrap(),
            vp.instances(&NoDomains, &cfg.solver).unwrap()
        );
    }

    /// Theorem 3: insertion's result has exactly the instances of
    /// `T_{P♭} ↑ ω (∅)`.
    #[test]
    fn insertion_matches_oracle(spec in spec_strategy(), ins in deletion_strategy()) {
        let db = build_db(&spec);
        let cfg = FixpointConfig::default();
        let (mut view, _) = fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::WithSupports, &cfg).unwrap();
        let pred = format!("p0_{}", ins.0 % spec.facts.len());
        // Insertions may overlap existing intervals or not.
        let insertion = ConstrainedAtom::new(&pred, vec![x()], interval(ins.1, ins.1 + ins.2));
        let expected = insertion_oracle(&db, &insertion, &NoDomains, &cfg).unwrap();
        insert_atom(&db, &mut view, &insertion, &NoDomains, Operator::Tp, &cfg).unwrap();
        let got = view.instances(&NoDomains, &cfg.solver).unwrap();
        prop_assert_eq!(got, expected);
    }

    /// Delete-then-reinsert restores the deleted instances (and possibly
    /// more was never deleted): final instances equal the insertion
    /// oracle applied after deletion.
    #[test]
    fn delete_then_reinsert_roundtrip(spec in spec_strategy(), upd in deletion_strategy()) {
        let db = build_db(&spec);
        let cfg = FixpointConfig::default();
        let (mut view, _) = fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::WithSupports, &cfg).unwrap();
        let before = view.instances(&NoDomains, &cfg.solver).unwrap();
        let pred = format!("p0_{}", upd.0 % spec.facts.len());
        let atom = ConstrainedAtom::new(&pred, vec![x()], interval(upd.1, upd.1 + upd.2));
        stdel_delete(&mut view, &atom, &NoDomains, &cfg.solver).unwrap();
        insert_atom(&db, &mut view, &atom, &NoDomains, Operator::Tp, &cfg).unwrap();
        let after = view.instances(&NoDomains, &cfg.solver).unwrap();
        // Reinserting restores the deleted base instances; derived
        // instances reappear through P_ADD. The result can only differ
        // from `before` by instances of `atom` that were never in the
        // view (the insertion adds them).
        prop_assert!(after.is_superset(&before));
        for f in after.difference(&before) {
            // Anything new must stem from the inserted atom's own
            // instances outside the original view.
            prop_assert!(!before.contains(f));
        }
    }

    /// Deleting everything a predicate holds empties that predicate.
    #[test]
    fn total_deletion_empties_predicate(spec in spec_strategy()) {
        let db = build_db(&spec);
        let cfg = FixpointConfig::default();
        let (mut view, _) = fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::WithSupports, &cfg).unwrap();
        let pred = "p0_0";
        let atom = ConstrainedAtom::new(pred, vec![x()], interval(-1000, 1000));
        stdel_delete(&mut view, &atom, &NoDomains, &cfg.solver).unwrap();
        let got = view.instances(&NoDomains, &cfg.solver).unwrap();
        prop_assert!(got.iter().all(|(p, _)| p.as_ref() != pred));
    }

    /// Theorem 4 + Corollary 1, randomized: under arbitrary external
    /// update sequences, the W_P view never changes syntactically and its
    /// instances always equal a freshly built T_P view's.
    #[test]
    fn wp_invariance_under_random_external_updates(
        updates in proptest::collection::vec((0usize..6, proptest::collection::vec(0i64..100, 0..3)), 1..6)
    ) {
        use mmv_bench::sensors::{monitoring_db, SensorDomain};
        use mmv_domains::DomainManager;
        use std::sync::Arc;

        let sensors = Arc::new(SensorDomain::new(6));
        let mut manager = DomainManager::new();
        manager.register(sensors.clone());
        let db = monitoring_db(6, 50);
        let cfg = FixpointConfig::default();
        let (wp, _) = fixpoint(&db, &manager, Operator::Wp, SupportMode::WithSupports, &cfg).unwrap();
        let baseline = wp.compact();
        for (sensor, values) in updates {
            sensors.set(sensor, values);
            // Theorem 4: syntactic invariance (the view is untouched by
            // construction; assert it anyway to pin the API contract).
            prop_assert!(wp.syntactically_equal(&baseline));
            // Corollary 1: instance equality with a fresh T_P build.
            let (tp, _) = fixpoint(&db, &manager, Operator::Tp, SupportMode::WithSupports, &cfg).unwrap();
            prop_assert_eq!(
                wp.instances(&manager, &cfg.solver).unwrap(),
                tp.instances(&manager, &cfg.solver).unwrap()
            );
        }
    }
}
