//! End-to-end integration across every crate: the parsed law-enforcement
//! mediator over live domains, exercised with interleaved updates of
//! both kinds, checked against fresh recomputation after every step.

use mmv::constraints::{SolverConfig, Value};
use mmv::core::{
    fixpoint, parse_atom, FixpointConfig, MaintenanceStrategy, MediatedMaterializedView, Operator,
    SupportMode,
};
use mmv_bench::gen::lawenf::{build, person_name, LawEnfSpec};

fn scfg() -> SolverConfig {
    SolverConfig {
        product_budget: 5_000_000,
        ..SolverConfig::default()
    }
}

fn spec() -> LawEnfSpec {
    LawEnfSpec {
        people: 8,
        photos: 5,
        faces_per_photo: 3,
        near_dc_fraction: 1.0,
        employee_fraction: 1.0,
        seed: 99,
    }
}

#[test]
fn wp_view_stays_exact_through_interleaved_updates() {
    let world = build(&spec());
    let cfg = FixpointConfig::default();
    let mut mv = MediatedMaterializedView::materialize(
        world.db.clone(),
        MaintenanceStrategy::WpDeferred,
        &world.manager,
        world.manager.clock(),
        cfg.clone(),
    )
    .expect("materialize");
    let baseline = mv.view().compact();

    // Round 1: external growth (photos), no maintenance.
    world.face.add_photo("surveillancedata", "x1", &[1, 4]);
    world.face.add_photo("surveillancedata", "x2", &[1, 5]);
    mv.on_external_change(&world.manager, world.manager.clock())
        .expect("maintenance");
    assert!(mv.view().syntactically_equal(&baseline), "Theorem 4");

    // The answers match a T_P view built from scratch right now.
    let fresh = fixpoint(
        &world.db,
        &world.manager,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg,
    )
    .expect("fresh fixpoint")
    .0;
    let q = |view: &mmv::core::MaterializedView| {
        view.query(
            "suspect",
            &[Some(Value::str(&world.target)), None],
            &world.manager,
            &scfg(),
        )
        .expect("query")
    };
    assert_eq!(q(mv.view()), q(&fresh), "Corollary 1 after growth");

    // Round 2: external shrink (a photo is retracted).
    world.face.remove_photo("surveillancedata", "x1");
    mv.on_external_change(&world.manager, world.manager.clock())
        .expect("maintenance");
    let fresh = fixpoint(
        &world.db,
        &world.manager,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg,
    )
    .expect("fresh fixpoint")
    .0;
    assert_eq!(q(mv.view()), q(&fresh), "Corollary 1 after shrink");

    // Round 3: view update of kind 1 — clear a suspect association.
    let victim = q(mv.view())
        .iter()
        .next()
        .map(|t| t[1].as_str().unwrap().to_string())
        .expect("a suspect exists");
    let deletion = parse_atom(&format!("seenwith(don, {victim})")).expect("parses");
    mv.delete(&deletion, &world.manager).expect("stdel");
    let after = q(mv.view());
    assert!(
        after.iter().all(|t| t[1] != Value::str(&victim)),
        "{victim} must be cleared"
    );

    // Round 4: reassert the association via insertion; the suspect
    // returns.
    let insertion = parse_atom(&format!("seenwith(don, {victim})")).expect("parses");
    mv.insert(&insertion, &world.manager).expect("insert");
    let restored = q(mv.view());
    assert!(
        restored.iter().any(|t| t[1] == Value::str(&victim)),
        "{victim} must be back after reinsertion"
    );
}

#[test]
fn relational_domain_updates_flow_through_queries() {
    let world = build(&spec());
    let cfg = FixpointConfig::default();
    let mv = MediatedMaterializedView::materialize(
        world.db.clone(),
        MaintenanceStrategy::WpDeferred,
        &world.manager,
        world.manager.clock(),
        cfg,
    )
    .expect("materialize");
    let q = |mv: &MediatedMaterializedView| {
        mv.query(
            "suspect",
            &[Some(Value::str(&world.target)), None],
            &world.manager,
            &scfg(),
        )
        .expect("query")
    };
    let before = q(&mv);
    assert!(!before.is_empty());
    // Fire a suspect from ABC Corp: they drop out of the suspect pool
    // with no view maintenance at all.
    let fired = before.iter().next().unwrap()[1]
        .as_str()
        .unwrap()
        .to_string();
    world
        .dbase
        .write()
        .expect("catalog lock")
        .delete_where_eq("empl_abc", "name", &Value::str(&fired))
        .expect("delete");
    let after = q(&mv);
    assert!(after.iter().all(|t| t[1] != Value::str(&fired)));
    assert_eq!(after.len(), before.len() - 1);
}

#[test]
fn seenwith_is_symmetric_and_excludes_self() {
    let s = spec();
    let world = build(&s);
    let cfg = FixpointConfig::default();
    let (view, _) = fixpoint(
        &world.db,
        &world.manager,
        Operator::Wp,
        SupportMode::WithSupports,
        &cfg,
    )
    .expect("materialize");
    // Queries bind X (the paper's usage: suspect("Don Corleone", Y));
    // build the full relation one person at a time.
    let mut pairs: Vec<(String, String)> = Vec::new();
    for i in 0..s.people {
        let me = person_name(i);
        for t in view
            .query(
                "seenwith",
                &[Some(Value::str(&me)), None],
                &world.manager,
                &scfg(),
            )
            .expect("query")
        {
            pairs.push((me.clone(), t[1].as_str().unwrap().to_string()));
        }
    }
    assert!(!pairs.is_empty());
    for (a, b) in &pairs {
        assert_ne!(a, b, "different faces in the same photo");
        assert!(
            pairs.contains(&(b.clone(), a.clone())),
            "seenwith is symmetric by construction"
        );
    }
}

#[test]
fn parser_roundtrip_on_rendered_database() {
    // Rendering a parsed database and re-parsing it yields a database
    // with the same view semantics.
    let world = build(&spec());
    let rendered = world.db.to_string();
    let reparsed = mmv::core::parse_program(&rendered).expect("re-parses");
    let cfg = FixpointConfig::default();
    let (v1, _) = fixpoint(
        &world.db,
        &world.manager,
        Operator::Wp,
        SupportMode::WithSupports,
        &cfg,
    )
    .unwrap();
    let (v2, _) = fixpoint(
        &reparsed.db,
        &world.manager,
        Operator::Wp,
        SupportMode::WithSupports,
        &cfg,
    )
    .unwrap();
    let q = |v: &mmv::core::MaterializedView| {
        v.query(
            "suspect",
            &[Some(Value::str(&person_name(0))), None],
            &world.manager,
            &scfg(),
        )
        .expect("query")
    };
    assert_eq!(q(&v1), q(&v2));
}
