//! Validation of the Prometheus text exposition format.
//!
//! [`validate_prometheus`] is the checker behind the `promcheck` binary and
//! the scrape-vs-write tests: it verifies the structural rules a scraper
//! relies on (declared families, well-formed samples, cumulative histogram
//! buckets, `+Inf` agreeing with `_count`) without needing a real
//! Prometheus install.

use std::collections::HashMap;

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().next().is_some_and(|b| !b.is_ascii_digit())
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().next().is_some_and(|b| !b.is_ascii_digit())
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// One parsed sample line.
struct Sample {
    name: String,
    le: Option<String>,
    /// Label set minus `le`, in source order, used to group histogram series.
    series_key: String,
    value: f64,
}

fn parse_sample(line: &str, lineno: usize) -> Result<Sample, String> {
    let err = |msg: &str| format!("line {lineno}: {msg}: {line:?}");
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let close = line.rfind('}').ok_or_else(|| err("unclosed label block"))?;
            if close < brace {
                return Err(err("unclosed label block"));
            }
            (
                &line[..brace],
                Some((&line[brace + 1..close], &line[close + 1..])),
            )
        }
        None => (line.split_whitespace().next().unwrap_or(""), None),
    };
    if !valid_metric_name(name_part) {
        return Err(err("invalid metric name"));
    }
    let (labels_raw, value_raw) = match rest {
        Some((labels, tail)) => (labels, tail.trim()),
        None => ("", line[name_part.len()..].trim()),
    };
    let mut le = None;
    let mut series = Vec::new();
    if !labels_raw.is_empty() {
        for pair in split_label_pairs(labels_raw).map_err(|m| err(&m))? {
            let (k, v) = pair;
            if !valid_label_name(&k) {
                return Err(err("invalid label name"));
            }
            if k == "le" {
                le = Some(v);
            } else {
                series.push(format!("{k}={v}"));
            }
        }
    }
    if value_raw.is_empty() {
        return Err(err("missing sample value"));
    }
    let value = match value_raw {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other
            .parse::<f64>()
            .map_err(|_| err("unparseable sample value"))?,
    };
    Ok(Sample {
        name: name_part.to_string(),
        le,
        series_key: series.join(","),
        value,
    })
}

/// Splits `k="v",k2="v2"` respecting escapes inside quoted values.
fn split_label_pairs(raw: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut chars = raw.chars().peekable();
    loop {
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty() {
            return Err("empty label name".into());
        }
        if chars.next() != Some('"') {
            return Err(format!("label {key} value not quoted"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('n') => value.push('\n'),
                    Some(other) => value.push(other),
                    None => return Err("dangling escape in label value".into()),
                },
                '"' => {
                    closed = true;
                    break;
                }
                c => value.push(c),
            }
        }
        if !closed {
            return Err(format!("unterminated value for label {key}"));
        }
        pairs.push((key, value));
        match chars.next() {
            None => return Ok(pairs),
            Some(',') => continue,
            Some(other) => return Err(format!("unexpected {other:?} after label value")),
        }
    }
}

/// Checks `text` against the Prometheus text exposition format.
///
/// Enforced rules:
/// - every non-comment line parses as `name[{labels}] value`;
/// - every sample belongs to a family declared by a `# TYPE` line
///   (histogram samples may use the `_bucket`/`_sum`/`_count` suffixes);
/// - at most one `# TYPE` per family, with a known type;
/// - per histogram series: bucket counts are cumulative (non-decreasing in
///   `le` order), a `+Inf` bucket exists, and it equals the `_count` sample.
///
/// Returns `Ok(())` on success or a message naming the first offending line.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    let mut types: HashMap<String, String> = HashMap::new();
    // (family, series_key) -> buckets seen, in order.
    let mut buckets: HashMap<(String, String), Vec<(f64, f64)>> = HashMap::new();
    let mut counts: HashMap<(String, String), f64> = HashMap::new();
    let mut samples: Vec<(usize, Sample)> = Vec::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match parts.next() {
                Some("TYPE") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: TYPE without a metric name"))?;
                    let ty = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: TYPE without a type"))?;
                    if !matches!(
                        ty,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {lineno}: unknown metric type {ty:?}"));
                    }
                    if !valid_metric_name(name) {
                        return Err(format!("line {lineno}: invalid metric name {name:?}"));
                    }
                    if types.insert(name.to_string(), ty.to_string()).is_some() {
                        return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                    }
                }
                Some("HELP") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| format!("line {lineno}: HELP without a metric name"))?;
                    if !valid_metric_name(name) {
                        return Err(format!("line {lineno}: invalid metric name {name:?}"));
                    }
                }
                _ => {} // free-form comment
            }
            continue;
        }
        samples.push((lineno, parse_sample(line, lineno)?));
    }

    for (lineno, s) in &samples {
        let family = histogram_family(&s.name, &types);
        let Some(family) = family else {
            return Err(format!(
                "line {lineno}: sample {} has no # TYPE declaration",
                s.name
            ));
        };
        let ty = types.get(&family).map(String::as_str).unwrap_or("untyped");
        if ty == "histogram" {
            let key = (family.clone(), s.series_key.clone());
            if s.name.ends_with("_bucket") {
                let le =
                    s.le.as_deref()
                        .ok_or_else(|| format!("line {lineno}: histogram bucket without le"))?;
                let bound = match le {
                    "+Inf" => f64::INFINITY,
                    v => v
                        .parse::<f64>()
                        .map_err(|_| format!("line {lineno}: unparseable le value {v:?}"))?,
                };
                buckets.entry(key).or_default().push((bound, s.value));
            } else if s.name.ends_with("_count") {
                counts.insert(key, s.value);
            }
        } else if s.le.is_some() {
            return Err(format!(
                "line {lineno}: le label on non-histogram metric {}",
                s.name
            ));
        }
    }

    for ((family, series), seq) in &buckets {
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_count = -1.0f64;
        let mut inf = None;
        for (bound, count) in seq {
            if *bound <= prev_bound {
                return Err(format!(
                    "histogram {family}{{{series}}}: le bounds not increasing"
                ));
            }
            if *count < prev_count {
                return Err(format!(
                    "histogram {family}{{{series}}}: bucket counts not cumulative"
                ));
            }
            prev_bound = *bound;
            prev_count = *count;
            if bound.is_infinite() {
                inf = Some(*count);
            }
        }
        let inf =
            inf.ok_or_else(|| format!("histogram {family}{{{series}}}: missing +Inf bucket"))?;
        if let Some(total) = counts.get(&(family.clone(), series.clone())) {
            if (total - inf).abs() > f64::EPSILON {
                return Err(format!(
                    "histogram {family}{{{series}}}: +Inf bucket {inf} != _count {total}"
                ));
            }
        } else {
            return Err(format!("histogram {family}{{{series}}}: missing _count"));
        }
    }
    Ok(())
}

/// Resolves a sample name to its declared family, peeling histogram
/// suffixes when the base name is a declared histogram.
fn histogram_family(name: &str, types: &HashMap<String, String>) -> Option<String> {
    if types.contains_key(name) {
        return Some(name.to_string());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return Some(base.to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_exposition() {
        let text = "\
# HELP a_total things\n\
# TYPE a_total counter\n\
a_total 3\n\
# TYPE lat histogram\n\
lat_bucket{le=\"0.001\"} 1\n\
lat_bucket{le=\"+Inf\"} 2\n\
lat_sum 0.5\n\
lat_count 2\n";
        validate_prometheus(text).unwrap();
    }

    #[test]
    fn rejects_undeclared_sample() {
        let err = validate_prometheus("mystery_total 1\n").unwrap_err();
        assert!(err.contains("no # TYPE"), "{err}");
    }

    #[test]
    fn rejects_non_cumulative_buckets() {
        let text = "\
# TYPE lat histogram\n\
lat_bucket{le=\"1\"} 5\n\
lat_bucket{le=\"+Inf\"} 3\n\
lat_sum 1\n\
lat_count 3\n";
        let err = validate_prometheus(text).unwrap_err();
        assert!(err.contains("not cumulative"), "{err}");
    }

    #[test]
    fn rejects_count_mismatch() {
        let text = "\
# TYPE lat histogram\n\
lat_bucket{le=\"+Inf\"} 3\n\
lat_sum 1\n\
lat_count 4\n";
        let err = validate_prometheus(text).unwrap_err();
        assert!(err.contains("!= _count"), "{err}");
    }

    #[test]
    fn rejects_garbage_lines() {
        let text = "# TYPE a counter\na{not closed 1\n";
        assert!(validate_prometheus(text).is_err());
    }

    #[test]
    fn labels_with_escapes_parse() {
        let text = "# TYPE a counter\na{k=\"v \\\"q\\\" w\"} 1\n";
        validate_prometheus(text).unwrap();
    }
}
