//! Batch-lifecycle tracing: per-stage wall-clock for each maintenance batch.
//!
//! A [`BatchTrace`] follows one update batch through the service pipeline,
//! recording nanoseconds spent in each [`Stage`]. The service keeps the
//! last N completed traces in a [`TraceRing`], queryable via
//! `ViewService::recent_traces()` without stopping writers.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// Pipeline stages a maintenance batch passes through, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Routing the batch's updates to shard-local sub-batches.
    Split,
    /// Waiting for the touched lanes' writer locks.
    LockWait,
    /// Fixpoint / DRed maintenance against the lane databases.
    Apply,
    /// Rendering the batch into WAL frame text.
    WalRender,
    /// Appending the rendered frame to the WAL (excluding group-commit wait).
    WalAppend,
    /// Blocking until the group-commit flusher reports the LSN durable.
    FsyncWait,
    /// The publish critical section: swapping frozen snapshots in.
    Publish,
    /// Handing a staged snapshot to the checkpointer.
    Checkpoint,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 8;

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Split,
        Stage::LockWait,
        Stage::Apply,
        Stage::WalRender,
        Stage::WalAppend,
        Stage::FsyncWait,
        Stage::Publish,
        Stage::Checkpoint,
    ];

    /// Stable snake_case name, used as the `stage` label value.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Split => "split",
            Stage::LockWait => "lock_wait",
            Stage::Apply => "apply",
            Stage::WalRender => "wal_render",
            Stage::WalAppend => "wal_append",
            Stage::FsyncWait => "fsync_wait",
            Stage::Publish => "publish",
            Stage::Checkpoint => "checkpoint",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Split => 0,
            Stage::LockWait => 1,
            Stage::Apply => 2,
            Stage::WalRender => 3,
            Stage::WalAppend => 4,
            Stage::FsyncWait => 5,
            Stage::Publish => 6,
            Stage::Checkpoint => 7,
        }
    }
}

/// Wall-clock profile of one batch's trip through the pipeline.
///
/// Stages that did not run for a batch (e.g. WAL stages on an in-memory
/// service) stay at zero nanoseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchTrace {
    /// Epoch the batch published as (0 until assigned).
    pub epoch: u64,
    /// Number of shards the batch touched.
    pub shards_touched: u32,
    /// Nanoseconds spent per stage, indexed in [`Stage::ALL`] order.
    pub stage_nanos: [u64; STAGE_COUNT],
}

impl BatchTrace {
    /// Adds `d` to the stage's recorded time.
    pub fn record(&mut self, stage: Stage, d: Duration) {
        self.stage_nanos[stage.index()] = self.stage_nanos[stage.index()]
            .saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Runs `f`, recording its wall-clock duration into `stage`.
    ///
    /// This is the obs-gated home for write-path timing: callers on
    /// the maintenance pipeline take their clock reads through trace
    /// helpers (only invoked when tracing is on) rather than calling
    /// `Instant::now` inline — the project's `time-gate` lint enforces
    /// exactly that.
    pub fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let t0 = std::time::Instant::now();
        let out = f();
        self.record(stage, t0.elapsed());
        out
    }

    /// Time recorded for one stage.
    pub fn stage(&self, stage: Stage) -> Duration {
        Duration::from_nanos(self.stage_nanos[stage.index()])
    }

    /// Sum over all stages.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(
            self.stage_nanos
                .iter()
                .fold(0u64, |a, &n| a.saturating_add(n)),
        )
    }
}

/// Bounded ring of the most recent [`BatchTrace`]s.
///
/// Pushes take a short mutex (traces are tiny copies); readers get a cloned
/// `Vec` oldest-first. Capacity 0 disables retention entirely.
#[derive(Debug)]
pub struct TraceRing {
    cap: usize,
    buf: Mutex<VecDeque<BatchTrace>>,
}

impl TraceRing {
    /// Creates a ring holding at most `cap` traces.
    pub fn new(cap: usize) -> Self {
        Self {
            cap,
            buf: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<BatchTrace>> {
        match self.buf.lock() {
            Ok(g) => g,
            Err(p) => {
                self.buf.clear_poison();
                p.into_inner()
            }
        }
    }

    /// Appends a trace, evicting the oldest once full.
    pub fn push(&self, trace: BatchTrace) {
        if self.cap == 0 {
            return;
        }
        let mut buf = self.lock();
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(trace);
    }

    /// The retained traces, oldest first.
    pub fn recent(&self) -> Vec<BatchTrace> {
        self.lock().iter().copied().collect()
    }

    /// Maximum number of retained traces.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_match_all_order() {
        assert_eq!(Stage::ALL.len(), STAGE_COUNT);
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(Stage::FsyncWait.name(), "fsync_wait");
    }

    #[test]
    fn trace_accumulates_per_stage() {
        let mut t = BatchTrace::default();
        t.record(Stage::Apply, Duration::from_nanos(40));
        t.record(Stage::Apply, Duration::from_nanos(2));
        t.record(Stage::Publish, Duration::from_nanos(8));
        assert_eq!(t.stage(Stage::Apply), Duration::from_nanos(42));
        assert_eq!(t.total(), Duration::from_nanos(50));
        assert_eq!(t.stage(Stage::FsyncWait), Duration::ZERO);
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = TraceRing::new(3);
        for epoch in 1..=5u64 {
            ring.push(BatchTrace {
                epoch,
                ..BatchTrace::default()
            });
        }
        let recent = ring.recent();
        assert_eq!(
            recent.iter().map(|t| t.epoch).collect::<Vec<_>>(),
            vec![3, 4, 5]
        );
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn zero_capacity_ring_keeps_nothing() {
        let ring = TraceRing::new(0);
        ring.push(BatchTrace::default());
        assert!(ring.recent().is_empty());
    }
}
