//! # mmv-obs — dependency-free observability for the materialized-view stack
//!
//! One crate, three layers:
//!
//! 1. **Metric primitives** ([`Counter`], [`Gauge`], [`Histogram`]) — cheap
//!    cloneable handles over shared atomics. Components own their
//!    instruments *detached*; hot paths never take a lock.
//! 2. **The [`MetricsRegistry`]** — binds handles to static names (with
//!    optional labels, e.g. per-lane) and renders them via
//!    [`MetricsRegistry::render_prometheus`] /
//!    [`MetricsRegistry::render_json`]. Scrapes read the same atomics the
//!    writers update, so exposition is concurrent with writes at zero
//!    coordination cost.
//! 3. **Batch-lifecycle tracing** ([`BatchTrace`], [`Stage`],
//!    [`TraceRing`]) — per-stage wall-clock for each maintenance batch,
//!    last-N retained in a ring buffer.
//!
//! Histograms use a fixed log2 bucket scheme: bucket `i >= 1` holds raw
//! values in `[2^(i-1), 2^i)` (bucket 0 holds zeros), so recording is a
//! bit-length computation plus three relaxed atomic ops, and p50/p90/p99/max
//! are derived from any [`HistogramSnapshot`]. Durations are recorded in
//! nanoseconds; registering with [`Unit::Seconds`] makes exposition scale
//! them to seconds.
//!
//! [`validate_prometheus`] (also exposed as the `promcheck` binary) checks
//! rendered output against the text exposition format — CI pipes a live
//! scrape through it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expo;
mod metric;
mod registry;
mod trace;

pub use expo::validate_prometheus;
pub use metric::{
    bucket_index, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, HIST_BUCKETS,
};
pub use registry::{Labels, MetricsRegistry, Unit};
pub use trace::{BatchTrace, Stage, TraceRing, STAGE_COUNT};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    /// Scrapes stay valid and counters monotone while writers hammer the
    /// same handles.
    #[test]
    fn concurrent_scrape_and_write() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("obs_test_total", "test counter");
        let h = reg.histogram("obs_test_seconds", "test latency", Unit::Seconds);
        let writers: Vec<_> = (0..4)
            .map(|i| {
                let c = c.clone();
                let h = h.clone();
                thread::spawn(move || {
                    for k in 0..5_000u64 {
                        c.inc();
                        h.observe(k * (i + 1));
                    }
                })
            })
            .collect();
        let mut last = 0u64;
        for _ in 0..50 {
            let text = reg.render_prometheus();
            validate_prometheus(&text).expect("scrape stays parseable");
            let now = c.get();
            assert!(now >= last, "counter went backwards");
            last = now;
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(c.get(), 20_000);
        assert_eq!(h.snapshot().count(), 20_000);
        validate_prometheus(&reg.render_prometheus()).unwrap();
    }

    const _SEND_SYNC: () = {
        const fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricsRegistry>();
        assert_send_sync::<Counter>();
        assert_send_sync::<Gauge>();
        assert_send_sync::<Histogram>();
        assert_send_sync::<TraceRing>();
    };
}
