//! The [`MetricsRegistry`]: binds detached metric handles to static names
//! and renders them for scraping.
//!
//! Registration and rendering take a short internal mutex over the name
//! table; the hot path (incrementing a [`Counter`], observing into a
//! [`Histogram`]) never does — handles are plain atomics shared by `Arc`.
//! A scrape therefore runs concurrently with writers at zero coordination
//! cost: it snapshots each atomic once and formats the copies.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

use crate::metric::{Counter, Gauge, Histogram, HIST_BUCKETS};

/// Unit of a histogram's raw observations; controls how exposition scales
/// values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless counts; rendered as-is.
    Count,
    /// Raw values are nanoseconds; rendered as seconds (scaled by 1e-9).
    Seconds,
    /// Raw values are bytes; rendered as-is.
    Bytes,
}

impl Unit {
    fn scale(self) -> f64 {
        match self {
            Unit::Seconds => 1e-9,
            Unit::Count | Unit::Bytes => 1.0,
        }
    }
}

/// Label set attached to one series: `(key, value)` pairs in render order.
pub type Labels = Vec<(&'static str, String)>;

struct Series<T> {
    labels: Labels,
    handle: T,
}

enum FamilyKind {
    Counter(Vec<Series<Counter>>),
    Gauge(Vec<Series<Gauge>>),
    Histogram(Vec<Series<Histogram>>),
}

struct Family {
    help: &'static str,
    unit: Unit,
    kind: FamilyKind,
}

impl Family {
    fn type_name(&self) -> &'static str {
        match self.kind {
            FamilyKind::Counter(_) => "counter",
            FamilyKind::Gauge(_) => "gauge",
            FamilyKind::Histogram(_) => "histogram",
        }
    }
}

/// Registry of named metric families.
///
/// Components create their instruments detached (e.g. a WAL owns its
/// counters from birth) and the service registers the same handles here
/// under static names at build time. Registering the same name and label
/// set twice rebinds the series to the newer handle.
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let fams = self.lock();
        f.debug_struct("MetricsRegistry")
            .field("families", &fams.len())
            .finish_non_exhaustive()
    }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
        && !name.as_bytes()[0].is_ascii_digit()
}

fn owned_labels(labels: &[(&'static str, &str)]) -> Labels {
    labels.iter().map(|(k, v)| (*k, v.to_string())).collect()
}

fn bind<T: Clone>(series: &mut Vec<Series<T>>, labels: Labels, handle: &T) {
    if let Some(s) = series.iter_mut().find(|s| s.labels == labels) {
        s.handle = handle.clone();
    } else {
        series.push(Series {
            labels,
            handle: handle.clone(),
        });
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<&'static str, Family>> {
        // Never poison: a panicking scraper must not brick registration.
        match self.families.lock() {
            Ok(g) => g,
            Err(p) => {
                self.families.clear_poison();
                p.into_inner()
            }
        }
    }

    /// Binds an existing [`Counter`] handle under `name` with `labels`.
    pub fn register_counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        handle: &Counter,
    ) {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let mut fams = self.lock();
        let fam = fams.entry(name).or_insert_with(|| Family {
            help,
            unit: Unit::Count,
            kind: FamilyKind::Counter(Vec::new()),
        });
        if let FamilyKind::Counter(series) = &mut fam.kind {
            bind(series, owned_labels(labels), handle);
        } else {
            debug_assert!(false, "metric {name} registered with a different type");
        }
    }

    /// Binds an existing [`Gauge`] handle under `name` with `labels`.
    pub fn register_gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
        handle: &Gauge,
    ) {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let mut fams = self.lock();
        let fam = fams.entry(name).or_insert_with(|| Family {
            help,
            unit: Unit::Count,
            kind: FamilyKind::Gauge(Vec::new()),
        });
        if let FamilyKind::Gauge(series) = &mut fam.kind {
            bind(series, owned_labels(labels), handle);
        } else {
            debug_assert!(false, "metric {name} registered with a different type");
        }
    }

    /// Binds an existing [`Histogram`] handle under `name` with `labels`.
    pub fn register_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        unit: Unit,
        labels: &[(&'static str, &str)],
        handle: &Histogram,
    ) {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let mut fams = self.lock();
        let fam = fams.entry(name).or_insert_with(|| Family {
            help,
            unit,
            kind: FamilyKind::Histogram(Vec::new()),
        });
        if let FamilyKind::Histogram(series) = &mut fam.kind {
            bind(series, owned_labels(labels), handle);
        } else {
            debug_assert!(false, "metric {name} registered with a different type");
        }
    }

    /// Creates (or fetches) a counter series and registers it in one step.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Labeled variant of [`MetricsRegistry::counter`].
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Counter {
        let handle = Counter::new();
        let owned = owned_labels(labels);
        {
            let mut fams = self.lock();
            if let Some(Family {
                kind: FamilyKind::Counter(series),
                ..
            }) = fams.get_mut(name)
            {
                if let Some(s) = series.iter().find(|s| s.labels == owned) {
                    return s.handle.clone();
                }
            }
        }
        self.register_counter(name, help, labels, &handle);
        handle
    }

    /// Creates (or fetches) a gauge series and registers it in one step.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        let handle = Gauge::new();
        {
            let fams = self.lock();
            if let Some(Family {
                kind: FamilyKind::Gauge(series),
                ..
            }) = fams.get(name)
            {
                if let Some(s) = series.iter().find(|s| s.labels.is_empty()) {
                    return s.handle.clone();
                }
            }
        }
        self.register_gauge(name, help, &[], &handle);
        handle
    }

    /// Creates (or fetches) an unlabeled histogram series and registers it.
    pub fn histogram(&self, name: &'static str, help: &'static str, unit: Unit) -> Histogram {
        let handle = Histogram::new();
        {
            let fams = self.lock();
            if let Some(Family {
                kind: FamilyKind::Histogram(series),
                ..
            }) = fams.get(name)
            {
                if let Some(s) = series.iter().find(|s| s.labels.is_empty()) {
                    return s.handle.clone();
                }
            }
        }
        self.register_histogram(name, help, unit, &[], &handle);
        handle
    }

    /// Renders every family in the Prometheus text exposition format.
    ///
    /// Histograms emit cumulative `_bucket{le=...}` samples up to the
    /// highest non-empty bucket plus `+Inf`, then `_sum` and `_count`.
    /// `_count` is derived from the same bucket snapshot the `le` samples
    /// came from, so a scrape is never internally torn.
    pub fn render_prometheus(&self) -> String {
        let fams = self.lock();
        let mut out = String::new();
        for (name, fam) in fams.iter() {
            out.push_str(&format!("# HELP {name} {}\n", fam.help));
            out.push_str(&format!("# TYPE {name} {}\n", fam.type_name()));
            match &fam.kind {
                FamilyKind::Counter(series) => {
                    for s in series {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(&s.labels, None),
                            s.handle.get()
                        ));
                    }
                }
                FamilyKind::Gauge(series) => {
                    for s in series {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(&s.labels, None),
                            s.handle.get()
                        ));
                    }
                }
                FamilyKind::Histogram(series) => {
                    for s in series {
                        render_histogram(&mut out, name, fam.unit, s);
                    }
                }
            }
        }
        out
    }

    /// Renders every family as a JSON document.
    ///
    /// Histogram series report `count`, `sum`, `max`, and derived
    /// `p50`/`p90`/`p99` (scaled per the family's [`Unit`]).
    pub fn render_json(&self) -> String {
        let fams = self.lock();
        let mut out = String::from("{\"metrics\":[");
        let mut first_fam = true;
        for (name, fam) in fams.iter() {
            if !first_fam {
                out.push(',');
            }
            first_fam = false;
            out.push_str(&format!(
                "{{\"name\":\"{name}\",\"type\":\"{}\",\"help\":\"{}\",\"series\":[",
                fam.type_name(),
                json_escape(fam.help)
            ));
            let mut first = true;
            match &fam.kind {
                FamilyKind::Counter(series) => {
                    for s in series {
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push_str(&format!(
                            "{{\"labels\":{},\"value\":{}}}",
                            json_labels(&s.labels),
                            s.handle.get()
                        ));
                    }
                }
                FamilyKind::Gauge(series) => {
                    for s in series {
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push_str(&format!(
                            "{{\"labels\":{},\"value\":{}}}",
                            json_labels(&s.labels),
                            s.handle.get()
                        ));
                    }
                }
                FamilyKind::Histogram(series) => {
                    let scale = fam.unit.scale();
                    for s in series {
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        let snap = s.handle.snapshot();
                        out.push_str(&format!(
                            "{{\"labels\":{},\"count\":{},\"sum\":{},\"max\":{},\
                             \"p50\":{},\"p90\":{},\"p99\":{}}}",
                            json_labels(&s.labels),
                            snap.count(),
                            fmt_f64(snap.sum as f64 * scale),
                            fmt_f64(snap.max as f64 * scale),
                            fmt_f64(snap.quantile(0.50) as f64 * scale),
                            fmt_f64(snap.quantile(0.90) as f64 * scale),
                            fmt_f64(snap.quantile(0.99) as f64 * scale),
                        ));
                    }
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn render_histogram(out: &mut String, name: &str, unit: Unit, s: &Series<Histogram>) {
    let snap = s.handle.snapshot();
    let scale = unit.scale();
    let total = snap.count();
    let top = snap
        .buckets
        .iter()
        .rposition(|&c| c > 0)
        .unwrap_or(0)
        .min(HIST_BUCKETS - 2);
    let mut acc = 0u64;
    for (i, &c) in snap.buckets.iter().enumerate().take(top + 1) {
        acc += c;
        let le = crate::metric::bucket_upper_bound(i) as f64 * scale;
        out.push_str(&format!(
            "{name}_bucket{} {acc}\n",
            render_labels(&s.labels, Some(&fmt_f64(le)))
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{} {total}\n",
        render_labels(&s.labels, Some("+Inf"))
    ));
    out.push_str(&format!(
        "{name}_sum{} {}\n",
        render_labels(&s.labels, None),
        fmt_f64(snap.sum as f64 * scale)
    ));
    out.push_str(&format!(
        "{name}_count{} {total}\n",
        render_labels(&s.labels, None)
    ));
}

/// Formats a float for exposition: integral values render without a
/// fractional part, everything else uses shortest-round-trip `Display`.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn render_labels(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn json_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &Labels) -> String {
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_handle_is_shared() {
        let reg = MetricsRegistry::new();
        let c = Counter::new();
        reg.register_counter("test_total", "a test counter", &[], &c);
        c.add(7);
        let text = reg.render_prometheus();
        assert!(text.contains("test_total 7"), "{text}");
        assert!(text.contains("# TYPE test_total counter"));
    }

    #[test]
    fn counter_with_returns_same_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter_with("lane_total", "per lane", &[("lane", "0")]);
        let b = reg.counter_with("lane_total", "per lane", &[("lane", "0")]);
        let other = reg.counter_with("lane_total", "per lane", &[("lane", "1")]);
        a.inc();
        b.inc();
        other.add(5);
        let text = reg.render_prometheus();
        assert!(text.contains("lane_total{lane=\"0\"} 2"), "{text}");
        assert!(text.contains("lane_total{lane=\"1\"} 5"), "{text}");
    }

    #[test]
    fn histogram_rendering_has_consistent_count() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat_seconds", "latency", Unit::Seconds);
        h.observe(1_000);
        h.observe(1_000_000);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("lat_seconds_count 2"), "{text}");
        crate::validate_prometheus(&text).expect("valid exposition");
    }

    #[test]
    fn json_rendering_is_balanced() {
        let reg = MetricsRegistry::new();
        reg.counter("a_total", "a").add(3);
        reg.gauge("b_depth", "b").set(-2);
        reg.histogram("c_bytes", "c", Unit::Bytes).observe(42);
        let json = reg.render_json();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(json.contains("\"name\":\"a_total\""));
        assert!(json.contains("\"value\":-2"));
        assert!(json.contains("\"p99\":"));
    }
}
