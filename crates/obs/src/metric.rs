//! Lock-free metric primitives: [`Counter`], [`Gauge`], and [`Histogram`].
//!
//! Every handle is a cheap clone around an `Arc`'d atomic, so components can
//! own their instruments *detached* from any registry and hot paths never
//! take a lock. A [`crate::MetricsRegistry`] later binds the same handles to
//! static names for exposition; scrapes read the atomics directly, so writers
//! and scrapers never coordinate.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Monotonically increasing `u64` counter.
///
/// All updates are `Relaxed` atomic adds; reads may lag concurrent writers
/// but are never torn and never decrease.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Signed gauge for instantaneous values (queue depths, current state).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water mark).
    pub fn set_max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets. Bucket `i >= 1` counts raw values in
/// `[2^(i-1), 2^i)`; bucket `0` counts zeros; the last bucket absorbs
/// everything at or above `2^62`.
pub const HIST_BUCKETS: usize = 64;

#[derive(Debug)]
pub(crate) struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// Fixed-bucket log2-scale histogram over `u64` observations.
///
/// Recording is three relaxed atomic ops (bucket add, sum add, max
/// fetch-max) — no locks, no allocation. Quantiles (p50/p90/p99) and the
/// max are derived from a [`HistogramSnapshot`] taken at read time; a
/// snapshot copies each bucket once, so the counts it reports are
/// internally consistent (`count` is the sum of the buckets it returns).
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            inner: Arc::new(HistInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

/// Index of the bucket that holds `v`: zero maps to bucket 0, otherwise the
/// bit length of `v`, clamped into the last bucket.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`); the last bucket is
/// unbounded and reports `u64::MAX`.
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        self.inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in whole nanoseconds.
    pub fn observe_nanos(&self, d: Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Copies the buckets, sum, and max into an immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.inner.buckets[i].load(Ordering::Relaxed)),
            sum: self.inner.sum.load(Ordering::Relaxed),
            max: self.inner.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`]'s state.
///
/// All derived figures (`count`, quantiles) are computed from the same
/// copied bucket array, so a snapshot can never report a count that
/// disagrees with its own buckets even while writers keep recording.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of all raw observations.
    pub sum: u64,
    /// Largest observation recorded so far.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Total number of observations in this snapshot.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`) in raw units.
    ///
    /// Walks the cumulative buckets to the one containing the rank and
    /// returns that bucket's upper bound, capped by the recorded max so the
    /// open-ended last bucket still yields a finite value.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut acc = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            acc += c;
            if acc >= rank {
                return if i == 0 {
                    0
                } else {
                    bucket_upper_bound(i).min(self.max)
                };
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_cover_their_indices() {
        for i in 1..HIST_BUCKETS - 1 {
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            assert_eq!(bucket_index(hi + 1), i + 1);
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let shared = c.clone();
        shared.inc();
        assert_eq!(c.get(), 6);

        let g = Gauge::new();
        g.set(10);
        g.dec();
        g.add(-3);
        assert_eq!(g.get(), 6);
        g.set_max(4);
        assert_eq!(g.get(), 6);
        g.set_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_quantiles_from_buckets() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 100, 100, 100, 100, 100, 100, 5000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 10);
        assert_eq!(s.sum, 5602);
        assert_eq!(s.max, 5000);
        // p50 rank 5 lands in the [64,128) bucket -> upper bound 127.
        assert_eq!(s.quantile(0.5), 127);
        // p99 rank 10 lands in the bucket holding 5000, capped by max.
        assert_eq!(s.quantile(0.99), 5000);
        assert_eq!(s.quantile(0.0), 0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.99), 0);
    }
}
