//! `promcheck` — validates Prometheus text exposition format.
//!
//! Reads from the file given as the first argument (or stdin when absent
//! or `-`), runs [`mmv_obs::validate_prometheus`], and exits non-zero with
//! the first error on malformed input. CI pipes live `render_prometheus()`
//! scrapes through this binary.
#![forbid(unsafe_code)]

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let arg = std::env::args().nth(1);
    let (source, text) = match arg.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("promcheck: reading stdin: {e}");
                return ExitCode::from(2);
            }
            ("<stdin>".to_string(), buf)
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(buf) => (path.to_string(), buf),
            Err(e) => {
                eprintln!("promcheck: reading {path}: {e}");
                return ExitCode::from(2);
            }
        },
    };
    match mmv_obs::validate_prometheus(&text) {
        Ok(()) => {
            let samples = text
                .lines()
                .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
                .count();
            println!("promcheck: {source}: OK ({samples} samples)");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("promcheck: {source}: {msg}");
            ExitCode::FAILURE
        }
    }
}
