//! Ground DRed — the delete/rederive algorithm of Gupta, Mumick &
//! Subrahmanian \[22\] that Section 3.1.1 of the paper extends to
//! constraints. This is the baseline the Extended DRed and StDel
//! algorithms are measured against (experiments E1, E2).
//!
//! Given a materialized view `M` of a definite program and a set of EDB
//! deletions/insertions:
//!
//! 1. **Overestimate**: semi-naively propagate deletions — a derived fact
//!    is possibly-deleted if some rule derivation for it uses a
//!    possibly-deleted fact.
//! 2. **Put back**: a possibly-deleted fact with an alternative
//!    derivation from the remaining view is *rederived* (this is the
//!    expensive step StDel eliminates).
//! 3. **Insert**: semi-naively propagate insertions.

use crate::ast::Fact;
use crate::database::Database;
use crate::eval::{instantiate, join, TupleSource};
use crate::program::DlProgram;

/// Statistics about one DRed maintenance run (exposed so benchmarks can
/// report the overestimate and rederivation volumes the paper discusses).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DredStats {
    /// Facts in the deletion overestimate.
    pub overestimated: usize,
    /// Facts put back by rederivation.
    pub rederived: usize,
    /// Facts added by insertion propagation.
    pub inserted: usize,
}

/// Applies an EDB update to a materialized view with DRed.
///
/// `materialized` must be the least model of `program` (EDB ∪ IDB).
/// Returns the maintained view and run statistics.
pub fn apply_update(
    program: &DlProgram,
    materialized: &Database,
    deletions: &[Fact],
    insertions: &[Fact],
) -> (Database, DredStats) {
    let mut stats = DredStats::default();
    let mut view = materialized.clone();

    // ---- Step 1: overestimate deletions --------------------------------
    let mut overestimate = Database::new();
    let mut delta = Database::new();
    for f in deletions {
        if view.contains(f) && overestimate.insert(f) {
            delta.insert(f);
        }
    }
    while !delta.is_empty() {
        let mut next = Database::new();
        for rule in &program.rules {
            for dpos in 0..rule.body.len() {
                if delta.relation(&rule.body[dpos].pred).is_none() {
                    continue;
                }
                let sources: Vec<&dyn TupleSource> = (0..rule.body.len())
                    .map(|i| {
                        if i == dpos {
                            &delta as &dyn TupleSource
                        } else {
                            // Other positions draw from the *original*
                            // view: any derivation that existed.
                            materialized as &dyn TupleSource
                        }
                    })
                    .collect();
                join(&rule.body, &sources, &mut |b| {
                    if let Some(args) = instantiate(&rule.head, b) {
                        let fact = Fact {
                            pred: rule.head.pred.clone(),
                            args,
                        };
                        if materialized.contains(&fact) && !overestimate.contains(&fact) {
                            overestimate.insert(&fact);
                            next.insert(&fact);
                        }
                    }
                });
            }
        }
        delta = next;
    }
    stats.overestimated = overestimate.len();
    for f in overestimate.facts() {
        view.remove(&f);
    }

    // ---- Step 2: rederive ------------------------------------------------
    // A possibly-deleted *derived* fact comes back if some rule derives it
    // from the remaining view. (Deleted EDB facts never come back.)
    let idb = program.idb_predicates();
    let mut rederived = Database::new();
    loop {
        let mut progressed = false;
        for rule in &program.rules {
            if overestimate.relation(&rule.head.pred).is_none() {
                continue;
            }
            let sources: Vec<&dyn TupleSource> = rule
                .body
                .iter()
                .map(|_| &view as &dyn TupleSource)
                .collect();
            join(&rule.body, &sources, &mut |b| {
                if let Some(args) = instantiate(&rule.head, b) {
                    let fact = Fact {
                        pred: rule.head.pred.clone(),
                        args,
                    };
                    if idb.contains(&fact.pred)
                        && overestimate.contains(&fact)
                        && !rederived.contains(&fact)
                    {
                        rederived.insert(&fact);
                    }
                }
            });
        }
        for f in rederived.facts() {
            if overestimate.remove(&f) {
                view.insert(&f);
                stats.rederived += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }

    // ---- Step 3: insertions ----------------------------------------------
    let mut delta = Database::new();
    for f in insertions {
        if view.insert(f) {
            delta.insert(f);
        }
    }
    // First, rules might fire purely from existing facts plus the new
    // ones; semi-naive propagation from the inserted delta suffices since
    // the view was already closed under the rules.
    while !delta.is_empty() {
        let mut next = Database::new();
        for rule in &program.rules {
            for dpos in 0..rule.body.len() {
                if delta.relation(&rule.body[dpos].pred).is_none() {
                    continue;
                }
                let sources: Vec<&dyn TupleSource> = (0..rule.body.len())
                    .map(|i| {
                        if i == dpos {
                            &delta as &dyn TupleSource
                        } else {
                            &view as &dyn TupleSource
                        }
                    })
                    .collect();
                join(&rule.body, &sources, &mut |b| {
                    if let Some(args) = instantiate(&rule.head, b) {
                        let fact = Fact {
                            pred: rule.head.pred.clone(),
                            args,
                        };
                        if !view.contains(&fact) {
                            next.insert(&fact);
                        }
                    }
                });
            }
        }
        for f in next.facts() {
            view.insert(&f);
            stats.inserted += 1;
        }
        delta = next;
    }

    (view, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DlAtom, DlRule, DlTerm};
    use crate::eval::evaluate;
    use mmv_constraints::Value;

    fn v(i: i64) -> Value {
        Value::int(i)
    }

    fn tc_program(edges: &[(i64, i64)]) -> DlProgram {
        DlProgram::new(
            vec![
                DlRule::new(
                    DlAtom::new("tc", vec![DlTerm::Var(0), DlTerm::Var(1)]),
                    vec![DlAtom::new("e", vec![DlTerm::Var(0), DlTerm::Var(1)])],
                )
                .unwrap(),
                DlRule::new(
                    DlAtom::new("tc", vec![DlTerm::Var(0), DlTerm::Var(1)]),
                    vec![
                        DlAtom::new("e", vec![DlTerm::Var(0), DlTerm::Var(2)]),
                        DlAtom::new("tc", vec![DlTerm::Var(2), DlTerm::Var(1)]),
                    ],
                )
                .unwrap(),
            ],
            edges
                .iter()
                .map(|&(a, b)| Fact::new("e", vec![v(a), v(b)]))
                .collect(),
        )
    }

    /// Oracle: apply the update to the EDB and recompute from scratch.
    fn oracle(program: &DlProgram, deletions: &[Fact], insertions: &[Fact]) -> Database {
        let mut p = program.clone();
        p.edb.retain(|f| !deletions.contains(f));
        p.edb.extend(insertions.iter().cloned());
        evaluate(&p)
    }

    #[test]
    fn delete_edge_matches_recompute() {
        let p = tc_program(&[(1, 2), (2, 3), (3, 4), (1, 3)]);
        let m = evaluate(&p);
        let del = vec![Fact::new("e", vec![v(2), v(3)])];
        let (maintained, stats) = apply_update(&p, &m, &del, &[]);
        let expected = oracle(&p, &del, &[]);
        assert_eq!(maintained.sorted_facts(), expected.sorted_facts());
        // tc(1,3) must survive via the direct edge (rederivation).
        assert!(maintained.contains(&Fact::new("tc", vec![v(1), v(3)])));
        assert!(stats.rederived > 0, "alternative derivation exercised");
    }

    #[test]
    fn insert_edge_matches_recompute() {
        let p = tc_program(&[(1, 2), (3, 4)]);
        let m = evaluate(&p);
        let ins = vec![Fact::new("e", vec![v(2), v(3)])];
        let (maintained, _) = apply_update(&p, &m, &[], &ins);
        let expected = oracle(&p, &[], &ins);
        assert_eq!(maintained.sorted_facts(), expected.sorted_facts());
        assert!(maintained.contains(&Fact::new("tc", vec![v(1), v(4)])));
    }

    #[test]
    fn mixed_update_matches_recompute() {
        let p = tc_program(&[(1, 2), (2, 3), (3, 1)]);
        let m = evaluate(&p);
        let del = vec![Fact::new("e", vec![v(3), v(1)])];
        let ins = vec![Fact::new("e", vec![v(3), v(5)])];
        let (maintained, _) = apply_update(&p, &m, &del, &ins);
        let expected = oracle(&p, &del, &ins);
        assert_eq!(maintained.sorted_facts(), expected.sorted_facts());
    }

    #[test]
    fn cycle_deletion_fully_unwinds() {
        // On a pure cycle, deleting one edge removes many tc facts; DRed's
        // overestimate is the whole closure and nothing is rederived
        // incorrectly.
        let p = tc_program(&[(1, 2), (2, 3), (3, 1)]);
        let m = evaluate(&p);
        let del = vec![Fact::new("e", vec![v(1), v(2)])];
        let (maintained, _) = apply_update(&p, &m, &del, &[]);
        let expected = oracle(&p, &del, &[]);
        assert_eq!(maintained.sorted_facts(), expected.sorted_facts());
        assert!(!maintained.contains(&Fact::new("tc", vec![v(1), v(2)])));
        assert!(maintained.contains(&Fact::new("tc", vec![v(2), v(1)])));
    }

    #[test]
    fn deleting_absent_fact_is_noop() {
        let p = tc_program(&[(1, 2)]);
        let m = evaluate(&p);
        let (maintained, stats) = apply_update(&p, &m, &[Fact::new("e", vec![v(9), v(9)])], &[]);
        assert_eq!(maintained.sorted_facts(), m.sorted_facts());
        assert_eq!(stats.overestimated, 0);
    }
}
