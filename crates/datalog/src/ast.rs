//! Ground Datalog abstract syntax: the language of the *unconstrained*
//! deductive databases that the paper's baselines (DRed \[22\], counting
//! \[21\]) operate on. The constrained engine specializes to this case when
//! every constraint is a variable/constant equality, which is how the
//! cross-engine equivalence tests are built.

use mmv_constraints::Value;
use std::fmt;
use std::sync::Arc;

/// A Datalog variable (rule-local).
pub type DlVar = u32;

/// A term in a rule atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DlTerm {
    /// A rule variable.
    Var(DlVar),
    /// A constant.
    Const(Value),
}

impl DlTerm {
    /// Convenience integer constant.
    pub fn int(i: i64) -> Self {
        DlTerm::Const(Value::Int(i))
    }

    /// Convenience string constant.
    pub fn str(s: &str) -> Self {
        DlTerm::Const(Value::str(s))
    }
}

impl fmt::Display for DlTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DlTerm::Var(v) => write!(f, "V{v}"),
            DlTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A (possibly non-ground) atom in a rule.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DlAtom {
    /// Predicate name.
    pub pred: Arc<str>,
    /// Argument terms.
    pub args: Vec<DlTerm>,
}

impl DlAtom {
    /// Builds an atom.
    pub fn new(pred: &str, args: Vec<DlTerm>) -> Self {
        DlAtom {
            pred: Arc::from(pred),
            args,
        }
    }

    /// Variables occurring in the atom.
    pub fn vars(&self) -> impl Iterator<Item = DlVar> + '_ {
        self.args.iter().filter_map(|t| match t {
            DlTerm::Var(v) => Some(*v),
            DlTerm::Const(_) => None,
        })
    }
}

impl fmt::Display for DlAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A ground fact.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    /// Predicate name.
    pub pred: Arc<str>,
    /// Ground arguments.
    pub args: Vec<Value>,
}

impl Fact {
    /// Builds a fact.
    pub fn new(pred: &str, args: Vec<Value>) -> Self {
        Fact {
            pred: Arc::from(pred),
            args,
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A definite rule `head :- body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DlRule {
    /// The head atom.
    pub head: DlAtom,
    /// The body atoms (all positive).
    pub body: Vec<DlAtom>,
}

impl DlRule {
    /// Builds a rule, checking *safety*: every head variable must occur
    /// in the body.
    pub fn new(head: DlAtom, body: Vec<DlAtom>) -> Result<Self, UnsafeRule> {
        let body_vars: std::collections::HashSet<DlVar> =
            body.iter().flat_map(|a| a.vars()).collect();
        for v in head.vars() {
            if !body_vars.contains(&v) {
                return Err(UnsafeRule {
                    rule: format!("{head} :- …"),
                    var: v,
                });
            }
        }
        Ok(DlRule { head, body })
    }
}

impl fmt::Display for DlRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Error: a head variable does not occur in the rule body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsafeRule {
    /// Rendering of the offending rule.
    pub rule: String,
    /// The unbound head variable.
    pub var: DlVar,
}

impl fmt::Display for UnsafeRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsafe rule {}: head variable V{}", self.rule, self.var)
    }
}

impl std::error::Error for UnsafeRule {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safety_check() {
        let head = DlAtom::new("p", vec![DlTerm::Var(0)]);
        let ok = DlRule::new(head.clone(), vec![DlAtom::new("q", vec![DlTerm::Var(0)])]);
        assert!(ok.is_ok());
        let bad = DlRule::new(head, vec![DlAtom::new("q", vec![DlTerm::Var(1)])]);
        assert!(bad.is_err());
    }

    #[test]
    fn ground_head_is_safe_with_empty_body() {
        let head = DlAtom::new("p", vec![DlTerm::int(1)]);
        assert!(DlRule::new(head, vec![]).is_ok());
    }

    #[test]
    fn display_forms() {
        let r = DlRule::new(
            DlAtom::new("tc", vec![DlTerm::Var(0), DlTerm::Var(1)]),
            vec![
                DlAtom::new("edge", vec![DlTerm::Var(0), DlTerm::Var(2)]),
                DlAtom::new("tc", vec![DlTerm::Var(2), DlTerm::Var(1)]),
            ],
        )
        .unwrap();
        assert_eq!(r.to_string(), "tc(V0, V1) :- edge(V0, V2), tc(V2, V1)");
    }
}
