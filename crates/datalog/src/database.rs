//! Tuple storage for the ground engine: per-predicate relations with
//! per-position hash indexes (the storage crate's [`HashIndex`]),
//! chosen-most-selective at lookup time.

use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::Value;
use mmv_storage::HashIndex;
use std::sync::Arc;

use crate::ast::Fact;

/// A stored relation: deduplicated tuples plus one hash index per column.
#[derive(Debug, Default, Clone)]
pub struct Relation {
    tuples: Vec<Vec<Value>>,
    position_of: FxHashMap<Vec<Value>, usize>,
    /// `indexes[col]` maps a value to the tuple slots having it at `col`.
    indexes: Vec<HashIndex>,
    /// Tombstoned slots (deleted tuples keep their slot).
    dead: Vec<bool>,
    live: usize,
}

impl Relation {
    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Whether `tuple` is present.
    pub fn contains(&self, tuple: &[Value]) -> bool {
        match self.position_of.get(tuple) {
            Some(&i) => !self.dead[i],
            None => false,
        }
    }

    /// Inserts a tuple; returns `true` if it was new.
    pub fn insert(&mut self, tuple: Vec<Value>) -> bool {
        if let Some(&i) = self.position_of.get(&tuple) {
            if !self.dead[i] {
                return false;
            }
            // Resurrect the tombstoned slot (indexes still point at it).
            self.dead[i] = false;
            self.live += 1;
            return true;
        }
        let slot = self.tuples.len();
        if self.indexes.len() < tuple.len() {
            self.indexes.resize_with(tuple.len(), HashIndex::new);
        }
        for (col, v) in tuple.iter().enumerate() {
            self.indexes[col].add(v.clone(), slot);
        }
        self.position_of.insert(tuple.clone(), slot);
        self.tuples.push(tuple);
        self.dead.push(false);
        self.live += 1;
        true
    }

    /// Removes a tuple; returns `true` if it was present.
    pub fn remove(&mut self, tuple: &[Value]) -> bool {
        match self.position_of.get(tuple) {
            Some(&i) if !self.dead[i] => {
                self.dead[i] = true;
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Iterates live tuples.
    pub fn iter(&self) -> impl Iterator<Item = &[Value]> {
        self.tuples
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.dead[*i])
            .map(|(_, t)| t.as_slice())
    }

    /// Streams the live tuples matching a pattern (`None` = wildcard)
    /// into `f`, using the most selective bound column's index. This is
    /// the allocation-free primitive behind [`Relation::matching`] and
    /// the join engine's candidate enumeration.
    pub fn for_each_matching<'a>(
        &'a self,
        pattern: &[Option<Value>],
        f: &mut dyn FnMut(&'a [Value]),
    ) {
        // Pick the bound column with the smallest candidate list.
        let mut best: Option<&[usize]> = None;
        for (col, p) in pattern.iter().enumerate() {
            if let Some(v) = p {
                let slots: &[usize] = self.indexes.get(col).map(|ix| ix.lookup(v)).unwrap_or(&[]);
                if best.is_none_or(|b| slots.len() < b.len()) {
                    best = Some(slots);
                }
            }
        }
        let check = |t: &[Value]| {
            pattern
                .iter()
                .zip(t)
                .all(|(p, v)| p.as_ref().is_none_or(|pv| pv == v))
        };
        match best {
            Some(slots) => {
                for &i in slots {
                    if !self.dead[i] {
                        let t = self.tuples[i].as_slice();
                        if check(t) {
                            f(t);
                        }
                    }
                }
            }
            None => {
                for t in self.iter() {
                    if check(t) {
                        f(t);
                    }
                }
            }
        }
    }

    /// Live tuples matching a pattern, collected into a vector.
    pub fn matching<'a>(&'a self, pattern: &[Option<Value>]) -> Vec<&'a [Value]> {
        let mut out = Vec::new();
        self.for_each_matching(pattern, &mut |t| out.push(t));
        out
    }
}

/// A set of named relations.
#[derive(Debug, Default, Clone)]
pub struct Database {
    rels: FxHashMap<Arc<str>, Relation>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a database from facts.
    pub fn from_facts<I: IntoIterator<Item = Fact>>(facts: I) -> Self {
        let mut db = Database::new();
        for f in facts {
            db.insert(&f);
        }
        db
    }

    /// Inserts a fact; returns `true` if new.
    pub fn insert(&mut self, fact: &Fact) -> bool {
        self.rels
            .entry(fact.pred.clone())
            .or_default()
            .insert(fact.args.clone())
    }

    /// Removes a fact; returns `true` if present.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        self.rels
            .get_mut(&fact.pred)
            .map(|r| r.remove(&fact.args))
            .unwrap_or(false)
    }

    /// Whether the fact is present.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.rels
            .get(&fact.pred)
            .map(|r| r.contains(&fact.args))
            .unwrap_or(false)
    }

    /// The relation for `pred`, if any tuples were ever stored.
    pub fn relation(&self, pred: &str) -> Option<&Relation> {
        self.rels.get(pred)
    }

    /// Total number of live facts.
    pub fn len(&self) -> usize {
        self.rels.values().map(|r| r.len()).sum()
    }

    /// Whether no live facts exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates all live facts.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.rels.iter().flat_map(|(p, r)| {
            r.iter().map(move |t| Fact {
                pred: p.clone(),
                args: t.to_vec(),
            })
        })
    }

    /// All facts as a sorted vector (for deterministic comparison).
    pub fn sorted_facts(&self) -> Vec<Fact> {
        let mut v: Vec<Fact> = self.facts().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(p: &str, args: &[i64]) -> Fact {
        Fact::new(p, args.iter().map(|&i| Value::int(i)).collect())
    }

    #[test]
    fn insert_remove_contains() {
        let mut db = Database::new();
        assert!(db.insert(&f("e", &[1, 2])));
        assert!(!db.insert(&f("e", &[1, 2])));
        assert!(db.contains(&f("e", &[1, 2])));
        assert!(db.remove(&f("e", &[1, 2])));
        assert!(!db.contains(&f("e", &[1, 2])));
        assert!(!db.remove(&f("e", &[1, 2])));
        assert_eq!(db.len(), 0);
    }

    #[test]
    fn resurrection_after_delete() {
        let mut db = Database::new();
        db.insert(&f("e", &[1, 2]));
        db.remove(&f("e", &[1, 2]));
        assert!(db.insert(&f("e", &[1, 2])));
        assert_eq!(db.len(), 1);
        let r = db.relation("e").unwrap();
        assert_eq!(r.matching(&[Some(Value::int(1)), None]).len(), 1);
    }

    #[test]
    fn pattern_matching_uses_selective_index() {
        let mut db = Database::new();
        for i in 0..100 {
            db.insert(&f("e", &[1, i]));
        }
        db.insert(&f("e", &[2, 5]));
        let r = db.relation("e").unwrap();
        // Bound second column is far more selective.
        let hits = r.matching(&[None, Some(Value::int(5))]);
        assert_eq!(hits.len(), 2);
        let hits2 = r.matching(&[Some(Value::int(2)), Some(Value::int(5))]);
        assert_eq!(hits2.len(), 1);
        let all = r.matching(&[None, None]);
        assert_eq!(all.len(), 101);
    }

    #[test]
    fn unseen_value_short_circuits() {
        let mut db = Database::new();
        db.insert(&f("e", &[1, 2]));
        let r = db.relation("e").unwrap();
        assert!(r.matching(&[Some(Value::int(99)), None]).is_empty());
    }
}
