//! Datalog programs: rule collections, the predicate dependency graph,
//! and stratification by dependency (used by the counting baseline, which
//! is only defined for nonrecursive programs — the paper's motivation for
//! StDel).

use crate::ast::{DlRule, Fact};
use mmv_constraints::fxhash::{FxHashMap, FxHashSet};
use std::sync::Arc;

/// A ground Datalog program: rules plus the extensional facts.
#[derive(Debug, Clone, Default)]
pub struct DlProgram {
    /// The rules (IDB definitions).
    pub rules: Vec<DlRule>,
    /// The extensional (EDB) facts.
    pub edb: Vec<Fact>,
}

impl DlProgram {
    /// Builds a program.
    pub fn new(rules: Vec<DlRule>, edb: Vec<Fact>) -> Self {
        DlProgram { rules, edb }
    }

    /// Predicates defined by rules (intensional).
    pub fn idb_predicates(&self) -> FxHashSet<Arc<str>> {
        self.rules.iter().map(|r| r.head.pred.clone()).collect()
    }

    /// Topological strata of intensional predicates: stratum k's rules
    /// only depend on EDB predicates and strata `< k`… unless the program
    /// is recursive, in which case `Err` names a predicate on a cycle.
    pub fn strata(&self) -> Result<Vec<Vec<Arc<str>>>, Recursive> {
        let idb = self.idb_predicates();
        // Edges: head depends on each IDB body predicate.
        let mut deps: FxHashMap<Arc<str>, FxHashSet<Arc<str>>> = FxHashMap::default();
        for p in &idb {
            deps.entry(p.clone()).or_default();
        }
        for r in &self.rules {
            for b in &r.body {
                if idb.contains(&b.pred) {
                    deps.entry(r.head.pred.clone())
                        .or_default()
                        .insert(b.pred.clone());
                }
            }
        }
        // Kahn's algorithm grouping by depth.
        let mut remaining: FxHashMap<Arc<str>, FxHashSet<Arc<str>>> = deps.clone();
        let mut strata: Vec<Vec<Arc<str>>> = Vec::new();
        let mut placed: FxHashSet<Arc<str>> = FxHashSet::default();
        while !remaining.is_empty() {
            let mut ready: Vec<Arc<str>> = remaining
                .iter()
                .filter(|(_, ds)| ds.iter().all(|d| placed.contains(d)))
                .map(|(p, _)| p.clone())
                .collect();
            if ready.is_empty() {
                // A cycle: report some member.
                let p = remaining.keys().next().expect("nonempty").clone();
                return Err(Recursive { predicate: p });
            }
            ready.sort();
            for p in &ready {
                remaining.remove(p);
                placed.insert(p.clone());
            }
            strata.push(ready);
        }
        Ok(strata)
    }

    /// Whether any intensional predicate depends on itself (directly or
    /// transitively).
    pub fn is_recursive(&self) -> bool {
        self.strata().is_err()
    }
}

/// Error: the program is recursive (cycle through `predicate`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recursive {
    /// A predicate on the dependency cycle.
    pub predicate: Arc<str>,
}

impl std::fmt::Display for Recursive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "program is recursive through predicate {:?} (the counting \
             algorithm is not applicable — see paper §3.1.2)",
            self.predicate
        )
    }
}

impl std::error::Error for Recursive {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DlAtom, DlTerm};

    fn rule(head: (&str, &[u32]), body: &[(&str, &[u32])]) -> DlRule {
        let mk =
            |(p, vs): (&str, &[u32])| DlAtom::new(p, vs.iter().map(|&v| DlTerm::Var(v)).collect());
        DlRule::new(mk(head), body.iter().map(|&a| mk(a)).collect()).unwrap()
    }

    #[test]
    fn layered_program_stratifies() {
        let p = DlProgram::new(
            vec![
                rule(("a", &[0]), &[("e", &[0])]),
                rule(("b", &[0]), &[("a", &[0])]),
                rule(("c", &[0]), &[("a", &[0]), ("b", &[0])]),
            ],
            vec![],
        );
        let s = p.strata().unwrap();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0], vec![Arc::<str>::from("a")]);
        assert_eq!(s[1], vec![Arc::<str>::from("b")]);
        assert_eq!(s[2], vec![Arc::<str>::from("c")]);
        assert!(!p.is_recursive());
    }

    #[test]
    fn transitive_closure_is_recursive() {
        let p = DlProgram::new(
            vec![
                rule(("tc", &[0, 1]), &[("e", &[0, 1])]),
                rule(("tc", &[0, 1]), &[("e", &[0, 2]), ("tc", &[2, 1])]),
            ],
            vec![],
        );
        assert!(p.is_recursive());
        assert_eq!(p.strata().unwrap_err().predicate.as_ref(), "tc");
    }

    #[test]
    fn mutual_recursion_detected() {
        let p = DlProgram::new(
            vec![
                rule(("p", &[0]), &[("q", &[0])]),
                rule(("q", &[0]), &[("p", &[0])]),
            ],
            vec![],
        );
        assert!(p.is_recursive());
    }
}
