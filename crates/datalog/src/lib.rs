//! # mmv-datalog
//!
//! A ground (unconstrained) Datalog engine with the three maintenance
//! baselines the paper positions itself against:
//!
//! * [`eval::evaluate`] — semi-naive bottom-up evaluation (and
//!   [`eval::recompute`], the full-recomputation baseline),
//! * [`dred`] — the DRed delete/rederive algorithm of Gupta, Mumick &
//!   Subrahmanian \[22\] that §3.1.1 extends to constraints,
//! * [`counting`] — the derivation-counting algorithm of Gupta, Katiyar &
//!   Mumick \[21\], which rejects recursive programs (the "infinite
//!   counts" limitation StDel removes).
//!
//! Ground programs are also the bridge for differential testing: the
//! constrained engine in `mmv-core` specializes to this engine on ground
//! inputs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod counting;
pub mod database;
pub mod dred;
pub mod eval;
pub mod program;

pub use ast::{DlAtom, DlRule, DlTerm, DlVar, Fact, UnsafeRule};
pub use counting::CountingEngine;
pub use database::{Database, Relation};
pub use dred::{apply_update, DredStats};
pub use eval::{evaluate, recompute};
pub use program::{DlProgram, Recursive};
