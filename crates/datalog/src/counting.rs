//! The counting algorithm of Gupta, Katiyar & Mumick \[21\]: every derived
//! fact carries the number of its derivations; EDB updates propagate
//! count deltas stratum by stratum, and a fact dies when its count
//! reaches zero.
//!
//! The paper improves on counting with StDel precisely because counting
//! is **not applicable to recursive views** (a fact on a cycle can have
//! infinitely many derivations). Construction therefore fails with
//! [`Recursive`] on recursive programs — experiment E5 demonstrates this
//! while StDel keeps working.

use crate::ast::{DlRule, Fact};
use crate::database::Database;
use crate::eval::{instantiate, join, TupleSource};
use crate::program::{DlProgram, Recursive};
use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::Value;
use std::sync::Arc;

type Counts = FxHashMap<Vec<Value>, i64>;

/// A materialized view maintained by derivation counting.
pub struct CountingEngine {
    program: DlProgram,
    strata: Vec<Vec<Arc<str>>>,
    /// Derivation counts per predicate (EDB facts count 1).
    counts: FxHashMap<Arc<str>, Counts>,
    /// Live-fact mirror used for joins.
    db: Database,
}

impl CountingEngine {
    /// Builds the counted view; fails on recursive programs.
    pub fn new(program: DlProgram) -> Result<Self, Recursive> {
        let strata = program.strata()?;
        let idb = program.idb_predicates();
        debug_assert!(
            program.edb.iter().all(|f| !idb.contains(&f.pred)),
            "EDB and IDB predicates must be disjoint"
        );
        let mut engine = CountingEngine {
            program,
            strata,
            counts: FxHashMap::default(),
            db: Database::new(),
        };
        // EDB facts count 1 each.
        let edb = engine.program.edb.clone();
        for f in edb {
            if engine.db.insert(&f) {
                *engine
                    .counts
                    .entry(f.pred.clone())
                    .or_default()
                    .entry(f.args.clone())
                    .or_insert(0) += 1;
            }
        }
        // Strata in dependency order: count every derivation.
        for stratum in engine.strata.clone() {
            for pred in &stratum {
                let rules: Vec<DlRule> = engine
                    .program
                    .rules
                    .iter()
                    .filter(|r| r.head.pred == *pred)
                    .cloned()
                    .collect();
                let mut new_counts: Counts = Counts::default();
                for rule in &rules {
                    let db = &engine.db;
                    let counts = &engine.counts;
                    let sources: Vec<&dyn TupleSource> =
                        rule.body.iter().map(|_| db as &dyn TupleSource).collect();
                    join(&rule.body, &sources, &mut |b| {
                        let mut product: i64 = 1;
                        for atom in &rule.body {
                            let t = instantiate(atom, b).expect("full bindings");
                            product = product.saturating_mul(lookup(counts, &atom.pred, &t));
                        }
                        if let Some(head) = instantiate(&rule.head, b) {
                            *new_counts.entry(head).or_insert(0) += product;
                        }
                    });
                }
                for (tuple, c) in &new_counts {
                    if *c > 0 {
                        engine.db.insert(&Fact {
                            pred: pred.clone(),
                            args: tuple.clone(),
                        });
                    }
                }
                engine.counts.insert(pred.clone(), new_counts);
            }
        }
        Ok(engine)
    }

    /// The live facts of the counted view.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Derivation count of a fact (0 if absent).
    pub fn count(&self, fact: &Fact) -> i64 {
        lookup(&self.counts, &fact.pred, &fact.args)
    }

    /// Applies EDB deletions and insertions, propagating count deltas.
    /// Set semantics per fact: the final state is
    /// `(present ∧ ¬deleted) ∨ inserted`; duplicate mentions within one
    /// batch are idempotent.
    pub fn update(&mut self, deletions: &[Fact], insertions: &[Fact]) {
        let del_set: std::collections::HashSet<&Fact> = deletions.iter().collect();
        let ins_set: std::collections::HashSet<&Fact> = insertions.iter().collect();
        let mut delta: FxHashMap<Arc<str>, Counts> = FxHashMap::default();
        let mut delta_db = Database::new();
        let mut seen: std::collections::HashSet<&Fact> = std::collections::HashSet::new();
        for f in deletions.iter().chain(insertions) {
            if !seen.insert(f) {
                continue;
            }
            let initial = self.db.contains(f);
            let fin = (initial && !del_set.contains(f)) || ins_set.contains(f);
            let d = fin as i64 - initial as i64;
            if d != 0 {
                *delta
                    .entry(f.pred.clone())
                    .or_default()
                    .entry(f.args.clone())
                    .or_insert(0) += d;
                delta_db.insert(f);
            }
        }
        // Old-state snapshot, kept only for predicates whose counts
        // change (unchanged predicates: old == new).
        let mut old_counts: FxHashMap<Arc<str>, Counts> = FxHashMap::default();
        let mut old_db = self.db.clone();

        // Apply the EDB deltas.
        for (pred, dc) in &delta {
            old_counts.insert(
                pred.clone(),
                self.counts.get(pred).cloned().unwrap_or_default(),
            );
            self.apply_deltas(pred, dc);
        }

        // Propagate stratum by stratum.
        for stratum in self.strata.clone() {
            for pred in &stratum {
                let rules: Vec<DlRule> = self
                    .program
                    .rules
                    .iter()
                    .filter(|r| r.head.pred == *pred)
                    .cloned()
                    .collect();
                let mut head_delta: Counts = Counts::default();
                for rule in &rules {
                    // Telescoping: Π new − Π old =
                    //   Σ_j (Π_{i<j} new_i) · δ_j · (Π_{i>j} old_i).
                    for j in 0..rule.body.len() {
                        if delta_db.relation(&rule.body[j].pred).is_none() {
                            continue;
                        }
                        let new_db = &self.db;
                        let sources: Vec<&dyn TupleSource> = (0..rule.body.len())
                            .map(|i| {
                                if i == j {
                                    &delta_db as &dyn TupleSource
                                } else if i < j {
                                    new_db as &dyn TupleSource
                                } else {
                                    &old_db as &dyn TupleSource
                                }
                            })
                            .collect();
                        join(&rule.body, &sources, &mut |b| {
                            let mut product: i64 = 1;
                            for (i, atom) in rule.body.iter().enumerate() {
                                let t = instantiate(atom, b).expect("full bindings");
                                let factor = if i == j {
                                    lookup(&delta, &atom.pred, &t)
                                } else if i < j {
                                    lookup(&self.counts, &atom.pred, &t)
                                } else {
                                    // Old state: snapshot if changed,
                                    // else current.
                                    match old_counts.get(&atom.pred) {
                                        Some(c) => c.get(&t).copied().unwrap_or(0),
                                        None => lookup(&self.counts, &atom.pred, &t),
                                    }
                                };
                                product = product.saturating_mul(factor);
                                if product == 0 {
                                    break;
                                }
                            }
                            if product != 0 {
                                if let Some(head) = instantiate(&rule.head, b) {
                                    *head_delta.entry(head).or_insert(0) += product;
                                }
                            }
                        });
                    }
                }
                head_delta.retain(|_, c| *c != 0);
                if head_delta.is_empty() {
                    continue;
                }
                // Record old state before mutating this predicate.
                old_counts
                    .entry(pred.clone())
                    .or_insert_with(|| self.counts.get(pred).cloned().unwrap_or_default());
                for (tuple, _) in head_delta.iter() {
                    let f = Fact {
                        pred: pred.clone(),
                        args: tuple.clone(),
                    };
                    // Preserve old liveness for downstream "old" joins.
                    if self.db.contains(&f) {
                        old_db.insert(&f);
                    }
                }
                self.apply_deltas(pred, &head_delta);
                // Extend the delta database for downstream strata.
                delta
                    .entry(pred.clone())
                    .or_default()
                    .extend(head_delta.iter().map(|(t, c)| (t.clone(), *c)));
                for tuple in head_delta.keys() {
                    delta_db.insert(&Fact {
                        pred: pred.clone(),
                        args: tuple.clone(),
                    });
                }
            }
        }
    }

    fn apply_deltas(&mut self, pred: &Arc<str>, deltas: &Counts) {
        let table = self.counts.entry(pred.clone()).or_default();
        for (tuple, dc) in deltas {
            let entry = table.entry(tuple.clone()).or_insert(0);
            *entry += dc;
            let fact = Fact {
                pred: pred.clone(),
                args: tuple.clone(),
            };
            if *entry <= 0 {
                debug_assert!(*entry == 0, "negative derivation count for {fact}");
                table.remove(tuple);
                self.db.remove(&fact);
            } else {
                self.db.insert(&fact);
            }
        }
    }
}

fn lookup(counts: &FxHashMap<Arc<str>, Counts>, pred: &str, tuple: &[Value]) -> i64 {
    counts
        .get(pred)
        .and_then(|c| c.get(tuple))
        .copied()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DlAtom, DlTerm};
    use crate::eval::evaluate;

    fn v(i: i64) -> Value {
        Value::int(i)
    }

    /// path2(X, Y) :- e(X, Z), e(Z, Y)   — nonrecursive two-hop paths.
    fn two_hop(edges: &[(i64, i64)]) -> DlProgram {
        DlProgram::new(
            vec![DlRule::new(
                DlAtom::new("p2", vec![DlTerm::Var(0), DlTerm::Var(1)]),
                vec![
                    DlAtom::new("e", vec![DlTerm::Var(0), DlTerm::Var(2)]),
                    DlAtom::new("e", vec![DlTerm::Var(2), DlTerm::Var(1)]),
                ],
            )
            .unwrap()],
            edges
                .iter()
                .map(|&(a, b)| Fact::new("e", vec![v(a), v(b)]))
                .collect(),
        )
    }

    #[test]
    fn counts_reflect_multiple_derivations() {
        // 1->2->4 and 1->3->4: p2(1,4) has two derivations.
        let p = two_hop(&[(1, 2), (2, 4), (1, 3), (3, 4)]);
        let eng = CountingEngine::new(p).unwrap();
        assert_eq!(eng.count(&Fact::new("p2", vec![v(1), v(4)])), 2);
        assert!(eng.database().contains(&Fact::new("p2", vec![v(1), v(4)])));
    }

    #[test]
    fn deletion_decrements_and_survives_alternative() {
        let p = two_hop(&[(1, 2), (2, 4), (1, 3), (3, 4)]);
        let mut eng = CountingEngine::new(p.clone()).unwrap();
        eng.update(&[Fact::new("e", vec![v(1), v(2)])], &[]);
        // One derivation remains: p2(1,4) survives with count 1.
        assert_eq!(eng.count(&Fact::new("p2", vec![v(1), v(4)])), 1);
        // Cross-check the whole database with recomputation.
        let mut p2 = p;
        p2.edb.retain(|f| *f != Fact::new("e", vec![v(1), v(2)]));
        let expected = evaluate(&p2);
        assert_eq!(eng.database().sorted_facts(), expected.sorted_facts());
    }

    #[test]
    fn deletion_to_zero_removes_fact() {
        let p = two_hop(&[(1, 2), (2, 4)]);
        let mut eng = CountingEngine::new(p).unwrap();
        eng.update(&[Fact::new("e", vec![v(2), v(4)])], &[]);
        assert_eq!(eng.count(&Fact::new("p2", vec![v(1), v(4)])), 0);
        assert!(!eng.database().contains(&Fact::new("p2", vec![v(1), v(4)])));
    }

    #[test]
    fn insertion_increments() {
        let p = two_hop(&[(1, 2), (2, 4)]);
        let mut eng = CountingEngine::new(p.clone()).unwrap();
        eng.update(
            &[],
            &[
                Fact::new("e", vec![v(1), v(3)]),
                Fact::new("e", vec![v(3), v(4)]),
            ],
        );
        assert_eq!(eng.count(&Fact::new("p2", vec![v(1), v(4)])), 2);
        let mut p2 = p;
        p2.edb.push(Fact::new("e", vec![v(1), v(3)]));
        p2.edb.push(Fact::new("e", vec![v(3), v(4)]));
        let expected = evaluate(&p2);
        assert_eq!(eng.database().sorted_facts(), expected.sorted_facts());
    }

    #[test]
    fn multi_stratum_propagation() {
        // q(X) :- p2(X, Y).  — second stratum over two-hop paths.
        let mut p = two_hop(&[(1, 2), (2, 4), (1, 3), (3, 4)]);
        p.rules.push(
            DlRule::new(
                DlAtom::new("q", vec![DlTerm::Var(0)]),
                vec![DlAtom::new("p2", vec![DlTerm::Var(0), DlTerm::Var(1)])],
            )
            .unwrap(),
        );
        let mut eng = CountingEngine::new(p.clone()).unwrap();
        assert_eq!(eng.count(&Fact::new("q", vec![v(1)])), 2);
        // Delete both paths: q(1) must die.
        eng.update(
            &[
                Fact::new("e", vec![v(2), v(4)]),
                Fact::new("e", vec![v(3), v(4)]),
            ],
            &[],
        );
        assert_eq!(eng.count(&Fact::new("q", vec![v(1)])), 0);
        let mut p2 = p;
        p2.edb.retain(|f| {
            *f != Fact::new("e", vec![v(2), v(4)]) && *f != Fact::new("e", vec![v(3), v(4)])
        });
        let expected = evaluate(&p2);
        assert_eq!(eng.database().sorted_facts(), expected.sorted_facts());
    }

    #[test]
    fn recursive_program_rejected() {
        let p = DlProgram::new(
            vec![
                DlRule::new(
                    DlAtom::new("tc", vec![DlTerm::Var(0), DlTerm::Var(1)]),
                    vec![DlAtom::new("e", vec![DlTerm::Var(0), DlTerm::Var(1)])],
                )
                .unwrap(),
                DlRule::new(
                    DlAtom::new("tc", vec![DlTerm::Var(0), DlTerm::Var(1)]),
                    vec![
                        DlAtom::new("e", vec![DlTerm::Var(0), DlTerm::Var(2)]),
                        DlAtom::new("tc", vec![DlTerm::Var(2), DlTerm::Var(1)]),
                    ],
                )
                .unwrap(),
            ],
            vec![Fact::new("e", vec![v(1), v(2)])],
        );
        assert!(CountingEngine::new(p).is_err());
    }

    #[test]
    fn deleting_absent_and_duplicate_inserts_are_noops() {
        let p = two_hop(&[(1, 2), (2, 4)]);
        let mut eng = CountingEngine::new(p).unwrap();
        let before = eng.database().sorted_facts();
        eng.update(
            &[Fact::new("e", vec![v(8), v(9)])],
            &[Fact::new("e", vec![v(1), v(2)])],
        );
        assert_eq!(eng.database().sorted_facts(), before);
    }
}
