//! Bottom-up evaluation: naive and semi-naive fixpoints, plus the rule-
//! body join machinery shared by DRed and the counting baseline.

use crate::ast::{DlAtom, DlTerm, DlVar, Fact};
use crate::database::{Database, Relation};
use crate::program::DlProgram;
use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::Value;

/// A variable binding during rule matching.
pub type Bindings = FxHashMap<DlVar, Value>;

/// Instantiates an atom's arguments under bindings; `None` if a variable
/// is unbound.
pub fn instantiate(atom: &DlAtom, b: &Bindings) -> Option<Vec<Value>> {
    atom.args
        .iter()
        .map(|t| match t {
            DlTerm::Const(v) => Some(v.clone()),
            DlTerm::Var(v) => b.get(v).cloned(),
        })
        .collect()
}

/// The lookup pattern for an atom under partial bindings.
fn pattern(atom: &DlAtom, b: &Bindings) -> Vec<Option<Value>> {
    atom.args
        .iter()
        .map(|t| match t {
            DlTerm::Const(v) => Some(v.clone()),
            DlTerm::Var(v) => b.get(v).cloned(),
        })
        .collect()
}

/// Extends bindings by matching `tuple` against `atom`; `false` on clash.
fn bind_tuple(atom: &DlAtom, tuple: &[Value], b: &mut Bindings, trail: &mut Vec<DlVar>) -> bool {
    for (t, v) in atom.args.iter().zip(tuple) {
        match t {
            DlTerm::Const(c) => {
                if c != v {
                    return false;
                }
            }
            DlTerm::Var(var) => match b.get(var) {
                Some(bound) => {
                    if bound != v {
                        return false;
                    }
                }
                None => {
                    b.insert(*var, v.clone());
                    trail.push(*var);
                }
            },
        }
    }
    true
}

/// A source of tuples for one body position during a join.
pub trait TupleSource {
    /// Streams the live tuples of `pred` matching the pattern into `f`
    /// (no per-probe allocation — the join engine's hot path).
    fn for_each_candidate<'a>(
        &'a self,
        pred: &str,
        pattern: &[Option<Value>],
        f: &mut dyn FnMut(&'a [Value]),
    );

    /// Live tuples of `pred` matching the pattern, collected.
    fn candidates<'a>(&'a self, pred: &str, pattern: &[Option<Value>]) -> Vec<&'a [Value]> {
        let mut out = Vec::new();
        self.for_each_candidate(pred, pattern, &mut |t| out.push(t));
        out
    }
}

impl TupleSource for Database {
    fn for_each_candidate<'a>(
        &'a self,
        pred: &str,
        pattern: &[Option<Value>],
        f: &mut dyn FnMut(&'a [Value]),
    ) {
        if let Some(r) = self.relation(pred) {
            r.for_each_matching(pattern, f);
        }
    }
}

impl TupleSource for Relation {
    fn for_each_candidate<'a>(
        &'a self,
        _pred: &str,
        pattern: &[Option<Value>],
        f: &mut dyn FnMut(&'a [Value]),
    ) {
        self.for_each_matching(pattern, f);
    }
}

/// An empty source.
pub struct NoTuples;

impl TupleSource for NoTuples {
    fn for_each_candidate<'a>(
        &'a self,
        _pred: &str,
        _pattern: &[Option<Value>],
        _f: &mut dyn FnMut(&'a [Value]),
    ) {
    }
}

/// Enumerates every way of matching `body` with position `i` drawing
/// tuples from `sources[i]`; calls `on_match` with the final bindings.
pub fn join<'s>(
    body: &[DlAtom],
    sources: &[&'s dyn TupleSource],
    on_match: &mut dyn FnMut(&Bindings),
) {
    assert_eq!(body.len(), sources.len(), "one source per body atom");
    let mut bindings = Bindings::default();
    join_rec(body, sources, 0, &mut bindings, on_match);
}

fn join_rec(
    body: &[DlAtom],
    sources: &[&dyn TupleSource],
    pos: usize,
    bindings: &mut Bindings,
    on_match: &mut dyn FnMut(&Bindings),
) {
    if pos == body.len() {
        on_match(bindings);
        return;
    }
    let atom = &body[pos];
    let pat = pattern(atom, bindings);
    sources[pos].for_each_candidate(&atom.pred, &pat, &mut |tuple| {
        let mut trail = Vec::new();
        if bind_tuple(atom, tuple, bindings, &mut trail) {
            join_rec(body, sources, pos + 1, bindings, on_match);
        }
        for v in trail {
            bindings.remove(&v);
        }
    });
}

/// Computes the least model of `program` by semi-naive iteration.
/// Returns the full database (EDB ∪ IDB).
pub fn evaluate(program: &DlProgram) -> Database {
    let mut db = Database::from_facts(program.edb.iter().cloned());
    // Round 0: rules with empty bodies and the first derivations.
    let mut delta = Database::new();
    for rule in &program.rules {
        let sources: Vec<&dyn TupleSource> = rule.body.iter().map(|_| &db as _).collect();
        join(&rule.body, &sources, &mut |b| {
            if let Some(args) = instantiate(&rule.head, b) {
                let fact = Fact {
                    pred: rule.head.pred.clone(),
                    args,
                };
                if !db.contains(&fact) {
                    delta.insert(&fact);
                }
            }
        });
    }
    for f in delta.facts() {
        db.insert(&f);
    }
    // Semi-naive rounds: at least one body atom must match the delta.
    while !delta.is_empty() {
        let mut next = Database::new();
        for rule in &program.rules {
            for dpos in 0..rule.body.len() {
                if delta.relation(&rule.body[dpos].pred).is_none() {
                    continue;
                }
                let sources: Vec<&dyn TupleSource> = (0..rule.body.len())
                    .map(|i| {
                        if i == dpos {
                            &delta as &dyn TupleSource
                        } else {
                            &db as &dyn TupleSource
                        }
                    })
                    .collect();
                join(&rule.body, &sources, &mut |b| {
                    if let Some(args) = instantiate(&rule.head, b) {
                        let fact = Fact {
                            pred: rule.head.pred.clone(),
                            args,
                        };
                        if !db.contains(&fact) {
                            next.insert(&fact);
                        }
                    }
                });
            }
        }
        for f in next.facts() {
            db.insert(&f);
        }
        delta = next;
    }
    db
}

/// Full recomputation baseline: [`evaluate`] under its benchmark name.
pub fn recompute(program: &DlProgram) -> Database {
    evaluate(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::DlRule;

    fn v(i: i64) -> Value {
        Value::int(i)
    }

    fn tc_program(edges: &[(i64, i64)]) -> DlProgram {
        let rules = vec![
            DlRule::new(
                DlAtom::new("tc", vec![DlTerm::Var(0), DlTerm::Var(1)]),
                vec![DlAtom::new("e", vec![DlTerm::Var(0), DlTerm::Var(1)])],
            )
            .unwrap(),
            DlRule::new(
                DlAtom::new("tc", vec![DlTerm::Var(0), DlTerm::Var(1)]),
                vec![
                    DlAtom::new("e", vec![DlTerm::Var(0), DlTerm::Var(2)]),
                    DlAtom::new("tc", vec![DlTerm::Var(2), DlTerm::Var(1)]),
                ],
            )
            .unwrap(),
        ];
        let edb = edges
            .iter()
            .map(|&(a, b)| Fact::new("e", vec![v(a), v(b)]))
            .collect();
        DlProgram::new(rules, edb)
    }

    #[test]
    fn transitive_closure_on_a_chain() {
        let db = evaluate(&tc_program(&[(1, 2), (2, 3), (3, 4)]));
        for (a, b) in [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)] {
            assert!(
                db.contains(&Fact::new("tc", vec![v(a), v(b)])),
                "tc({a},{b})"
            );
        }
        assert!(!db.contains(&Fact::new("tc", vec![v(2), v(1)])));
        // 3 edges + 6 tc facts.
        assert_eq!(db.len(), 9);
    }

    #[test]
    fn cycle_closure_terminates() {
        let db = evaluate(&tc_program(&[(1, 2), (2, 3), (3, 1)]));
        // Every pair is reachable on a 3-cycle.
        let tc_count = db.facts().filter(|f| f.pred.as_ref() == "tc").count();
        assert_eq!(tc_count, 9);
    }

    #[test]
    fn constants_in_rules() {
        // only_from_one(Y) :- e(1, Y).
        let mut p = tc_program(&[(1, 2), (2, 3)]);
        p.rules.push(
            DlRule::new(
                DlAtom::new("only_from_one", vec![DlTerm::Var(0)]),
                vec![DlAtom::new("e", vec![DlTerm::int(1), DlTerm::Var(0)])],
            )
            .unwrap(),
        );
        let db = evaluate(&p);
        assert!(db.contains(&Fact::new("only_from_one", vec![v(2)])));
        assert!(!db.contains(&Fact::new("only_from_one", vec![v(3)])));
    }

    #[test]
    fn facts_via_empty_body_rules() {
        let p = DlProgram::new(
            vec![DlRule::new(DlAtom::new("p", vec![DlTerm::int(7)]), vec![]).unwrap()],
            vec![],
        );
        let db = evaluate(&p);
        assert!(db.contains(&Fact::new("p", vec![v(7)])));
    }

    #[test]
    fn join_respects_shared_variables() {
        // sibling-ish: same second column: s(X, Y) :- e(X, Z), e(Y, Z).
        let p = DlProgram::new(
            vec![DlRule::new(
                DlAtom::new("s", vec![DlTerm::Var(0), DlTerm::Var(1)]),
                vec![
                    DlAtom::new("e", vec![DlTerm::Var(0), DlTerm::Var(2)]),
                    DlAtom::new("e", vec![DlTerm::Var(1), DlTerm::Var(2)]),
                ],
            )
            .unwrap()],
            vec![
                Fact::new("e", vec![v(1), v(10)]),
                Fact::new("e", vec![v(2), v(10)]),
                Fact::new("e", vec![v(3), v(11)]),
            ],
        );
        let db = evaluate(&p);
        assert!(db.contains(&Fact::new("s", vec![v(1), v(2)])));
        assert!(db.contains(&Fact::new("s", vec![v(1), v(1)])));
        assert!(!db.contains(&Fact::new("s", vec![v(1), v(3)])));
    }

    #[test]
    fn diamond_counts_once() {
        // Two paths 1->4; tc(1,4) appears once (set semantics).
        let db = evaluate(&tc_program(&[(1, 2), (2, 4), (1, 3), (3, 4)]));
        let hits = db
            .facts()
            .filter(|f| *f == Fact::new("tc", vec![v(1), v(4)]))
            .count();
        assert_eq!(hits, 1);
    }
}
