// mmv-lint-fixture: crates/demo/src/lib.rs //~ forbid-unsafe
//! Known-violation corpus for `forbid-unsafe`: a crate root (the
//! virtual path is a `src/lib.rs`) without `#![forbid(unsafe_code)]`.
//! The diagnostic lands on line 1. A `#![deny(unsafe_code)]` would
//! not satisfy the rule either — deny is overridable downstream.
#![deny(unsafe_code)]

pub fn present_but_insufficient() {}
