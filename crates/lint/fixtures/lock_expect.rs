// mmv-lint-fixture: crates/demo/src/lock_expect.rs
//! Known-violation corpus for `lock-expect`: unwrap/expect chained
//! onto lock acquisitions re-raises poison instead of recovering.
use std::sync::{Mutex, RwLock};

fn bad(m: &Mutex<u8>, r: &RwLock<u8>) {
    let a = m.lock().unwrap(); //~ lock-expect
    let b = r.read().expect("poisoned"); //~ lock-expect
    let c = r
        .write()
        .unwrap(); //~ lock-expect
    drop((a, b, c));
}

fn fine(m: &Mutex<u8>, v: Vec<u8>) {
    // The sanctioned shape: recover instead of re-raising.
    let g = match m.lock() {
        Ok(g) => g,
        Err(p) => {
            m.clear_poison();
            p.into_inner()
        }
    };
    drop(g);
    // Unwraps on non-lock results are none of this rule's business.
    let _ = v.first().unwrap();
    let _ = "7".parse::<u8>().unwrap();
    // Pattern text hidden in a string or comment must not fire:
    let _ = "x.lock().unwrap()".len();
    // like m.lock().unwrap() here
}

fn allowed(m: &Mutex<u8>) {
    // mmv-lint: allow(lock-expect) local mutex never shared across threads; poison is unreachable
    let g = m.lock().unwrap();
    drop(g);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_unwrap() {
        let m = Mutex::new(1u8);
        let _ = m.lock().unwrap();
    }
}
