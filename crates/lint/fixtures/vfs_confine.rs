// mmv-lint-fixture: crates/demo/src/storage.rs
//! Known-violation corpus for `vfs-confine`: raw filesystem access in
//! engine library code escapes the fault-injecting Vfs.
use std::fs; //~ vfs-confine
use std::path::Path;

fn bad(p: &Path) {
    let _ = std::fs::read(p); //~ vfs-confine
    let _ = fs::read_to_string(p); //~ vfs-confine
    let _ = std::fs::File::open(p); //~ vfs-confine
}

fn allowed(p: &Path) -> bool {
    // mmv-lint: allow(vfs-confine) recovery-read allowlist: this fixture models a recovery-time probe
    std::fs::metadata(p).is_ok()
}

fn fine() {
    // Mentions in comments (std::fs) or strings must not fire:
    let _ = "std::fs::read".len();
}

#[cfg(test)]
mod tests {
    use std::path::Path;

    #[test]
    fn tests_may_touch_the_real_fs() {
        let _ = std::fs::metadata(Path::new("/tmp"));
    }
}
