// mmv-lint-fixture: crates/demo/src/suppression.rs
//! Known-violation corpus for the `suppression` meta-rule: allow
//! pragmas with no reason, unknown rule ids, stale targets, and
//! unrecognized directives are themselves diagnostics.
use std::sync::Mutex;

fn empty_reason(m: &Mutex<u8>) {
    // mmv-lint: allow(lock-expect) //~ suppression
    let _ = m.lock().unwrap();
}

fn unknown_rule(m: &Mutex<u8>) {
    // mmv-lint: allow(lock-expct) typo in the rule id //~ suppression
    let _ = m.lock().unwrap(); //~ lock-expect
}

fn stale(m: &Mutex<u8>) {
    // mmv-lint: allow(lock-expect) the unwrap below was removed in a refactor //~ suppression
    let g = match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    };
    drop(g);
}

fn unrecognized_verb(m: &Mutex<u8>) {
    // mmv-lint: deny(lock-expect) only allow(...) exists //~ suppression
    let _ = m.lock().unwrap(); //~ lock-expect
}

fn proper(m: &Mutex<u8>) {
    // mmv-lint: allow(lock-expect) fixture shows a well-formed suppression
    let _ = m.lock().unwrap();
}
