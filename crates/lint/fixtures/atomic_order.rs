// mmv-lint-fixture: crates/demo/src/counters.rs
//! Known-violation corpus for `atomic-order`: every atomic ordering
//! choice carries an `// order:` justification, and SeqCst is banned
//! outright (allow-only).
use std::sync::atomic::{AtomicU64, Ordering};

fn bad(a: &AtomicU64) {
    a.store(1, Ordering::Relaxed); //~ atomic-order
    let _ = a.load(Ordering::Acquire); //~ atomic-order
    a.store(3, Ordering::SeqCst); //~ atomic-order
    // order:
    a.store(4, Ordering::Release); //~ atomic-order
}

fn justified(a: &AtomicU64) {
    a.fetch_add(1, Ordering::Relaxed); // order: traffic tally, nothing to order
    // order: publishes the init writes above to the Acquire load in bad()
    a.store(2, Ordering::Release);
}

fn allowed(a: &AtomicU64) {
    // mmv-lint: allow(atomic-order) fixture demonstrates a justified SeqCst escape hatch
    a.store(5, Ordering::SeqCst);
}

fn not_atomics(x: u8, y: u8) -> std::cmp::Ordering {
    // cmp::Ordering variants are not this rule's business.
    if x < y {
        std::cmp::Ordering::Less
    } else {
        std::cmp::Ordering::Greater
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_need_no_justification() {
        let a = AtomicU64::new(0);
        a.store(9, Ordering::SeqCst);
    }
}
