// mmv-lint-fixture: crates/service/src/rogue.rs
//! Known-violation corpus for `lock-order`: lane and publication
//! locks combine only inside the canonical helpers, lanes are only
//! multiply acquired in apply_inner's ascending loop, and nobody
//! touches the raw fields directly.
use std::sync::{Mutex, RwLock};

struct Rogue {
    lanes: Vec<Mutex<u8>>,
    published: RwLock<u8>,
}

impl Rogue {
    fn lock_lane(&self, i: usize) -> std::sync::MutexGuard<'_, u8> {
        // Canonical home: direct field access is legal here.
        match self.lanes[i].lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn read_published(&self) -> u8 {
        match self.published.read() {
            Ok(g) => *g,
            Err(p) => *p.into_inner(),
        }
    }

    fn combines_lane_and_publication(&self) {
        let lane = self.lock_lane(0);
        let epoch = self.read_published(); //~ lock-order
        drop((lane, epoch));
    }

    fn grabs_two_lanes(&self) {
        let a = self.lock_lane(0);
        let b = self.lock_lane(1); //~ lock-order
        drop((a, b));
    }

    fn pokes_fields_directly(&self) {
        let g = self.lanes[0].lock(); //~ lock-order
        let p = self.published.read(); //~ lock-order
        drop((g, p));
    }

    fn apply_inner(&self) {
        // The one sanctioned combination: ascending lanes, then the
        // publication lock.
        let a = self.lock_lane(0);
        let b = self.lock_lane(1);
        let p = self.read_published();
        drop((a, b, p));
    }

    fn single_lane_is_fine(&self) {
        let g = self.lock_lane(0);
        drop(g);
    }
}
