// mmv-lint-fixture: crates/core/src/tp.rs
//! Known-violation corpus for `time-gate`: raw clock reads in a
//! write-path module (the virtual path names one) must go through the
//! obs-gated helpers.
use std::time::{Instant, SystemTime};

fn bad() {
    let _t0 = Instant::now(); //~ time-gate
    let _wall = SystemTime::now(); //~ time-gate
    let _t1 = std::time::Instant::now(); //~ time-gate
}

fn fine(clock: &mut StageClockLike) {
    // The sanctioned shape: the helper reads the clock only when
    // observability is on.
    clock.lap();
    // `Instant::now` in a comment or "Instant::now()" in a string is
    // not a clock read.
    let _ = "Instant::now()".len();
}

struct StageClockLike;
impl StageClockLike {
    fn lap(&mut self) {}
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_read_clocks() {
        let _ = Instant::now();
    }
}
