//! The deny-by-default teeth: the workspace itself must be lint-clean.
//!
//! This runs the full analyzer over every source in the repository —
//! exactly what CI's `lint` job and a local `cargo run -p mmv-lint`
//! do — and fails listing each violation. A new violation therefore
//! breaks `cargo test` even before CI: either fix the site or carry
//! an `// mmv-lint: allow(rule-id) <reason>` that the suppression
//! meta-rule accepts.

use std::path::PathBuf;

#[test]
fn workspace_has_zero_violations() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    let diags = mmv_lint::lint_workspace(&root).expect("workspace walk");
    assert!(
        diags.is_empty(),
        "mmv-lint found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
