//! Fixture-based self-tests: every rule has a known-violation file
//! under `fixtures/` and the linter must report exactly the marked
//! lines — no more, no less.
//!
//! Fixture format:
//!
//! - Line 1: `// mmv-lint-fixture: <virtual-path>` — the path the
//!   file is linted *as* (rules scope themselves by path, so a
//!   lock-order fixture pretends to live in `crates/service/src/`).
//! - `//~ rule-id` on a line marks an expected diagnostic of that
//!   rule on that exact line. Several ids may follow one `//~`.
//!
//! Markers are stripped before linting (so a marker can sit after a
//! pragma without becoming part of its reason), and expectations are
//! compared as *sets* of `(line, rule)` in both directions: an
//! unmarked diagnostic fails the test just as hard as an unfired
//! marker.

use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

struct Fixture {
    file: String,
    virtual_path: String,
    stripped: String,
    expected: BTreeSet<(usize, String)>,
}

fn load(path: &PathBuf) -> Fixture {
    let raw = std::fs::read_to_string(path).expect("fixture readable");
    let file = path.file_name().unwrap().to_string_lossy().into_owned();
    let first = raw.lines().next().unwrap_or_default();
    let virtual_path = first
        .strip_prefix("// mmv-lint-fixture:")
        .unwrap_or_else(|| panic!("{file}: line 1 must be `// mmv-lint-fixture: <path>`"))
        .split_whitespace()
        .next()
        .unwrap_or_else(|| panic!("{file}: empty virtual path"))
        .to_string();
    let rule_ids: Vec<&str> = mmv_lint::RULES.iter().map(|r| r.id).collect();
    let mut expected = BTreeSet::new();
    let mut stripped = Vec::new();
    for (i, line) in raw.lines().enumerate() {
        match line.find("//~") {
            Some(pos) => {
                let ids: Vec<&str> = line[pos + 3..].split_whitespace().collect();
                assert!(
                    !ids.is_empty() && ids.iter().all(|id| rule_ids.contains(id)),
                    "{file}:{}: `//~` must be followed by rule ids, got {ids:?}",
                    i + 1
                );
                for id in ids {
                    expected.insert((i + 1, id.to_string()));
                }
                stripped.push(line[..pos].trim_end().to_string());
            }
            None => stripped.push(line.to_string()),
        }
    }
    Fixture {
        file,
        virtual_path,
        stripped: stripped.join("\n"),
        expected,
    }
}

#[test]
fn every_fixture_fires_exactly_its_markers() {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "fixture corpus is missing");

    let mut fired_rules: BTreeSet<String> = BTreeSet::new();
    for path in &entries {
        let fx = load(path);
        let actual: BTreeSet<(usize, String)> =
            mmv_lint::lint_source(&fx.virtual_path, &fx.stripped)
                .into_iter()
                .map(|d| (d.line, d.rule.to_string()))
                .collect();
        let missing: Vec<_> = fx.expected.difference(&actual).collect();
        let surprise: Vec<_> = actual.difference(&fx.expected).collect();
        assert!(
            missing.is_empty() && surprise.is_empty(),
            "{}: expectation mismatch\n  markers that did not fire: {missing:?}\n  diagnostics with no marker: {surprise:?}",
            fx.file
        );
        fired_rules.extend(fx.expected.iter().map(|(_, r)| r.clone()));
    }

    // Proof obligation from the issue: each of the six rules (and the
    // suppression meta-rule) has a fixture demonstrating it fires.
    for rule in mmv_lint::RULES {
        assert!(
            fired_rules.contains(rule.id),
            "no fixture exercises rule `{}`",
            rule.id
        );
    }
}
