//! The six project-invariant rules, plus the suppression meta-rule.
//!
//! Each rule encodes a discipline this codebase committed to in a
//! prior change and that the compiler cannot enforce:
//!
//! - `lock-expect`: a panicking thread must never cascade — poisoned
//!   locks are recovered (`clear_poison` + `into_inner`), not
//!   re-raised via `.unwrap()`/`.expect()`.
//! - `vfs-confine`: storage I/O goes through the fault-injecting
//!   `Vfs`; raw `std::fs` anywhere else is a fault-coverage blind
//!   spot and needs an explicit recovery-read justification.
//! - `time-gate`: "observability disabled ⇒ zero clock reads on the
//!   write path" — `Instant::now` in write-path modules only via the
//!   obs-gated helpers (`StageClock`, `BatchTrace::time`).
//! - `atomic-order`: every atomic `Ordering::` choice outside the
//!   instrument internals carries an `// order: <why>` justification;
//!   `SeqCst` is non-idiomatic here and needs a full allow.
//! - `forbid-unsafe`: every crate root (lib, bin) declares
//!   `#![forbid(unsafe_code)]`.
//! - `lock-order`: lane and publication locks are only combined, and
//!   lanes only multiply acquired, inside the canonical helpers —
//!   everything else is a deadlock-ordering hazard.
//!
//! Rules are deny-by-default. A site that genuinely must deviate
//! carries `// mmv-lint: allow(rule-id) <reason>`, and the
//! `suppression` meta-rule rejects reasons that are missing, rule ids
//! that do not exist, and suppressions that no longer suppress
//! anything.

use crate::diag::Diagnostic;
use crate::lexer::is_ident_char;
use crate::scan::FileCtx;

/// Catalog entry for one rule.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
}

/// Every rule this linter knows, in reporting order. `suppression`
/// is the meta-rule over the pragmas themselves and cannot be
/// allowed away.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "lock-expect",
        summary: "no .unwrap()/.expect() on lock()/read()/write() results outside tests",
    },
    RuleInfo {
        id: "vfs-confine",
        summary: "std::fs / File::open only in vfs.rs or the documented recovery-read allowlist",
    },
    RuleInfo {
        id: "time-gate",
        summary: "Instant::now in write-path modules only via StageClock / BatchTrace::time",
    },
    RuleInfo {
        id: "atomic-order",
        summary: "atomic Ordering choices need an `// order:` justification; SeqCst needs an allow",
    },
    RuleInfo {
        id: "forbid-unsafe",
        summary: "every crate root carries #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: "lock-order",
        summary: "lane + publication locks combine only in the canonical service helpers",
    },
    RuleInfo {
        id: "suppression",
        summary: "every allow pragma has a real reason, a real rule id, and a real target",
    },
];

/// Lints one file. `path` is the workspace-relative, `/`-separated
/// path — rules use it to scope themselves (write-path module lists,
/// crate-root detection, the vfs.rs home).
pub fn lint_source(path: &str, source: &str) -> Vec<Diagnostic> {
    let ctx = FileCtx::new(source);
    let mut raw: Vec<Diagnostic> = Vec::new();
    lock_expect(path, &ctx, &mut raw);
    vfs_confine(path, &ctx, &mut raw);
    time_gate(path, &ctx, &mut raw);
    atomic_order(path, &ctx, &mut raw);
    forbid_unsafe(path, &ctx, &mut raw);
    lock_order(path, &ctx, &mut raw);

    // Deny-by-default with inline escape hatch: a diagnostic is
    // dropped only by a same-rule allow targeting its line.
    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| {
            match ctx
                .allows
                .iter()
                .find(|a| a.rule == d.rule && a.target == d.line)
            {
                Some(a) => {
                    a.used.set(true);
                    false
                }
                None => true,
            }
        })
        .collect();

    // The meta-rule: suppressions are themselves linted.
    for a in &ctx.allows {
        if !RULES.iter().any(|r| r.id == a.rule) || a.rule == "suppression" {
            out.push(Diagnostic {
                path: path.into(),
                line: a.line,
                rule: "suppression",
                message: format!("allow({}) names no suppressible rule", a.rule),
            });
        } else if a.reason.is_empty() {
            out.push(Diagnostic {
                path: path.into(),
                line: a.line,
                rule: "suppression",
                message: format!(
                    "allow({}) carries no justification; add a reason after the closing paren",
                    a.rule
                ),
            });
        } else if !a.used.get() {
            out.push(Diagnostic {
                path: path.into(),
                line: a.line,
                rule: "suppression",
                message: format!(
                    "allow({}) suppresses nothing on line {}; remove the stale pragma",
                    a.rule, a.target
                ),
            });
        }
    }
    for (line, text) in &ctx.bad_directives {
        out.push(Diagnostic {
            path: path.into(),
            line: *line,
            rule: "suppression",
            message: format!(
                "unrecognized mmv-lint directive `{text}`; expected `allow(rule-id) <reason>`"
            ),
        });
    }

    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn push(out: &mut Vec<Diagnostic>, path: &str, line: usize, rule: &'static str, message: String) {
    out.push(Diagnostic {
        path: path.into(),
        line,
        rule,
        message,
    });
}

/// `.unwrap()` / `.expect(` directly chained onto a zero-argument
/// `.lock()`, `.read()`, or `.write()` call — the shape every
/// `Mutex`/`RwLock` acquisition takes. Whitespace (including line
/// breaks) between the call and the unwrap is seen through.
fn lock_expect(path: &str, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let code = &ctx.masked.code;
    for pat in [".unwrap(", ".expect("] {
        for (off, line) in ctx.code_hits(pat) {
            if let Some(callee) = chained_lock_call(code, off) {
                push(
                    out,
                    path,
                    line,
                    "lock-expect",
                    format!(
                        "{} on a `.{callee}()` result re-raises lock poison; recover with clear_poison + into_inner (see domains::sync)",
                        &pat[..pat.len() - 1]
                    ),
                );
            }
        }
    }
}

/// If the `.` at `off` chains onto `lock()`, `read()`, or `write()`,
/// returns the callee name.
fn chained_lock_call(code: &str, off: usize) -> Option<&str> {
    let b = code.as_bytes();
    let mut i = off;
    while i > 0 && (b[i - 1] as char).is_whitespace() {
        i -= 1;
    }
    if i < 2 || b[i - 1] != b')' || b[i - 2] != b'(' {
        return None;
    }
    i -= 2;
    let end = i;
    while i > 0 && is_ident_char(b[i - 1] as char) {
        i -= 1;
    }
    let name = &code[i..end];
    (matches!(name, "lock" | "read" | "write") && i > 0 && b[i - 1] == b'.').then_some(name)
}

/// Raw filesystem access outside `vfs.rs`. Scoped to library code of
/// the engine crates: `crates/bench` and `crates/lint` are harness and
/// tooling (their file I/O is reports and source reading, not storage),
/// and `src/bin/` entry points are operational tools. Everything the
/// durability story depends on must go through the fault-injecting Vfs
/// or carry a recovery-read justification.
fn vfs_confine(path: &str, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if path.ends_with("/vfs.rs")
        || path.starts_with("crates/bench/")
        || path.starts_with("crates/lint/")
        || path.contains("/src/bin/")
    {
        return;
    }
    let code = &ctx.masked.code;
    let bytes = code.as_bytes();
    // `std::fs` (imports and qualified paths) plus bare `fs::` after a
    // `use std::fs;`, plus the file-handle constructors by name.
    for (off, line) in ctx.code_hits("std::fs") {
        let after = off + "std::fs".len();
        if bytes.get(after).is_some_and(|&c| is_ident_char(c as char)) {
            continue;
        }
        push(
            out,
            path,
            line,
            "vfs-confine",
            "raw std::fs escapes the fault-injecting Vfs; route through Vfs or justify as a recovery read".into(),
        );
    }
    for (off, line) in ctx.code_hits("fs::") {
        // Skip the tail of `std::fs::…` (already reported above) and
        // identifier tails like `vfs::`.
        let before = off.checked_sub(1).map(|i| bytes[i] as char);
        if before.is_some_and(|c| c == ':' || is_ident_char(c)) {
            continue;
        }
        push(
            out,
            path,
            line,
            "vfs-confine",
            "raw fs:: call escapes the fault-injecting Vfs; route through Vfs or justify as a recovery read".into(),
        );
    }
    for pat in ["File::open(", "File::create(", "OpenOptions::new("] {
        for (_, line) in ctx.code_hits(pat) {
            push(
                out,
                path,
                line,
                "vfs-confine",
                format!(
                    "{} opens a file behind the Vfs's back; route through Vfs or justify as a recovery read",
                    &pat[..pat.len() - 1]
                ),
            );
        }
    }
}

/// Modules on the batch write path: apply pipeline, WAL, publish. The
/// invariant "observability disabled ⇒ zero clock reads on the write
/// path" dies one innocent `Instant::now()` at a time; this pins it.
const WRITE_PATH_MODULES: &[&str] = &[
    "crates/core/src/tp.rs",
    "crates/core/src/insert.rs",
    "crates/core/src/delete_dred.rs",
    "crates/core/src/delete_stdel.rs",
    "crates/core/src/batch.rs",
    "crates/core/src/view.rs",
    "crates/core/src/store.rs",
    "crates/core/src/pool.rs",
    "crates/core/src/support.rs",
    "crates/core/src/external.rs",
    "crates/core/src/semantics.rs",
    "crates/core/src/shard.rs",
    "crates/service/src/service.rs",
    "crates/service/src/log.rs",
    "crates/service/src/wal.rs",
    "crates/service/src/worker.rs",
    "crates/service/src/snapshot.rs",
];

fn time_gate(path: &str, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !WRITE_PATH_MODULES.contains(&path) {
        return;
    }
    for pat in ["Instant::now(", "SystemTime::now("] {
        for (_, line) in ctx.code_hits(pat) {
            push(
                out,
                path,
                line,
                "time-gate",
                format!(
                    "{} on the write path; clock reads here go through StageClock or BatchTrace::time so disabled observability costs zero",
                    &pat[..pat.len() - 1]
                ),
            );
        }
    }
}

/// Files whose whole business is atomics: the instrument primitives.
const ATOMIC_HOME: &[&str] = &["crates/obs/src/metric.rs"];

/// Atomic orderings that exist in `std::sync::atomic::Ordering`; other
/// `Ordering::` variants (`Less`, `Equal`, …) are `std::cmp` and not
/// this rule's business.
const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn atomic_order(path: &str, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if ATOMIC_HOME.contains(&path) {
        return;
    }
    let code = &ctx.masked.code;
    let bytes = code.as_bytes();
    for (off, line) in ctx.code_hits("Ordering::") {
        let start = off + "Ordering::".len();
        let mut end = start;
        while end < bytes.len() && is_ident_char(bytes[end] as char) {
            end += 1;
        }
        let variant = &code[start..end];
        if !ATOMIC_ORDERINGS.contains(&variant) {
            continue;
        }
        if variant == "SeqCst" {
            push(
                out,
                path,
                line,
                "atomic-order",
                "Ordering::SeqCst is non-idiomatic in this codebase (nothing here needs a total order); pick the weakest sufficient ordering or allow explicitly".into(),
            );
            continue;
        }
        match ctx.order_reason(line) {
            Some(p) if !p.reason.is_empty() => {}
            Some(_) => push(
                out,
                path,
                line,
                "atomic-order",
                format!("Ordering::{variant} has an empty `// order:` justification; say why this ordering is sufficient"),
            ),
            None => push(
                out,
                path,
                line,
                "atomic-order",
                format!("Ordering::{variant} lacks an `// order: <why>` justification on this or the preceding line"),
            ),
        }
    }
}

/// Crate roots: lib.rs / main.rs under any src/, plus src/bin entry
/// points. Each must carry the forbid attribute — `deny` is overridable
/// downstream, `forbid` is not.
fn forbid_unsafe(path: &str, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let is_root =
        path.ends_with("src/lib.rs") || path.ends_with("src/main.rs") || path.contains("/src/bin/");
    if !is_root {
        return;
    }
    if !ctx.masked.code.contains("#![forbid(unsafe_code)]") {
        push(
            out,
            path,
            1,
            "forbid-unsafe",
            "crate root lacks #![forbid(unsafe_code)]".into(),
        );
    }
}

/// The only functions allowed to acquire lane/publication locks
/// directly or in combination. `lock_lane` and the published-snapshot
/// guards are the single homes for direct acquisition; `apply_inner`
/// is the one place lane and publication locks legitimately meet, and
/// its multi-lane loop acquires in ascending shard order.
const CANONICAL_LOCK_FNS: &[&str] = &[
    "lock_lane",
    "read_published",
    "write_published",
    "apply_inner",
];

fn lock_order(path: &str, ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !path.starts_with("crates/service/src/") {
        return;
    }
    let code = &ctx.masked.code;
    let bytes = code.as_bytes();
    // Direct acquisitions outside their canonical homes.
    for (pat, what) in [
        (".lanes[", "a lane lock"),
        (".published.read(", "the publication read lock"),
        (".published.write(", "the publication write lock"),
    ] {
        for (_, line) in ctx.code_hits(pat) {
            let fname = ctx.enclosing_fn(line).map(|f| f.name.as_str());
            if fname.is_some_and(|f| CANONICAL_LOCK_FNS.contains(&f)) {
                continue;
            }
            push(
                out,
                path,
                line,
                "lock-order",
                format!("acquires {what} directly; go through the canonical helper (lock_lane / read_published / write_published)"),
            );
        }
    }
    // Helper-call combinations outside apply_inner: collect per-fn
    // call sites, skipping the helpers' own definitions.
    for f in &ctx.fns {
        if CANONICAL_LOCK_FNS.contains(&f.name.as_str()) {
            continue;
        }
        let mut lane_calls: Vec<usize> = Vec::new();
        let mut pub_calls: Vec<usize> = Vec::new();
        for (pat, is_lane) in [
            ("lock_lane(", true),
            ("read_published(", false),
            ("write_published(", false),
        ] {
            for (off, line) in ctx.code_hits(pat) {
                if line < f.start_line || line > f.end_line {
                    continue;
                }
                // Attribute to the innermost fn only (nested items).
                if ctx.enclosing_fn(line).map(|g| g.name.as_str()) != Some(f.name.as_str()) {
                    continue;
                }
                // Skip `fn lock_lane(`-style definition sites.
                let is_def = off >= 3 && &bytes[off - 3..off] == b"fn ";
                if is_def {
                    continue;
                }
                if is_lane {
                    lane_calls.push(line);
                } else {
                    pub_calls.push(line);
                }
            }
        }
        if lane_calls.len() >= 2 {
            push(
                out,
                path,
                lane_calls[1],
                "lock-order",
                format!(
                    "`{}` acquires two lane locks; multi-lane acquisition happens only in apply_inner's ascending-shard loop",
                    f.name
                ),
            );
        }
        if !lane_calls.is_empty() && !pub_calls.is_empty() {
            push(
                out,
                path,
                *pub_calls.iter().chain(&lane_calls).max().unwrap(),
                "lock-order",
                format!(
                    "`{}` holds a lane lock and the publication lock together; only apply_inner may combine them",
                    f.name
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(path, src)
    }

    #[test]
    fn lock_expect_sees_through_line_breaks() {
        let src = "fn f(m: &std::sync::Mutex<u8>) {\n    let g = m\n        .lock()\n        .expect(\"poisoned\");\n}\n";
        let d = diags("crates/x/src/a.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "lock-expect");
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn unwrap_on_non_lock_call_is_fine() {
        let d = diags(
            "crates/x/src/a.rs",
            "fn f() { s.parse::<u8>().unwrap(); v.get(0).unwrap(); }\n",
        );
        assert!(d.is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_used() {
        let src = "fn f(m: &std::sync::Mutex<u8>) {\n    // mmv-lint: allow(lock-expect) this mutex never crosses threads\n    let g = m.lock().unwrap();\n}\n";
        assert!(diags("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_flagged() {
        let src = "fn f(m: &std::sync::Mutex<u8>) {\n    // mmv-lint: allow(lock-expect)\n    let g = m.lock().unwrap();\n}\n";
        let d = diags("crates/x/src/a.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "suppression");
        assert!(d[0].message.contains("no justification"));
    }

    #[test]
    fn stale_allow_is_flagged() {
        let src = "fn f() {\n    // mmv-lint: allow(lock-expect) was needed before the refactor\n    let x = 1;\n}\n";
        let d = diags("crates/x/src/a.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "suppression");
        assert!(d[0].message.contains("suppresses nothing"));
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let src = "// mmv-lint: allow(lock-expct) typo\nfn f() {}\n";
        let d = diags("crates/x/src/a.rs", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("no suppressible rule"));
    }

    #[test]
    fn vfs_confine_scopes_by_path() {
        let src = "fn f() { let s = std::fs::read(\"x\"); }\n";
        assert_eq!(diags("crates/service/src/wal.rs", src).len(), 1);
        assert!(diags("crates/service/src/vfs.rs", src).is_empty());
        assert!(diags("crates/bench/src/harness.rs", src).is_empty());
        // Bin entry points are exempt from vfs-confine (they still owe
        // forbid-unsafe, which is another rule's business).
        assert!(!diags("crates/bench/src/bin/e8_service.rs", src)
            .iter()
            .any(|d| d.rule == "vfs-confine"));
    }

    #[test]
    fn time_gate_only_bites_write_path_modules() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(diags("crates/core/src/tp.rs", src).len(), 1);
        assert!(diags("crates/core/src/parser.rs", src).is_empty());
    }

    #[test]
    fn atomic_order_requires_reason_and_bans_seqcst() {
        let src = "fn f(a: &AtomicU64) {\n    a.store(1, Ordering::Relaxed);\n    a.store(2, Ordering::Release); // order: publishes the init above\n    a.store(3, Ordering::SeqCst); // order: even a reason does not excuse SeqCst\n}\n";
        let d = diags("crates/core/src/atom.rs", src);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("lacks"));
        assert_eq!(d[1].line, 4);
        assert!(d[1].message.contains("SeqCst"));
    }

    #[test]
    fn cmp_ordering_is_ignored() {
        let src = "fn f(a: u8, b: u8) -> std::cmp::Ordering { if a < b { Ordering::Less } else { Ordering::Greater } }\n";
        assert!(diags("crates/core/src/atom.rs", src).is_empty());
    }

    #[test]
    fn forbid_unsafe_checks_roots_only() {
        let src = "pub fn f() {}\n";
        let d = diags("crates/x/src/lib.rs", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "forbid-unsafe");
        assert!(diags("crates/x/src/util.rs", src).is_empty());
        let ok = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(diags("crates/x/src/lib.rs", ok).is_empty());
        assert_eq!(diags("crates/x/src/bin/tool.rs", src).len(), 1);
    }

    #[test]
    fn lock_order_flags_combined_and_direct_acquisition() {
        let src = concat!(
            "fn rogue(&self) {\n",
            "    let lane = self.lock_lane(0);\n",
            "    let pub_ = self.read_published();\n",
            "}\n",
            "fn sneaky(&self) {\n",
            "    let g = self.lanes[0].lock();\n",
            "}\n",
            "fn apply_inner(&self) {\n",
            "    let a = self.lock_lane(0);\n",
            "    let b = self.lock_lane(1);\n",
            "    let p = self.write_published();\n",
            "}\n",
        );
        let d = diags("crates/service/src/service.rs", src);
        let rules: Vec<(usize, &str)> = d.iter().map(|x| (x.line, x.rule)).collect();
        assert!(rules.contains(&(3, "lock-order")), "{rules:?}");
        assert!(rules.contains(&(6, "lock-order")), "{rules:?}");
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn lock_order_ignores_other_crates() {
        let src = "fn rogue(&self) { let a = self.lock_lane(0); let b = self.read_published(); }\n";
        assert!(diags("crates/core/src/shard.rs", src).is_empty());
    }
}
