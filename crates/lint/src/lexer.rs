//! A masking lexer for Rust source.
//!
//! Every rule in this linter is a textual pattern scan, and textual
//! scans lie the moment a pattern appears inside a comment, a string
//! literal, or a doc example. [`mask`] fixes that once, up front: it
//! splits a source file into two parallel, line-structure-preserving
//! streams — `code`, where comments and literal *contents* are blanked
//! to spaces, and `comment`, where everything except comment text is
//! blanked. Rules scan `code`; the pragma parser scans `comment`.
//! Neither can be fooled by the other's text.
//!
//! The lexer understands line comments (`//`, `///`, `//!`), nested
//! block comments (`/* /* */ */`), string and byte-string literals
//! with escapes, raw strings with arbitrary `#` fences (`r#"…"#`,
//! `br##"…"##`), char literals (including escaped ones), and the
//! char-literal-versus-lifetime ambiguity (`'a'` masks, `'a` in
//! `<'a>` stays code). Newlines are preserved in both streams, so a
//! byte offset into either stream converts to the same 1-based line
//! number as in the original file.

/// The two masked views of one source file. Both streams have exactly
/// the same line structure as the input.
#[derive(Debug)]
pub struct Masked {
    /// Source with comment bytes and string/char-literal contents
    /// replaced by spaces. String delimiters (`"`) are kept so call
    /// shapes like `.expect("…")` still look like calls.
    pub code: String,
    /// Comment text only (including the `//` / `/* */` delimiters);
    /// every non-comment byte is a space.
    pub comment: String,
}

impl Masked {
    /// The code stream split into lines (index 0 is line 1).
    pub fn code_lines(&self) -> Vec<&str> {
        split_keep_empty(&self.code)
    }

    /// The comment stream split into lines (index 0 is line 1).
    pub fn comment_lines(&self) -> Vec<&str> {
        split_keep_empty(&self.comment)
    }
}

/// Like `str::lines` but never drops a trailing empty line count
/// mismatch between the two streams.
fn split_keep_empty(s: &str) -> Vec<&str> {
    s.split('\n').collect()
}

/// 1-based line number of a byte offset into a masked stream.
pub fn line_of(stream: &str, offset: usize) -> usize {
    stream[..offset].bytes().filter(|&b| b == b'\n').count() + 1
}

/// Masks `source` into parallel code and comment streams.
pub fn mask(source: &str) -> Masked {
    let cs: Vec<char> = source.chars().collect();
    let n = cs.len();
    let mut code = String::with_capacity(source.len());
    let mut comment = String::with_capacity(source.len());
    // Pushes one source position to both streams: the real char goes
    // to the stream named by `to_code`, a space (or newline) to the
    // other.
    let push = |code: &mut String, comment: &mut String, c: char, to_code: bool| {
        if c == '\n' {
            code.push('\n');
            comment.push('\n');
        } else if to_code {
            code.push(c);
            comment.push(' ');
        } else {
            code.push(' ');
            comment.push(c);
        }
    };
    // Pushes a literal char: delimiters stay in code, contents blank
    // in both streams (a string's text is neither code nor comment).
    let push_lit = |code: &mut String, comment: &mut String, c: char, keep: bool| {
        if c == '\n' {
            code.push('\n');
            comment.push('\n');
        } else {
            code.push(if keep { c } else { ' ' });
            comment.push(' ');
        }
    };

    let mut i = 0;
    while i < n {
        let c = cs[i];
        // Line comment (covers `///` and `//!` doc comments too).
        if c == '/' && cs.get(i + 1) == Some(&'/') {
            while i < n && cs[i] != '\n' {
                push(&mut code, &mut comment, cs[i], false);
                i += 1;
            }
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && cs.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < n {
                if cs[i] == '/' && cs.get(i + 1) == Some(&'*') {
                    depth += 1;
                    push(&mut code, &mut comment, '/', false);
                    push(&mut code, &mut comment, '*', false);
                    i += 2;
                } else if cs[i] == '*' && cs.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    push(&mut code, &mut comment, '*', false);
                    push(&mut code, &mut comment, '/', false);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    push(&mut code, &mut comment, cs[i], false);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"…", r#"…"#, br##"…"##. Only when the
        // `r` is not the tail of an identifier.
        if (c == 'r' || (c == 'b' && cs.get(i + 1) == Some(&'r')))
            && (i == 0 || !is_ident_char(cs[i - 1]))
        {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while cs.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if cs.get(j) == Some(&'"') {
                // Prefix (r/br and hashes) and opening quote stay in
                // code as delimiters.
                while i <= j {
                    push_lit(&mut code, &mut comment, cs[i], true);
                    i += 1;
                }
                // Contents until `"` followed by `hashes` hashes.
                'raw: while i < n {
                    if cs[i] == '"' {
                        let mut k = 0;
                        while k < hashes && cs.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            for _ in 0..=hashes {
                                push_lit(&mut code, &mut comment, cs[i], true);
                                i += 1;
                            }
                            break 'raw;
                        }
                    }
                    push_lit(&mut code, &mut comment, cs[i], false);
                    i += 1;
                }
                continue;
            }
            // Not a raw string; fall through as plain code.
        }
        // String or byte-string literal (the `b` prefix was already
        // emitted as code on the previous iteration).
        if c == '"' {
            push_lit(&mut code, &mut comment, '"', true);
            i += 1;
            while i < n {
                if cs[i] == '\\' {
                    push_lit(&mut code, &mut comment, cs[i], false);
                    i += 1;
                    if i < n {
                        push_lit(&mut code, &mut comment, cs[i], false);
                        i += 1;
                    }
                } else if cs[i] == '"' {
                    push_lit(&mut code, &mut comment, '"', true);
                    i += 1;
                    break;
                } else {
                    push_lit(&mut code, &mut comment, cs[i], false);
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime: `'x'` and `'\n'` are literals,
        // `'a` in `<'a>` or `'static` is a lifetime and stays code.
        if c == '\'' {
            let is_escaped = cs.get(i + 1) == Some(&'\\');
            let is_plain = cs.get(i + 2) == Some(&'\'') && cs.get(i + 1) != Some(&'\'');
            if is_escaped {
                push_lit(&mut code, &mut comment, '\'', true);
                i += 1;
                while i < n && cs[i] != '\'' {
                    push_lit(&mut code, &mut comment, cs[i], false);
                    i += 1;
                }
                if i < n {
                    push_lit(&mut code, &mut comment, '\'', true);
                    i += 1;
                }
            } else if is_plain {
                push_lit(&mut code, &mut comment, '\'', true);
                push_lit(&mut code, &mut comment, cs[i + 1], false);
                push_lit(&mut code, &mut comment, '\'', true);
                i += 3;
            } else {
                push(&mut code, &mut comment, '\'', true);
                i += 1;
            }
            continue;
        }
        push(&mut code, &mut comment, c, true);
        i += 1;
    }
    Masked { code, comment }
}

/// Whether `c` can appear inside a Rust identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_preserve_line_structure() {
        let src = "let a = 1; // trailing\n/* block\n spans */ let b;\n";
        let m = mask(src);
        assert_eq!(m.code.matches('\n').count(), src.matches('\n').count());
        assert_eq!(m.comment.matches('\n').count(), src.matches('\n').count());
    }

    #[test]
    fn comments_leave_the_code_stream() {
        let m = mask("x(); // call .unwrap() here\n");
        assert!(!m.code.contains(".unwrap("));
        assert!(m.comment.contains(".unwrap("));
        assert!(m.code.contains("x();"));
    }

    #[test]
    fn nested_block_comments_mask_fully() {
        let m = mask("a /* one /* two */ still */ b");
        assert!(m.code.contains('a'));
        assert!(m.code.contains('b'));
        assert!(!m.code.contains("one"));
        assert!(!m.code.contains("still"));
        assert!(m.comment.contains("still"));
    }

    #[test]
    fn string_contents_mask_but_delimiters_stay() {
        let m = mask(r#"f(".unwrap() // not a comment");"#);
        assert!(!m.code.contains(".unwrap("));
        assert!(!m.comment.contains("not a comment"));
        assert!(m.code.contains("f(\""));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let m = mask(r#"g("a\".unwrap()\"b"); h();"#);
        assert!(!m.code.contains(".unwrap("));
        assert!(m.code.contains("h();"));
    }

    #[test]
    fn raw_strings_honor_hash_fences() {
        let m = mask(r####"let s = r##"quote " and .expect( stay"##; tail();"####);
        assert!(!m.code.contains(".expect("));
        assert!(m.code.contains("tail();"));
    }

    #[test]
    fn byte_and_raw_byte_strings_mask() {
        let m = mask(r###"let a = b".unwrap("; let c = br#".expect("#; done();"###);
        assert!(!m.code.contains(".unwrap("));
        assert!(!m.code.contains(".expect("));
        assert!(m.code.contains("done();"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let m = mask(r#"attr"x""#);
        // `attr` must stay code; only the string contents mask.
        assert!(m.code.contains("attr"));
        assert!(!m.code.contains('x'));
    }

    #[test]
    fn lifetimes_stay_code_but_char_literals_mask() {
        let m = mask("fn f<'a>(x: &'a str) { let c = 'y'; let n = '\\n'; }");
        assert!(m.code.contains("<'a>"));
        assert!(m.code.contains("&'a str"));
        assert!(!m.code.contains('y'));
        // Escaped char literal masks its content too.
        assert!(!m.code.contains("\\n'"));
    }

    #[test]
    fn line_of_counts_from_one() {
        let m = mask("a\nb\nc\n");
        let off = m.code.find('c').unwrap();
        assert_eq!(line_of(&m.code, off), 3);
        assert_eq!(line_of(&m.code, 0), 1);
    }

    #[test]
    fn doc_comment_patterns_do_not_leak_into_code() {
        let src =
            "/// calls `Instant::now()` internally\nfn f() {}\n//! `Ordering::SeqCst` notes\n";
        let m = mask(src);
        assert!(!m.code.contains("Instant::now"));
        assert!(!m.code.contains("Ordering::"));
        assert!(m.code.contains("fn f() {}"));
    }
}
