//! Workspace source discovery.
//!
//! Walks `src/` and every `crates/*/src/` under the workspace root,
//! collecting `.rs` files in sorted order. `vendor/` (offline
//! stand-in crates), `target/`, and the linter's own `fixtures/`
//! corpus are never entered — vendored code is not ours to lint, and
//! fixtures exist to violate the rules.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", ".git"];

/// Every lintable source file under `root`, as
/// (workspace-relative `/`-separated path, absolute path), sorted by
/// relative path.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    let top_src = root.join("src");
    if top_src.is_dir() {
        collect(root, &top_src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect(root, &src, &mut files)?;
            }
        }
    }
    files.sort();
    Ok(files)
}

fn collect(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                collect(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}

/// Ascends from `start` to the first directory that looks like the
/// workspace root (has both `Cargo.toml` and `crates/`).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> PathBuf {
        // crates/lint -> crates -> root
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest.parent().unwrap().parent().unwrap().to_path_buf()
    }

    #[test]
    fn walker_finds_known_files_and_skips_vendor_and_fixtures() {
        let files = workspace_sources(&repo_root()).expect("walk");
        let rels: Vec<&str> = files.iter().map(|(r, _)| r.as_str()).collect();
        assert!(rels.contains(&"crates/core/src/store.rs"), "{rels:?}");
        assert!(rels.contains(&"crates/lint/src/walk.rs"));
        assert!(rels.contains(&"src/lib.rs"));
        assert!(!rels.iter().any(|r| r.starts_with("vendor/")));
        assert!(!rels.iter().any(|r| r.contains("/fixtures/")));
        assert!(!rels.iter().any(|r| r.contains("/tests/")));
        // Sorted and unique.
        let mut sorted = rels.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(rels, sorted);
    }

    #[test]
    fn root_discovery_ascends() {
        let nested = repo_root().join("crates/lint/src");
        assert_eq!(find_workspace_root(&nested), Some(repo_root()));
    }
}
