//! Diagnostics and their text/JSON renderings.

use std::fmt;

/// One finding: `path:line [rule-id] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Renders diagnostics as a JSON array of objects with `path`, `line`,
/// `rule`, and `message` fields. Hand-rolled on purpose: the linter is
/// dependency-free.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"path\":\"{}\",", escape(&d.path)));
        out.push_str(&format!("\"line\":{},", d.line));
        out.push_str(&format!("\"rule\":\"{}\",", escape(d.rule)));
        out.push_str(&format!("\"message\":\"{}\"", escape(&d.message)));
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_grep_format() {
        let d = Diagnostic {
            path: "crates/core/src/pool.rs".into(),
            line: 42,
            rule: "lock-expect",
            message: "boom".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/core/src/pool.rs:42 [lock-expect] boom"
        );
    }

    #[test]
    fn json_escapes_and_shapes() {
        let diags = vec![Diagnostic {
            path: "a.rs".into(),
            line: 1,
            rule: "time-gate",
            message: "say \"no\" to\nclocks".into(),
        }];
        let json = render_json(&diags);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\\n"));
        assert_eq!(render_json(&[]), "[]");
    }
}
