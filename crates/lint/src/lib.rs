#![forbid(unsafe_code)]
//! `mmv-lint`: the project-invariant static analyzer for the mmv
//! workspace.
//!
//! rustc and clippy enforce language rules; this crate enforces the
//! *project's* rules — disciplines adopted in prior changes whose
//! erosion would be silent: poison recovery instead of unwrap-on-lock,
//! storage I/O confined to the fault-injecting `Vfs`, obs-gated clock
//! reads on the write path, justified atomic orderings, `forbid`-level
//! unsafe bans, and the two-phase lane/publication lock order.
//!
//! The analyzer is three small layers:
//!
//! 1. [`lexer`] masks a source file into parallel code/comment streams
//!    so pattern scans cannot be fooled by comments or string
//!    literals.
//! 2. [`scan`] extracts function spans, `#[cfg(test)]` regions, and
//!    the two pragma kinds from the masked streams.
//! 3. [`rules`] runs the six rules plus the `suppression` meta-rule,
//!    deny-by-default: a violating site either changes or carries
//!    `// mmv-lint: allow(rule-id) <reason>` — and the reason is
//!    itself checked for existence, spelling, and staleness.
//!
//! Diagnostics come out as `path:line [rule-id] message` (or `--json`
//! from the CLI). The whole crate is dependency-free by design.

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod scan;
pub mod walk;

pub use diag::{render_json, Diagnostic};
pub use rules::{lint_source, RuleInfo, RULES};

use std::io;
use std::path::Path;

/// Lints every workspace source under `root`, returning all
/// diagnostics sorted by path then line.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for (rel, abs) in walk::workspace_sources(root)? {
        let source = std::fs::read_to_string(&abs)?;
        out.extend(lint_source(&rel, &source));
    }
    out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_catalog_has_the_six_rules_plus_meta() {
        let ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        assert_eq!(
            ids,
            vec![
                "lock-expect",
                "vfs-confine",
                "time-gate",
                "atomic-order",
                "forbid-unsafe",
                "lock-order",
                "suppression",
            ]
        );
    }
}
