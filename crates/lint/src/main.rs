#![forbid(unsafe_code)]
//! The `mmv-lint` CLI.
//!
//! ```text
//! mmv-lint [--json] [--root <dir>] [--list-rules]
//! ```
//!
//! Walks the workspace (found by ascending from the current directory
//! unless `--root` is given), runs every rule, and prints diagnostics
//! as `path:line [rule-id] message` or, with `--json`, as a JSON
//! array. Exit status: 0 clean, 1 violations found, 2 usage or I/O
//! error. Deny-by-default — there is no flag to downgrade a rule; a
//! site that must deviate carries an inline
//! `// mmv-lint: allow(rule-id) <reason>`.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--list-rules" => {
                for r in mmv_lint::RULES {
                    println!("{:<14} {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: mmv-lint [--json] [--root <dir>] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => return fail(&format!("cannot read current directory: {e}")),
            };
            match mmv_lint::walk::find_workspace_root(&cwd) {
                Some(r) => r,
                None => return fail("no workspace root found; pass --root"),
            }
        }
    };
    let diags = match mmv_lint::lint_workspace(&root) {
        Ok(d) => d,
        Err(e) => return fail(&format!("walk failed under {}: {e}", root.display())),
    };
    if json {
        println!("{}", mmv_lint::render_json(&diags));
    } else {
        for d in &diags {
            println!("{d}");
        }
        eprintln!(
            "mmv-lint: {} violation{} across the workspace",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("mmv-lint: {msg}");
    eprintln!("usage: mmv-lint [--json] [--root <dir>] [--list-rules]");
    ExitCode::from(2)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("mmv-lint: {msg}");
    ExitCode::from(2)
}
