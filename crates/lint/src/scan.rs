//! The item/expression scanner layered over the masked streams.
//!
//! From one [`Masked`] file this builds everything the rules need:
//!
//! - **Function spans** (`fn name` → matching close brace), so a rule
//!   can attribute a pattern hit to its innermost enclosing function.
//! - **Test regions**: lines covered by a `#[cfg(test)]` or `#[test]`
//!   item. Project invariants govern production code; tests poison
//!   locks and read clocks on purpose, so rules skip these lines.
//! - **Pragmas** parsed from the comment stream: the suppression
//!   `// mmv-lint: allow(rule-id) <reason>` and the lighter atomics
//!   justification `// order: <reason>`. A pragma on a line with code
//!   targets that line; a pragma on its own line targets the next
//!   line that has code (so a stack of comment lines above a
//!   statement all resolve to the statement).

use crate::lexer::{is_ident_char, line_of, mask, Masked};
use std::cell::Cell;

/// One `fn` item with a body, by 1-based line span (inclusive).
#[derive(Debug)]
pub struct FnSpan {
    pub name: String,
    pub start_line: usize,
    pub end_line: usize,
}

/// A parsed `mmv-lint: allow(rule) reason` suppression.
#[derive(Debug)]
pub struct Allow {
    pub rule: String,
    pub reason: String,
    /// Line the pragma comment sits on.
    pub line: usize,
    /// Line whose diagnostics it suppresses.
    pub target: usize,
    /// Set when the allow actually suppressed a diagnostic, so stale
    /// suppressions can themselves be reported.
    pub used: Cell<bool>,
}

/// A parsed `order: reason` atomics justification.
#[derive(Debug)]
pub struct OrderPragma {
    pub reason: String,
    pub target: usize,
}

/// Everything scanned out of one source file.
pub struct FileCtx {
    pub masked: Masked,
    /// `test_lines[line - 1]` is true inside `#[cfg(test)]` / `#[test]`
    /// regions.
    pub test_lines: Vec<bool>,
    pub fns: Vec<FnSpan>,
    pub allows: Vec<Allow>,
    pub orders: Vec<OrderPragma>,
    /// Lines carrying an `mmv-lint:` directive that did not parse.
    pub bad_directives: Vec<(usize, String)>,
}

impl FileCtx {
    pub fn new(source: &str) -> FileCtx {
        let masked = mask(source);
        let line_count = masked.code_lines().len();
        let test_lines = test_regions(&masked.code, line_count);
        let fns = fn_spans(&masked.code);
        let (allows, orders, bad_directives) = pragmas(&masked);
        FileCtx {
            masked,
            test_lines,
            fns,
            allows,
            orders,
            bad_directives,
        }
    }

    /// Whether a 1-based line sits inside a test region.
    pub fn in_test(&self, line: usize) -> bool {
        self.test_lines.get(line - 1).copied().unwrap_or(false)
    }

    /// The innermost function span containing `line`, if any.
    pub fn enclosing_fn(&self, line: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.start_line <= line && line <= f.end_line)
            .min_by_key(|f| f.end_line - f.start_line)
    }

    /// Every non-test occurrence of `pat` in the code stream, as
    /// (byte offset, 1-based line).
    pub fn code_hits(&self, pat: &str) -> Vec<(usize, usize)> {
        self.masked
            .code
            .match_indices(pat)
            .map(|(off, _)| (off, line_of(&self.masked.code, off)))
            .filter(|&(_, line)| !self.in_test(line))
            .collect()
    }

    /// A non-empty `order:` justification targeting `line`.
    pub fn order_reason(&self, line: usize) -> Option<&OrderPragma> {
        self.orders.iter().find(|o| o.target == line)
    }
}

/// Marks every line covered by a `#[cfg(test)]` or `#[test]` item.
fn test_regions(code: &str, line_count: usize) -> Vec<bool> {
    let mut flags = vec![false; line_count];
    for attr in ["#[cfg(test)]", "#[test]"] {
        for (off, _) in code.match_indices(attr) {
            let start_line = line_of(code, off);
            let after = off + attr.len();
            // The item body opens at the next `{`; attribute-on-a-
            // statement (`#[cfg(test)] use …;`) ends at `;` instead.
            let rest = &code[after..];
            let brace = rest.find('{');
            let semi = rest.find(';');
            let end_line = match (brace, semi) {
                (Some(b), s) if s.is_none_or(|s| b < s) => match close_of(code, after + b) {
                    Some(close) => line_of(code, close),
                    None => line_count,
                },
                (_, Some(s)) => line_of(code, after + s),
                _ => line_count,
            };
            for line in start_line..=end_line.min(line_count) {
                flags[line - 1] = true;
            }
        }
    }
    flags
}

/// Byte offset of the `}` matching the `{` at `open`.
fn close_of(code: &str, open: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Scans `fn name … { … }` items out of the code stream. Bodyless
/// trait-method declarations (`fn f(&self);`) are skipped.
fn fn_spans(code: &str) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    let bytes = code.as_bytes();
    for (off, _) in code.match_indices("fn ") {
        // Word boundary: reject `dyn_fn `, accept start-of-file,
        // `pub fn`, `(fn …` and friends.
        if off > 0 && is_ident_char(bytes[off - 1] as char) {
            continue;
        }
        let mut i = off + 3;
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        let name_start = i;
        while i < bytes.len() && is_ident_char(bytes[i] as char) {
            i += 1;
        }
        if i == name_start {
            continue; // `fn(` pointer type, not an item
        }
        let name = code[name_start..i].to_string();
        // The body opens at the first `{` after the signature; a `;`
        // first means a bodyless declaration.
        let rest = &code[i..];
        let brace = rest.find('{');
        let semi = rest.find(';');
        let open = match (brace, semi) {
            (Some(b), s) if s.is_none_or(|s| b < s) => i + b,
            _ => continue,
        };
        if let Some(close) = close_of(code, open) {
            spans.push(FnSpan {
                name,
                start_line: line_of(code, off),
                end_line: line_of(code, close),
            });
        }
    }
    spans
}

/// Parses both pragma kinds out of the comment stream.
fn pragmas(masked: &Masked) -> (Vec<Allow>, Vec<OrderPragma>, Vec<(usize, String)>) {
    let code_lines: Vec<String> = masked.code_lines().iter().map(|s| s.to_string()).collect();
    let comment_lines = masked.comment_lines();
    let mut allows = Vec::new();
    let mut orders = Vec::new();
    let mut bad = Vec::new();
    // A pragma on a comment-only line applies to the next line with
    // code on it.
    let target_of = |line: usize| -> usize {
        let mut t = line;
        while t <= code_lines.len() && code_lines[t - 1].trim().is_empty() {
            t += 1;
        }
        t.min(code_lines.len().max(1))
    };
    for (idx, raw) in comment_lines.iter().enumerate() {
        let line = idx + 1;
        let text = raw.trim_start_matches([' ', '\t', '/', '*', '!']).trim();
        if let Some(rest) = text.strip_prefix("mmv-lint:") {
            let rest = rest.trim();
            let parsed = rest.strip_prefix("allow(").and_then(|r| {
                r.find(')').map(|close| {
                    (
                        r[..close].trim().to_string(),
                        r[close + 1..].trim().to_string(),
                    )
                })
            });
            match parsed {
                Some((rule, reason)) => allows.push(Allow {
                    rule,
                    reason,
                    line,
                    target: if code_lines[idx].trim().is_empty() {
                        target_of(line)
                    } else {
                        line
                    },
                    used: Cell::new(false),
                }),
                None => bad.push((line, rest.to_string())),
            }
        } else if let Some(reason) = text.strip_prefix("order:") {
            orders.push(OrderPragma {
                reason: reason.trim().to_string(),
                target: if code_lines[idx].trim().is_empty() {
                    target_of(line)
                } else {
                    line
                },
            });
        }
    }
    (allows, orders, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_spans_cover_bodies_and_skip_declarations() {
        let src = "trait T {\n    fn decl(&self);\n}\nfn outer() {\n    fn inner() {\n        x();\n    }\n}\n";
        let ctx = FileCtx::new(src);
        let names: Vec<&str> = ctx.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        let inner = ctx.enclosing_fn(6).unwrap();
        assert_eq!(inner.name, "inner");
        let outer = ctx.enclosing_fn(8).unwrap();
        assert_eq!(outer.name, "outer");
    }

    #[test]
    fn generic_signatures_find_their_body() {
        let src =
            "fn f<T: Iterator<Item = u8>>(x: T) -> Vec<u8>\nwhere\n    T: Clone,\n{\n    y()\n}\n";
        let ctx = FileCtx::new(src);
        assert_eq!(ctx.fns.len(), 1);
        assert_eq!(ctx.fns[0].start_line, 1);
        assert_eq!(ctx.fns[0].end_line, 6);
    }

    #[test]
    fn test_regions_cover_mod_and_fn_items() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        a();\n    }\n}\nfn prod2() {}\n";
        let ctx = FileCtx::new(src);
        assert!(!ctx.in_test(1));
        assert!(ctx.in_test(2));
        assert!(ctx.in_test(6));
        assert!(ctx.in_test(8));
        assert!(!ctx.in_test(9));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let ctx = FileCtx::new("#[cfg(not(test))]\nfn prod() {\n    x();\n}\n");
        assert!(!ctx.in_test(3));
    }

    #[test]
    fn allow_pragma_targets_code_line() {
        let src = "// mmv-lint: allow(lock-expect) poisoning is impossible here\nlet g = m.lock().unwrap();\nlet h = n.lock().unwrap(); // mmv-lint: allow(lock-expect) same\n";
        let ctx = FileCtx::new(src);
        assert_eq!(ctx.allows.len(), 2);
        assert_eq!(ctx.allows[0].rule, "lock-expect");
        assert_eq!(ctx.allows[0].target, 2);
        assert!(ctx.allows[0].reason.starts_with("poisoning"));
        assert_eq!(ctx.allows[1].target, 3);
    }

    #[test]
    fn malformed_directive_is_reported() {
        let ctx = FileCtx::new("// mmv-lint: alow(lock-expect) typo\nx();\n");
        assert_eq!(ctx.bad_directives.len(), 1);
        assert_eq!(ctx.bad_directives[0].0, 1);
    }

    #[test]
    fn order_pragma_parses_trailing_and_preceding() {
        let src = "a.store(1, Ordering::Relaxed); // order: independent counter\n// order: pairs with the load in f\nb.store(2, Ordering::Release);\n";
        let ctx = FileCtx::new(src);
        assert_eq!(ctx.orders.len(), 2);
        assert_eq!(ctx.orders[0].target, 1);
        assert_eq!(ctx.orders[1].target, 3);
        assert!(ctx.order_reason(3).is_some());
        assert!(ctx.order_reason(2).is_none());
    }

    #[test]
    fn code_hits_skip_tests_and_comments() {
        let src = "fn p() { i.lock().unwrap(); }\n// i.lock().unwrap() in prose\n#[cfg(test)]\nmod t {\n    fn q() { j.lock().unwrap(); }\n}\n";
        let ctx = FileCtx::new(src);
        let hits = ctx.code_hits(".unwrap(");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].1, 1);
    }
}
