//! Criterion microbenchmarks mirroring experiments E1/E3/E4/E6 on fixed
//! mid-size workloads, for statistically tracked numbers
//! (`cargo bench -p mmv-bench`).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mmv_bench::gen::constrained::{
    layered_program, random_deletion, random_insertion, LayeredSpec,
};
use mmv_bench::sensors::{monitoring_db, SensorDomain};
use mmv_constraints::{NoDomains, SolverConfig, Value};
use mmv_core::delete_dred::rewrite_for_deletion;
use mmv_core::semantics::build_del;
use mmv_core::{
    dred_delete, fixpoint, insert_atom, stdel_delete, FixpointConfig, Operator, SupportMode,
};
use mmv_domains::DomainManager;
use std::sync::Arc;

fn spec() -> LayeredSpec {
    LayeredSpec {
        layers: 3,
        preds_per_layer: 4,
        facts_per_pred: 8,
        body_atoms: 1,
        ..LayeredSpec::default()
    }
}

/// E1: the three deletion strategies on the same view.
fn bench_deletion(c: &mut Criterion) {
    let spec = spec();
    let db = layered_program(&spec);
    let cfg = FixpointConfig::default();
    let (with_supports, _) = fixpoint(
        &db,
        &NoDomains,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg,
    )
    .unwrap();
    let (plain, _) = fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg).unwrap();
    let deletion = random_deletion(&spec, 0xBE);

    let mut g = c.benchmark_group("e1_deletion");
    g.bench_function("stdel", |b| {
        b.iter_batched(
            || with_supports.clone(),
            |mut v| stdel_delete(&mut v, &deletion, &NoDomains, &cfg.solver).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("extended_dred", |b| {
        b.iter_batched(
            || plain.clone(),
            |mut v| dred_delete(&db, &mut v, &deletion, &NoDomains, &cfg).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("recompute", |b| {
        b.iter_batched(
            || plain.clone(),
            |mut v| {
                let del = build_del(&mut v, &deletion, &NoDomains, &cfg);
                let pprime = rewrite_for_deletion(&db, &del);
                fixpoint(&pprime, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg).unwrap()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// E3: incremental insertion vs recompute-with-extra-fact.
fn bench_insertion(c: &mut Criterion) {
    let spec = spec();
    let db = layered_program(&spec);
    let cfg = FixpointConfig::default();
    let (view, _) = fixpoint(
        &db,
        &NoDomains,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg,
    )
    .unwrap();
    let ins = random_insertion(&spec, 0xBE, 10);

    let mut g = c.benchmark_group("e3_insertion");
    g.bench_function("algorithm3", |b| {
        b.iter_batched(
            || view.clone(),
            |mut v| insert_atom(&db, &mut v, &ins, &NoDomains, Operator::Tp, &cfg).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("recompute", |b| {
        b.iter(|| {
            let mut extended = db.clone();
            extended.push(mmv_core::Clause::fact(
                &ins.pred,
                ins.args.clone(),
                ins.constraint.clone(),
            ));
            fixpoint(
                &extended,
                &NoDomains,
                Operator::Tp,
                SupportMode::WithSupports,
                &cfg,
            )
            .unwrap()
        })
    });
    g.finish();
}

/// E4: maintenance cost per external update.
fn bench_external(c: &mut Criterion) {
    let n = 100;
    let sensors = Arc::new(SensorDomain::new(n));
    let mut manager = DomainManager::new();
    manager.register(sensors.clone());
    let db = monitoring_db(n, 50);
    let cfg = FixpointConfig::default();

    let mut g = c.benchmark_group("e4_external_update");
    let mut tick = 0i64;
    g.bench_function("tp_rebuild", |b| {
        b.iter(|| {
            tick += 1;
            sensors.set((tick as usize) % n, vec![40 + tick % 30, 90]);
            fixpoint(&db, &manager, Operator::Tp, SupportMode::WithSupports, &cfg).unwrap()
        })
    });
    // The W_P "maintenance" is a no-op; measure the query-time evaluation
    // it defers to instead.
    let (wp, _) = fixpoint(&db, &manager, Operator::Wp, SupportMode::WithSupports, &cfg).unwrap();
    let scfg = SolverConfig::default();
    g.bench_function("wp_query_after_update", |b| {
        b.iter(|| {
            tick += 1;
            sensors.set((tick as usize) % n, vec![40 + tick % 30, 90]);
            wp.query(
                &format!("alert{}", (tick as usize) % n),
                &[None],
                &manager,
                &scfg,
            )
            .unwrap()
        })
    });
    g.finish();
}

/// E6: materialization with and without supports.
fn bench_build(c: &mut Criterion) {
    let spec = spec();
    let db = layered_program(&spec);
    let cfg = FixpointConfig::default();
    let mut g = c.benchmark_group("e6_build");
    g.bench_function("with_supports", |b| {
        b.iter(|| {
            fixpoint(
                &db,
                &NoDomains,
                Operator::Tp,
                SupportMode::WithSupports,
                &cfg,
            )
            .unwrap()
        })
    });
    g.bench_function("plain", |b| {
        b.iter(|| fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg).unwrap())
    });
    g.finish();
}

/// Solver microbenchmark: satisfiability of deletion-shaped constraints.
fn bench_solver(c: &mut Criterion) {
    use mmv_constraints::{satisfiable, CmpOp, Constraint, Lit, Term, Var};
    let x = Term::var(Var(0));
    let mut constraint = Constraint::cmp(x.clone(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
        x.clone(),
        CmpOp::Le,
        Term::int(1000),
    ));
    for k in 0..8 {
        constraint = constraint.and_lit(Lit::Not(Constraint::eq(x.clone(), Term::int(k * 7))));
    }
    c.bench_function("solver_sat_8_exclusions", |b| {
        b.iter(|| satisfiable(&constraint, &NoDomains))
    });
    let q = Constraint::cmp(x.clone(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
        x.clone(),
        CmpOp::Le,
        Term::int(50),
    ));
    c.bench_function("enumerate_interval_51", |b| {
        b.iter(|| {
            mmv_constraints::solutions(&q, &[Var(0)], &NoDomains)
                .exact()
                .map(|s| s.len())
        })
    });
    std::hint::black_box(Value::int(0));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_deletion, bench_insertion, bench_external, bench_build, bench_solver
}
criterion_main!(benches);
