//! Timing and table-rendering helpers shared by the experiment binaries.
//! Each `eN_*` binary prints the rows EXPERIMENTS.md records; the tables
//! here keep that output consistent and machine-diffable.

use std::time::{Duration, Instant};

/// Times `f`, returning its result and the elapsed wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Runs `f` `runs` times (after `warmup` unmeasured runs) and reports the
/// median duration. `f` must be repeatable (operate on cloned state).
pub fn median_time<T>(warmup: usize, runs: usize, mut f: impl FnMut() -> T) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<Duration> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Renders a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}us")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.3}s", us / 1e6)
    }
}

/// A simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints an experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("=== {id} ===");
    println!("claim: {claim}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["n", "time"]);
        t.row(vec!["10".into(), "1.0ms".into()]);
        t.row(vec!["1000".into(), "12.5ms".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("time"));
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.0us");
        assert_eq!(fmt_duration(Duration::from_millis(2)), "2.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.000s");
    }

    #[test]
    fn median_is_stable() {
        let d = median_time(0, 5, || std::thread::sleep(Duration::from_micros(50)));
        assert!(d >= Duration::from_micros(40));
    }
}
