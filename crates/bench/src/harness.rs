//! Timing and table-rendering helpers shared by the experiment binaries.
//! Each `eN_*` binary prints the rows EXPERIMENTS.md records; the tables
//! here keep that output consistent and machine-diffable.
//!
//! Every binary also accepts `--json <path>` and mirrors its table into a
//! machine-readable [`JsonReport`], so benchmark trajectories can be
//! accumulated across PRs without scraping stdout.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Times `f`, returning its result and the elapsed wall time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Runs `f` `runs` times (after `warmup` unmeasured runs) and reports the
/// median duration. `f` must be repeatable (operate on cloned state).
pub fn median_time<T>(warmup: usize, runs: usize, mut f: impl FnMut() -> T) -> Duration {
    for _ in 0..warmup {
        f();
    }
    let mut samples: Vec<Duration> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Renders a duration in adaptive units.
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}us")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.3}s", us / 1e6)
    }
}

/// A simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {c:<w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints an experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("=== {id} ===");
    println!("claim: {claim}");
    println!();
}

/// Median timings of one batched-vs-sequential deletion comparison
/// (shared by E1's multi-update sweep and E8's part 2).
#[derive(Debug, Clone, Copy)]
pub struct BatchedDeletionTimings {
    /// One `stdel_delete_batch` pass over the whole deletion set.
    pub stdel_batch: Duration,
    /// One `stdel_delete` pass per deletion.
    pub stdel_sequential: Duration,
    /// One `dred_delete_batch` pass over the whole deletion set.
    pub dred_batch: Duration,
    /// One `dred_delete` pass per deletion.
    pub dred_sequential: Duration,
}

impl BatchedDeletionTimings {
    /// Sequential-over-batch latency ratio for StDel.
    pub fn stdel_ratio(&self) -> f64 {
        self.stdel_sequential.as_secs_f64() / self.stdel_batch.as_secs_f64().max(1e-9)
    }

    /// Sequential-over-batch latency ratio for Extended DRed.
    pub fn dred_ratio(&self) -> f64 {
        self.dred_sequential.as_secs_f64() / self.dred_batch.as_secs_f64().max(1e-9)
    }

    /// Batched StDel update throughput (deletions per second).
    pub fn stdel_ops_per_sec(&self, k: usize) -> f64 {
        k as f64 / self.stdel_batch.as_secs_f64().max(1e-9)
    }

    /// Batched Extended DRed update throughput (deletions per second).
    pub fn dred_ops_per_sec(&self, k: usize) -> f64 {
        k as f64 / self.dred_batch.as_secs_f64().max(1e-9)
    }
}

/// Times the four maintenance strategies for one deletion set: StDel
/// and Extended DRed, batched (one set-oriented pass) versus sequential
/// (one single-atom pass per deletion), each the median of `runs` runs
/// on clones of the given base views.
pub fn time_batched_deletions(
    db: &mmv_core::ConstrainedDatabase,
    with_supports: &mmv_core::MaterializedView,
    plain: &mmv_core::MaterializedView,
    deletions: &[mmv_core::ConstrainedAtom],
    resolver: &dyn mmv_constraints::DomainResolver,
    config: &mmv_core::FixpointConfig,
    runs: usize,
) -> BatchedDeletionTimings {
    let stdel_batch = median_time(1, runs, || {
        let mut v = with_supports.clone();
        mmv_core::stdel_delete_batch(&mut v, deletions, resolver, &config.solver)
            .expect("stdel batch");
    });
    let stdel_sequential = median_time(1, runs, || {
        let mut v = with_supports.clone();
        for d in deletions {
            mmv_core::stdel_delete(&mut v, d, resolver, &config.solver).expect("stdel");
        }
    });
    let dred_batch = median_time(1, runs, || {
        let mut v = plain.clone();
        mmv_core::dred_delete_batch(db, &mut v, deletions, resolver, config).expect("dred batch");
    });
    let dred_sequential = median_time(1, runs, || {
        let mut v = plain.clone();
        for d in deletions {
            mmv_core::dred_delete(db, &mut v, d, resolver, config).expect("dred");
        }
    });
    BatchedDeletionTimings {
        stdel_batch,
        stdel_sequential,
        dred_batch,
        dred_sequential,
    }
}

/// The `--json <path>` argument of an experiment binary, if present.
/// Exits with an error if `--json` is given without a usable path, so a
/// CI trajectory step can never silently produce no report.
pub fn json_path_from_args() -> Option<PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--json" {
            return match args.next() {
                Some(p) if !p.starts_with("--") => Some(PathBuf::from(p)),
                _ => {
                    eprintln!("error: --json requires a path argument");
                    std::process::exit(2);
                }
            };
        }
    }
    None
}

/// A JSON scalar in a report row.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// An integer.
    Int(i64),
    /// A float (timings in seconds, ratios).
    Float(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_value(v: &JsonValue) -> String {
    match v {
        JsonValue::Int(i) => i.to_string(),
        JsonValue::Float(f) if f.is_finite() => format!("{f}"),
        JsonValue::Float(_) => "null".to_string(),
        JsonValue::Str(s) => format!("\"{}\"", escape_json(s)),
        JsonValue::Bool(b) => b.to_string(),
    }
}

/// One row of a [`JsonReport`]: ordered key/value pairs, built fluently.
#[derive(Debug, Clone, Default)]
pub struct JsonRow(Vec<(String, JsonValue)>);

impl JsonRow {
    /// An empty row.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, v: i64) -> Self {
        self.0.push((key.to_string(), JsonValue::Int(v)));
        self
    }

    /// Adds a float field.
    pub fn float(mut self, key: &str, v: f64) -> Self {
        self.0.push((key.to_string(), JsonValue::Float(v)));
        self
    }

    /// Adds a duration field, stored as seconds.
    pub fn secs(self, key: &str, d: Duration) -> Self {
        self.float(key, d.as_secs_f64())
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.0
            .push((key.to_string(), JsonValue::Str(v.to_string())));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, v: bool) -> Self {
        self.0.push((key.to_string(), JsonValue::Bool(v)));
        self
    }
}

/// A machine-readable experiment report, written by `--json <path>`.
#[derive(Debug, Clone)]
pub struct JsonReport {
    experiment: String,
    claim: String,
    rows: Vec<JsonRow>,
}

impl JsonReport {
    /// Creates a report for one experiment.
    pub fn new(experiment: &str, claim: &str) -> Self {
        JsonReport {
            experiment: experiment.to_string(),
            claim: claim.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: JsonRow) {
        self.rows.push(row);
    }

    /// Renders the report as a JSON object.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"experiment\":\"{}\",\"claim\":\"{}\",\"rows\":[",
            escape_json(&self.experiment),
            escape_json(&self.claim)
        ));
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            for (j, (k, v)) in row.0.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", escape_json(k), render_value(v)));
            }
            out.push('}');
        }
        out.push_str("]}\n");
        out
    }

    /// Writes the report to `path`.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }

    /// Writes the report if a `--json` path was given, announcing it.
    pub fn write_if(&self, path: &Option<PathBuf>) {
        if let Some(p) = path {
            self.write(p).expect("write --json report");
            println!("json report written to {}", p.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["n", "time"]);
        t.row(vec!["10".into(), "1.0ms".into()]);
        t.row(vec!["1000".into(), "12.5ms".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("time"));
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_micros(5)), "5.0us");
        assert_eq!(fmt_duration(Duration::from_millis(2)), "2.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.000s");
    }

    #[test]
    fn json_report_renders_and_escapes() {
        let mut r = JsonReport::new("E0", "a \"quoted\" claim");
        r.push(
            JsonRow::new()
                .int("n", 3)
                .secs("t", Duration::from_millis(1500))
                .str("name", "line\nbreak")
                .bool("ok", true)
                .float("bad", f64::NAN),
        );
        let s = r.render();
        assert_eq!(
            s,
            "{\"experiment\":\"E0\",\"claim\":\"a \\\"quoted\\\" claim\",\"rows\":[\
             {\"n\":3,\"t\":1.5,\"name\":\"line\\nbreak\",\"ok\":true,\"bad\":null}]}\n"
        );
    }

    #[test]
    fn median_is_stable() {
        let d = median_time(0, 5, || std::thread::sleep(Duration::from_micros(50)));
        assert!(d >= Duration::from_micros(40));
    }
}
