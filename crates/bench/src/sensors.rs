//! A synthetic "sensor network" domain for the external-update
//! experiment (E4): `N` independent sensors whose readings change over
//! time. Each update to a sensor is an external change of the second
//! kind — exactly the event Section 4's `W_P` strategy handles for free.
//!
//! This module also demonstrates how downstream users extend the system
//! with their own [`Domain`] implementations.

use mmv_constraints::{Value, ValueSet};
use mmv_domains::Domain;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The `sensors` domain: `sensors:read(i)` returns the current readings
/// of sensor `i` (a small set of integers).
pub struct SensorDomain {
    readings: RwLock<Vec<Vec<i64>>>,
    version: AtomicU64,
}

impl SensorDomain {
    /// Creates `n` sensors, each with one initial reading `i`.
    pub fn new(n: usize) -> Self {
        SensorDomain {
            readings: RwLock::new((0..n).map(|i| vec![i as i64]).collect()),
            version: AtomicU64::new(0),
        }
    }

    /// Reads the sensor table. A panic while a writer held the lock
    /// poisons it, but every write is a whole-`Vec<i64>` slot swap that
    /// a panic can interrupt, not tear — so the poison is cleared and
    /// the guard recovered rather than propagating the panic into
    /// every later reader.
    fn read_readings(&self) -> RwLockReadGuard<'_, Vec<Vec<i64>>> {
        match self.readings.read() {
            Ok(g) => g,
            Err(p) => {
                self.readings.clear_poison();
                p.into_inner()
            }
        }
    }

    /// Write side of [`SensorDomain::read_readings`], same recovery.
    fn write_readings(&self) -> RwLockWriteGuard<'_, Vec<Vec<i64>>> {
        match self.readings.write() {
            Ok(g) => g,
            Err(p) => {
                self.readings.clear_poison();
                p.into_inner()
            }
        }
    }

    /// Number of sensors.
    pub fn len(&self) -> usize {
        self.read_readings().len()
    }

    /// Whether there are no sensors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Overwrites sensor `i`'s readings (an external update).
    pub fn set(&self, i: usize, values: Vec<i64>) {
        let mut r = self.write_readings();
        if let Some(slot) = r.get_mut(i) {
            *slot = values;
            self.version.fetch_add(1, Ordering::Relaxed); // order: the RwLock write guard orders the data; the version only needs atomicity
        }
    }
}

impl Domain for SensorDomain {
    fn name(&self) -> &str {
        "sensors"
    }

    fn call(&self, func: &str, args: &[Value]) -> ValueSet {
        match func {
            "read" => {
                let Some(i) = args.first().and_then(|v| v.as_int()) else {
                    return ValueSet::Empty;
                };
                let r = self.read_readings();
                match usize::try_from(i).ok().and_then(|i| r.get(i)) {
                    Some(vals) => ValueSet::finite(vals.iter().map(|&v| Value::Int(v))),
                    None => ValueSet::Empty,
                }
            }
            _ => ValueSet::Empty,
        }
    }

    fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed) // order: advisory staleness check; the RwLock orders the data it guards
    }

    fn functions(&self) -> Vec<&'static str> {
        vec!["read"]
    }
}

/// Builds the monitoring mediator over `n` sensors:
/// `alert_i(X) <- in(X, sensors:read(i)) & X >= threshold` for each i.
pub fn monitoring_db(n: usize, threshold: i64) -> mmv_core::ConstrainedDatabase {
    use mmv_constraints::{Call, CmpOp, Constraint, Term, Var};
    use mmv_core::{Clause, ConstrainedDatabase};
    let x = Term::var(Var(0));
    let mut db = ConstrainedDatabase::new();
    for i in 0..n {
        db.push(Clause::fact(
            &format!("alert{i}"),
            vec![x.clone()],
            Constraint::member(
                x.clone(),
                Call::new("sensors", "read", vec![Term::int(i as i64)]),
            )
            .and(Constraint::cmp(x.clone(), CmpOp::Ge, Term::int(threshold))),
        ));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmv_constraints::SolverConfig;
    use mmv_core::{fixpoint, FixpointConfig, Operator, SupportMode};
    use mmv_domains::DomainManager;
    use std::sync::Arc;

    #[test]
    fn sensor_updates_bump_version_and_change_reads() {
        let s = SensorDomain::new(3);
        let v0 = s.version();
        assert_eq!(
            s.call("read", &[Value::int(1)]),
            ValueSet::finite([Value::int(1)])
        );
        s.set(1, vec![100, 200]);
        assert!(s.version() > v0);
        assert_eq!(
            s.call("read", &[Value::int(1)]),
            ValueSet::finite([Value::int(100), Value::int(200)])
        );
    }

    #[test]
    fn poisoned_sensor_lock_recovers() {
        let s = Arc::new(SensorDomain::new(2));
        let s2 = s.clone();
        // Poison the RwLock by panicking while holding the write guard.
        let _ = std::thread::spawn(move || {
            let _g = s2.write_readings();
            panic!("poison the sensor lock");
        })
        .join();
        // Reads and writes keep working: the poison is cleared, not
        // propagated.
        assert_eq!(s.len(), 2);
        s.set(0, vec![42]);
        assert_eq!(
            s.call("read", &[Value::int(0)]),
            ValueSet::finite([Value::int(42)])
        );
    }

    #[test]
    fn tp_prunes_below_threshold_wp_retains() {
        let sensors = Arc::new(SensorDomain::new(4));
        let mut m = DomainManager::new();
        m.register(sensors.clone());
        let db = monitoring_db(4, 10); // initial readings all < 10
        let cfg = FixpointConfig::default();
        let (tp, _) = fixpoint(&db, &m, Operator::Tp, SupportMode::WithSupports, &cfg).unwrap();
        assert_eq!(tp.len(), 0, "all alerts unsolvable at build time");
        let (wp, _) = fixpoint(&db, &m, Operator::Wp, SupportMode::WithSupports, &cfg).unwrap();
        assert_eq!(wp.len(), 4, "W_P keeps all syntactic entries");
        // After an external update, the W_P view answers correctly with
        // no maintenance at all.
        sensors.set(2, vec![50]);
        let hits = wp
            .query("alert2", &[None], &m, &SolverConfig::default())
            .unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits.iter().next().unwrap()[0], Value::int(50));
        // The stale T_P view cannot (it pruned the entry away) — this is
        // the recomputation W_P eliminates.
        let stale = tp
            .query("alert2", &[None], &m, &SolverConfig::default())
            .unwrap();
        assert!(stale.is_empty());
    }
}
