//! Ground workload generators: random graphs and the classic Datalog
//! programs over them (transitive closure — recursive; two-hop paths —
//! nonrecursive), in both the ground engine's and the constrained
//! engine's representations.

use mmv_constraints::{Constraint, Term, Value, Var};
use mmv_core::{BodyAtom, Clause, ConstrainedDatabase};
use mmv_datalog::{DlAtom, DlProgram, DlRule, DlTerm, Fact};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random-digraph specification.
#[derive(Debug, Clone, Copy)]
pub struct GraphSpec {
    /// Number of nodes (labelled `0..nodes`).
    pub nodes: usize,
    /// Number of edges (sampled uniformly, no self-loops, deduplicated).
    pub edges: usize,
    /// RNG seed (all generators are deterministic per seed).
    pub seed: u64,
}

/// Samples a random edge set.
pub fn random_edges(spec: &GraphSpec) -> Vec<(i64, i64)> {
    assert!(spec.nodes >= 2, "need at least two nodes");
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(spec.edges);
    let mut attempts = 0usize;
    while out.len() < spec.edges && attempts < spec.edges * 20 {
        attempts += 1;
        let a = rng.gen_range(0..spec.nodes) as i64;
        let b = rng.gen_range(0..spec.nodes) as i64;
        if a != b && seen.insert((a, b)) {
            out.push((a, b));
        }
    }
    out
}

/// A simple chain `0 -> 1 -> … -> n-1`.
pub fn chain_edges(n: usize) -> Vec<(i64, i64)> {
    (0..n.saturating_sub(1) as i64)
        .map(|i| (i, i + 1))
        .collect()
}

/// The recursive transitive-closure program over `edge` facts.
pub fn tc_program(edges: &[(i64, i64)]) -> DlProgram {
    DlProgram::new(
        vec![
            DlRule::new(
                DlAtom::new("tc", vec![DlTerm::Var(0), DlTerm::Var(1)]),
                vec![DlAtom::new("edge", vec![DlTerm::Var(0), DlTerm::Var(1)])],
            )
            .expect("safe rule"),
            DlRule::new(
                DlAtom::new("tc", vec![DlTerm::Var(0), DlTerm::Var(1)]),
                vec![
                    DlAtom::new("edge", vec![DlTerm::Var(0), DlTerm::Var(2)]),
                    DlAtom::new("tc", vec![DlTerm::Var(2), DlTerm::Var(1)]),
                ],
            )
            .expect("safe rule"),
        ],
        edge_facts(edges),
    )
}

/// The nonrecursive two-hop program (`p2(X,Y) :- edge(X,Z), edge(Z,Y)`),
/// plus a second stratum `reach1(X) :- p2(X, Y)`.
pub fn two_hop_program(edges: &[(i64, i64)]) -> DlProgram {
    DlProgram::new(
        vec![
            DlRule::new(
                DlAtom::new("p2", vec![DlTerm::Var(0), DlTerm::Var(1)]),
                vec![
                    DlAtom::new("edge", vec![DlTerm::Var(0), DlTerm::Var(2)]),
                    DlAtom::new("edge", vec![DlTerm::Var(2), DlTerm::Var(1)]),
                ],
            )
            .expect("safe rule"),
            DlRule::new(
                DlAtom::new("src2", vec![DlTerm::Var(0)]),
                vec![DlAtom::new("p2", vec![DlTerm::Var(0), DlTerm::Var(1)])],
            )
            .expect("safe rule"),
        ],
        edge_facts(edges),
    )
}

fn edge_facts(edges: &[(i64, i64)]) -> Vec<Fact> {
    edges
        .iter()
        .map(|&(a, b)| Fact::new("edge", vec![Value::Int(a), Value::Int(b)]))
        .collect()
}

/// Translates a ground Datalog program into an equivalent constrained
/// database: facts become constant-argument clauses, rules become
/// constraint-free clauses. This is the bridge for the cross-engine
/// equivalence experiments (E2).
pub fn ground_to_constrained(p: &DlProgram) -> ConstrainedDatabase {
    let mut db = ConstrainedDatabase::new();
    for f in &p.edb {
        db.push(Clause::fact(
            &f.pred,
            f.args.iter().cloned().map(Term::Const).collect(),
            Constraint::truth(),
        ));
    }
    for r in &p.rules {
        let conv = |t: &DlTerm| match t {
            DlTerm::Var(v) => Term::Var(Var(*v)),
            DlTerm::Const(c) => Term::Const(c.clone()),
        };
        db.push(Clause::new(
            &r.head.pred,
            r.head.args.iter().map(conv).collect(),
            Constraint::truth(),
            r.body
                .iter()
                .map(|a| BodyAtom::new(&a.pred, a.args.iter().map(conv).collect()))
                .collect(),
        ));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmv_constraints::{NoDomains, SolverConfig};
    use mmv_core::{fixpoint, FixpointConfig, Operator, SupportMode};

    #[test]
    fn generators_are_deterministic() {
        let spec = GraphSpec {
            nodes: 20,
            edges: 30,
            seed: 42,
        };
        assert_eq!(random_edges(&spec), random_edges(&spec));
        assert_ne!(
            random_edges(&spec),
            random_edges(&GraphSpec { seed: 43, ..spec })
        );
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let edges = random_edges(&GraphSpec {
            nodes: 10,
            edges: 40,
            seed: 7,
        });
        let set: std::collections::BTreeSet<_> = edges.iter().collect();
        assert_eq!(set.len(), edges.len());
        assert!(edges.iter().all(|(a, b)| a != b));
    }

    #[test]
    fn ground_and_constrained_engines_agree_on_tc() {
        let edges = chain_edges(6);
        let p = tc_program(&edges);
        let ground = mmv_datalog::evaluate(&p);

        let cdb = ground_to_constrained(&p);
        let (view, _) = fixpoint(
            &cdb,
            &NoDomains,
            Operator::Tp,
            SupportMode::Plain,
            &FixpointConfig::default(),
        )
        .unwrap();
        let inst = view
            .instances(&NoDomains, &SolverConfig::default())
            .unwrap();
        let ground_set: std::collections::BTreeSet<(String, Vec<_>)> = ground
            .facts()
            .map(|f| (f.pred.to_string(), f.args))
            .collect();
        let constrained_set: std::collections::BTreeSet<(String, Vec<_>)> =
            inst.into_iter().map(|(p, t)| (p.to_string(), t)).collect();
        assert_eq!(ground_set, constrained_set);
    }
}
