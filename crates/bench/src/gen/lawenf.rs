//! The synthetic law-enforcement world of the paper's running example
//! (Example 1 / Figure 1): face-recognition package, phone-book database,
//! spatial system, employee database, and the three mediator clauses —
//! all generated at a configurable scale.

use mmv_constraints::Value;
use mmv_core::parser::parse_program;
use mmv_core::ConstrainedDatabase;
use mmv_domains::{DomainManager, FacePackage, RelationalDomain, SpatialDomain};
use mmv_storage::{Catalog, ColumnType, Schema};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::{Arc, RwLock};

/// Scale parameters for the synthetic world.
#[derive(Debug, Clone, Copy)]
pub struct LawEnfSpec {
    /// Number of registered people (mugshot database size).
    pub people: usize,
    /// Number of surveillance photos.
    pub photos: usize,
    /// Faces per photo.
    pub faces_per_photo: usize,
    /// Fraction of people living within range of DC (0.0–1.0).
    pub near_dc_fraction: f64,
    /// Fraction of people employed by ABC Corp.
    pub employee_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LawEnfSpec {
    fn default() -> Self {
        LawEnfSpec {
            people: 20,
            photos: 10,
            faces_per_photo: 3,
            near_dc_fraction: 0.5,
            employee_fraction: 0.5,
            seed: 7,
        }
    }
}

/// The generated world: domains registered in a manager plus the
/// mediator database.
pub struct LawEnfWorld {
    /// The domain manager with all five domains registered.
    pub manager: DomainManager,
    /// Handle to the face package (for photo-set updates).
    pub face: FacePackage,
    /// Handle to the phone-book catalog (paradox domain).
    pub paradox: Arc<RwLock<Catalog>>,
    /// Handle to the employee catalog (dbase domain).
    pub dbase: Arc<RwLock<Catalog>>,
    /// The mediator (clauses (1)–(3) of the paper).
    pub db: ConstrainedDatabase,
    /// The person of interest ("don", always person 0).
    pub target: String,
}

/// Person `i`'s name.
pub fn person_name(i: usize) -> String {
    if i == 0 {
        "don".to_string()
    } else {
        format!("person{i}")
    }
}

/// Builds the world.
pub fn build(spec: &LawEnfSpec) -> LawEnfWorld {
    let mut rng = SmallRng::seed_from_u64(spec.seed);

    // --- face package: mugshots + surveillance photos -------------------
    let face = FacePackage::new();
    for i in 0..spec.people {
        face.register_person(&person_name(i), i as u64 + 1);
    }
    for p in 0..spec.photos {
        let mut faces: Vec<u64> = vec![1]; // the target appears everywhere
        while faces.len() < spec.faces_per_photo.max(1) {
            let f = rng.gen_range(0..spec.people) as u64 + 1;
            if !faces.contains(&f) {
                faces.push(f);
            }
        }
        face.add_photo("surveillancedata", &format!("img{p:04}"), &faces);
    }

    // --- phone book (paradox) with geocodable addresses ------------------
    let mut phonebook = Catalog::new();
    phonebook
        .create_table(
            "phonebook",
            Schema::new(vec![
                ("name", ColumnType::Str),
                ("streetnum", ColumnType::Int),
                ("streetname", ColumnType::Str),
                ("cityname", ColumnType::Str),
            ]),
        )
        .expect("fresh catalog");
    // --- spatial: a DC landmark; near/far addresses chosen by geocode ----
    let spatial = SpatialDomain::new();
    let (dcx, dcy) = (500, 500);
    spatial.add_landmark("dcareamap", "dc", dcx, dcy);
    for i in 0..spec.people {
        let near = (i as f64 / spec.people.max(1) as f64) < spec.near_dc_fraction;
        // Search for an address whose deterministic geocode lands
        // near/far as required.
        let mut num = rng.gen_range(1..10_000);
        loop {
            let (x, y) = SpatialDomain::geocode_address(num, "main st", "washington");
            let d2 = (x - dcx).pow(2) + (y - dcy).pow(2);
            let is_near = d2 <= 100 * 100;
            if is_near == near {
                break;
            }
            num += 1;
        }
        phonebook
            .insert(
                "phonebook",
                &[
                    Value::str(&person_name(i)),
                    Value::Int(num),
                    Value::str("main st"),
                    Value::str("washington"),
                ],
            )
            .expect("schema ok");
    }
    phonebook
        .table_config("phonebook")
        .expect("table exists")
        .create_index("name");
    let paradox = Arc::new(RwLock::new(phonebook));

    // --- employees (dbase) ----------------------------------------------
    let mut empl = Catalog::new();
    empl.create_table("empl_abc", Schema::new(vec![("name", ColumnType::Str)]))
        .expect("fresh catalog");
    for i in 0..spec.people {
        if rng.gen_bool(spec.employee_fraction.clamp(0.0, 1.0)) || i == 1 {
            empl.insert("empl_abc", &[Value::str(&person_name(i))])
                .expect("schema ok");
        }
    }
    empl.table_config("empl_abc")
        .expect("table exists")
        .create_index("name");
    let dbase = Arc::new(RwLock::new(empl));

    // --- manager ----------------------------------------------------------
    let mut manager = DomainManager::new();
    manager.register(Arc::new(face.extract_domain()));
    manager.register(Arc::new(face.db_domain()));
    manager.register(Arc::new(RelationalDomain::new("paradox", paradox.clone())));
    manager.register(Arc::new(RelationalDomain::new("dbase", dbase.clone())));
    manager.register(Arc::new(spatial));

    // --- the mediator (paper clauses (1)-(3)) ------------------------------
    let src = r#"
        % (1) Y was seen with X on some surveillance photo.
        seenwith(X, Y) <-
            in(P1, facextract:segmentface(surveillancedata)) &
            in(P2, facextract:segmentface(surveillancedata)) &
            P1.origin = P2.origin & P1 != P2 &
            in(F, facedb:findface(X)) &
            in(true, facextract:matchface(P1, F)) &
            in(Y, facedb:findname(P2)).
        % (2) … and Y lives within 100 units of DC.
        swlndc(X, Y) <-
            in(A, paradox:select_eq(phonebook, name, Y)) &
            in(Pt, spatialdb:locate_address(A.streetnum, A.streetname, A.cityname)) &
            in(true, spatialdb:range(dcareamap, dc, Pt.x, Pt.y, 100))
            || seenwith(X, Y).
        % (3) … and Y works for ABC Corp.
        suspect(X, Y) <-
            in(T, dbase:select_eq(empl_abc, name, Y))
            || swlndc(X, Y).
    "#;
    let db = parse_program(src).expect("mediator parses").db;

    LawEnfWorld {
        manager,
        face,
        paradox,
        dbase,
        db,
        target: person_name(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmv_constraints::SolverConfig;
    use mmv_core::{fixpoint, FixpointConfig, Operator, SupportMode};

    #[test]
    fn world_materializes_and_answers_suspects() {
        let spec = LawEnfSpec {
            people: 6,
            photos: 4,
            faces_per_photo: 3,
            near_dc_fraction: 1.0,
            employee_fraction: 1.0,
            seed: 11,
        };
        let world = build(&spec);
        let (view, _) = fixpoint(
            &world.db,
            &world.manager,
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        // Non-ground materialization: exactly one entry per clause.
        assert_eq!(view.len(), 3);
        let suspects = view
            .query(
                "suspect",
                &[Some(Value::str(&world.target)), None],
                &world.manager,
                &SolverConfig::default(),
            )
            .unwrap();
        // Everyone is near DC and employed; everyone except the target
        // who shares a photo with him is a suspect.
        assert!(!suspects.is_empty());
        assert!(suspects.iter().all(|t| t[1] != Value::str(&world.target)));
    }

    #[test]
    fn suspects_respect_employment_and_distance() {
        let spec = LawEnfSpec {
            people: 8,
            photos: 6,
            faces_per_photo: 4,
            near_dc_fraction: 0.0, // nobody near DC
            employee_fraction: 1.0,
            seed: 3,
        };
        let world = build(&spec);
        let (view, _) = fixpoint(
            &world.db,
            &world.manager,
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        let suspects = view
            .query(
                "suspect",
                &[Some(Value::str(&world.target)), None],
                &world.manager,
                &SolverConfig::default(),
            )
            .unwrap();
        assert!(suspects.is_empty(), "nobody lives near DC");
        // But seenwith pairs exist.
        let seen = view
            .query(
                "seenwith",
                &[Some(Value::str(&world.target)), None],
                &world.manager,
                &SolverConfig::default(),
            )
            .unwrap();
        assert!(!seen.is_empty());
    }

    #[test]
    fn photo_growth_enlarges_suspect_pool() {
        let spec = LawEnfSpec {
            people: 6,
            photos: 1,
            faces_per_photo: 2,
            near_dc_fraction: 1.0,
            employee_fraction: 1.0,
            seed: 5,
        };
        let world = build(&spec);
        let (view, _) = fixpoint(
            &world.db,
            &world.manager,
            Operator::Wp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        let before = view
            .query(
                "seenwith",
                &[Some(Value::str(&world.target)), None],
                &world.manager,
                &SolverConfig::default(),
            )
            .unwrap()
            .len();
        // Add a photo with the target and two new companions.
        world.face.add_photo("surveillancedata", "imgX", &[1, 5, 6]);
        let after = view
            .query(
                "seenwith",
                &[Some(Value::str(&world.target)), None],
                &world.manager,
                &SolverConfig::default(),
            )
            .unwrap()
            .len();
        assert!(after > before, "W_P view sees the new photo at query time");
    }
}
