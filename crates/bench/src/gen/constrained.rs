//! Constrained (non-ground) workload generators: layered interval
//! programs whose views have controllable size, derivation depth and
//! sharing — the workload family for the deletion/insertion experiments
//! (E1, E3, E6).

use mmv_constraints::{CmpOp, Constraint, Term, Var};
use mmv_core::{BodyAtom, Clause, ConstrainedAtom, ConstrainedDatabase};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Specification of a layered interval program.
///
/// Layer 0 holds `preds_per_layer` predicates with `facts_per_pred`
/// interval facts each (`p(X) <- lo <= X <= hi`); every higher layer
/// derives each of its predicates from `body_atoms` predicates of the
/// layer below (same variable), so the view has
/// `layers × preds_per_layer × facts_per_pred^…` entries and derivation
/// height `layers`.
#[derive(Debug, Clone, Copy)]
pub struct LayeredSpec {
    /// Number of derived layers above the facts.
    pub layers: usize,
    /// Predicates per layer.
    pub preds_per_layer: usize,
    /// Interval facts per layer-0 predicate.
    pub facts_per_pred: usize,
    /// Width of each random interval.
    pub interval_width: i64,
    /// Value-space upper bound for interval starts.
    pub value_space: i64,
    /// Body atoms per derived clause (1 = chain, 2 = join).
    pub body_atoms: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LayeredSpec {
    fn default() -> Self {
        LayeredSpec {
            layers: 3,
            preds_per_layer: 4,
            facts_per_pred: 4,
            interval_width: 40,
            value_space: 1000,
            body_atoms: 1,
            seed: 1,
        }
    }
}

/// The name of predicate `j` in layer `k`.
pub fn pred_name(layer: usize, j: usize) -> String {
    format!("p{layer}_{j}")
}

/// Generates the layered program. Layer-0 facts are exactly the
/// intervals of [`fact_intervals`] (the single source of truth, so
/// update generators like [`effective_deletion`] can never desync from
/// the program).
pub fn layered_program(spec: &LayeredSpec) -> ConstrainedDatabase {
    assert!(spec.preds_per_layer >= 1 && spec.body_atoms >= 1);
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let x = Term::var(Var(0));
    let mut db = ConstrainedDatabase::new();
    for (pred, lo, hi) in fact_intervals(spec) {
        db.push(Clause::fact(
            &pred,
            vec![x.clone()],
            Constraint::cmp(x.clone(), CmpOp::Ge, Term::int(lo)).and(Constraint::cmp(
                x.clone(),
                CmpOp::Le,
                Term::int(hi),
            )),
        ));
        // Keep this RNG's stream identical to the pre-fact_intervals
        // layout: the fact loop used to draw one value per fact, and the
        // wiring draws below continue from that position.
        let _ = rng.gen_range(0..spec.value_space.max(1));
    }
    for layer in 1..=spec.layers {
        for j in 0..spec.preds_per_layer {
            let body: Vec<BodyAtom> = (0..spec.body_atoms)
                .map(|b| {
                    // First body atom below the same index keeps chains
                    // aligned; extra atoms pick random lower predicates.
                    let src = if b == 0 {
                        j
                    } else {
                        rng.gen_range(0..spec.preds_per_layer)
                    };
                    BodyAtom::new(&pred_name(layer - 1, src), vec![x.clone()])
                })
                .collect();
            db.push(Clause::new(
                &pred_name(layer, j),
                vec![x.clone()],
                Constraint::truth(),
                body,
            ));
        }
    }
    db
}

/// A random point-deletion request against a layer-0 predicate of the
/// spec (the update workload of E1). The point is uniform over the
/// value space, so it may or may not hit a fact interval.
pub fn random_deletion(spec: &LayeredSpec, seed: u64) -> ConstrainedAtom {
    let mut rng = SmallRng::seed_from_u64(seed);
    let j = rng.gen_range(0..spec.preds_per_layer);
    let point = rng.gen_range(0..spec.value_space + spec.interval_width);
    let x = Term::var(Var(0));
    ConstrainedAtom::new(
        &pred_name(0, j),
        vec![x.clone()],
        Constraint::eq(x, Term::int(point)),
    )
}

/// The layer-0 fact intervals of the spec, in generation order:
/// `(predicate, lo, hi)`. [`layered_program`] builds its layer-0 fact
/// clauses from exactly this list.
pub fn fact_intervals(spec: &LayeredSpec) -> Vec<(String, i64, i64)> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut out = Vec::with_capacity(spec.preds_per_layer * spec.facts_per_pred);
    for j in 0..spec.preds_per_layer {
        for _ in 0..spec.facts_per_pred {
            let lo = rng.gen_range(0..spec.value_space.max(1));
            out.push((pred_name(0, j), lo, lo + spec.interval_width));
        }
    }
    out
}

/// A point-deletion request guaranteed to hit a layer-0 fact: the point
/// is drawn *inside* a random fact's interval, so the deletion always
/// produces a non-empty `Del` set (the batched-maintenance benchmarks
/// need every update to trigger a real maintenance pass).
pub fn effective_deletion(spec: &LayeredSpec, seed: u64) -> ConstrainedAtom {
    let intervals = fact_intervals(spec);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xde1e7e);
    let (pred, lo, hi) = &intervals[rng.gen_range(0..intervals.len())];
    let point = rng.gen_range(*lo..=*hi);
    let x = Term::var(Var(0));
    ConstrainedAtom::new(pred, vec![x.clone()], Constraint::eq(x, Term::int(point)))
}

/// A random small-interval insertion request against a layer-0 predicate
/// (the update workload of E3).
pub fn random_insertion(spec: &LayeredSpec, seed: u64, width: i64) -> ConstrainedAtom {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed);
    let j = rng.gen_range(0..spec.preds_per_layer);
    let lo = rng.gen_range(0..spec.value_space.max(1)) + 2 * spec.value_space;
    let x = Term::var(Var(0));
    ConstrainedAtom::new(
        &pred_name(0, j),
        vec![x.clone()],
        Constraint::cmp(x.clone(), CmpOp::Ge, Term::int(lo)).and(Constraint::cmp(
            x,
            CmpOp::Le,
            Term::int(lo + width),
        )),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmv_constraints::NoDomains;
    use mmv_core::{fixpoint, FixpointConfig, Operator, SupportMode};

    #[test]
    fn view_size_matches_structure() {
        let spec = LayeredSpec {
            layers: 2,
            preds_per_layer: 3,
            facts_per_pred: 2,
            body_atoms: 1,
            ..LayeredSpec::default()
        };
        let db = layered_program(&spec);
        let (view, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        // Chain shape: every layer mirrors layer 0's entries.
        assert_eq!(view.len(), 3 * 2 * (2 + 1));
    }

    #[test]
    fn join_shape_multiplies_derivations() {
        let spec = LayeredSpec {
            layers: 1,
            preds_per_layer: 2,
            facts_per_pred: 2,
            body_atoms: 2,
            interval_width: 2000, // wide: joins stay solvable
            ..LayeredSpec::default()
        };
        let db = layered_program(&spec);
        let (view, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &FixpointConfig::default(),
        )
        .unwrap();
        // 4 facts + per derived pred up to 2*2 joins.
        assert!(view.len() > 4, "view = {}", view.len());
    }

    #[test]
    fn deletion_requests_hit_layer_zero() {
        let spec = LayeredSpec::default();
        let d = random_deletion(&spec, 9);
        assert!(d.pred.starts_with("p0_"));
        let d2 = random_deletion(&spec, 9);
        assert_eq!(d.to_string(), d2.to_string());
    }

    #[test]
    fn effective_deletions_always_hit_a_fact() {
        // Cover the bench configurations (E1/E8 use 8–16 facts/pred),
        // not just the default spec.
        for facts_per_pred in [4, 8, 16] {
            let spec = LayeredSpec {
                facts_per_pred,
                ..LayeredSpec::default()
            };
            let intervals = fact_intervals(&spec);
            assert_eq!(intervals.len(), spec.preds_per_layer * spec.facts_per_pred);
            let db = layered_program(&spec);
            let (view, _) = fixpoint(
                &db,
                &NoDomains,
                Operator::Tp,
                SupportMode::WithSupports,
                &FixpointConfig::default(),
            )
            .unwrap();
            for seed in 0..16 {
                let d = effective_deletion(&spec, seed);
                let stats = mmv_core::stdel_delete(
                    &mut view.clone(),
                    &d,
                    &NoDomains,
                    &mmv_constraints::SolverConfig::default(),
                )
                .unwrap();
                assert!(
                    stats.direct_replacements > 0,
                    "deletion {d} (seed {seed}) hit nothing"
                );
            }
        }
    }

    #[test]
    fn insertions_target_fresh_space() {
        let spec = LayeredSpec::default();
        let ins = random_insertion(&spec, 3, 5);
        assert!(ins.pred.starts_with("p0_"));
    }
}
