//! Workload generators for the experiment suite.

pub mod constrained;
pub mod ground;
pub mod lawenf;
