//! E4 — External updates: the `W_P` zero-maintenance strategy vs `T_P`
//! recomputation (Section 4, Theorem 4, Corollary 1).
//!
//! Workload: a monitoring mediator over `N` sensors. Each round, one
//! sensor's readings change (an update of the second kind), then `q`
//! queries arrive. `T_P` pays a view rebuild per update; `W_P` pays
//! nothing on update but evaluates constraints at query time. The table
//! sweeps the query/update ratio to expose the crossover.
//!
//! Regenerate: `cargo run -p mmv-bench --release --bin e4_external`
#![forbid(unsafe_code)]

use mmv_bench::harness::{
    banner, fmt_duration, json_path_from_args, timed, JsonReport, JsonRow, Table,
};
use mmv_bench::sensors::{monitoring_db, SensorDomain};
use mmv_constraints::SolverConfig;
use mmv_core::{MaintenanceStrategy, MediatedMaterializedView};
use mmv_domains::DomainManager;
use std::sync::Arc;
use std::time::Duration;

fn run_scenario(
    n_sensors: usize,
    updates: usize,
    queries_per_update: usize,
    strategy: MaintenanceStrategy,
) -> (Duration, Duration) {
    let sensors = Arc::new(SensorDomain::new(n_sensors));
    let mut manager = DomainManager::new();
    manager.register(sensors.clone());
    let db = monitoring_db(n_sensors, 50);
    let cfg = mmv_core::FixpointConfig::default();
    let mut mv =
        MediatedMaterializedView::materialize(db, strategy, &manager, manager.clock(), cfg)
            .expect("materialize");
    let scfg = SolverConfig::default();
    let mut maintenance = Duration::ZERO;
    let mut query_time = Duration::ZERO;
    for round in 0..updates {
        // External update: one sensor starts alerting.
        sensors.set(round % n_sensors, vec![40 + (round as i64 % 30), 90]);
        let ((), dt) = timed(|| {
            mv.on_external_change(&manager, manager.clock())
                .expect("maintenance");
        });
        maintenance += dt;
        for q in 0..queries_per_update {
            let target = (round + q) % n_sensors;
            let (res, dt) = timed(|| {
                mv.query(&format!("alert{target}"), &[None], &manager, &scfg)
                    .expect("query")
            });
            query_time += dt;
            std::hint::black_box(res);
        }
    }
    (maintenance, query_time)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = json_path_from_args();
    let claim =
        "Theorem 4: W_P views need no action on external change; Corollary 1: answers stay exact";
    banner(
        "E4: external updates — W_P (no maintenance) vs T_P (recompute)",
        claim,
    );
    let mut report = JsonReport::new("E4", claim);
    let n_sensors = if quick { 50 } else { 200 };
    let updates = if quick { 10 } else { 50 };
    let ratios: Vec<usize> = if quick {
        vec![0, 10]
    } else {
        vec![0, 1, 10, 100, 400]
    };
    let mut table = Table::new(&[
        "queries/update",
        "T_P maint",
        "T_P query",
        "T_P total",
        "W_P maint",
        "W_P query",
        "W_P total",
        "winner",
    ]);
    for &q in &ratios {
        let (tp_m, tp_q) = run_scenario(n_sensors, updates, q, MaintenanceStrategy::TpRecompute);
        let (wp_m, wp_q) = run_scenario(n_sensors, updates, q, MaintenanceStrategy::WpDeferred);
        let tp_total = tp_m + tp_q;
        let wp_total = wp_m + wp_q;
        table.row(vec![
            q.to_string(),
            fmt_duration(tp_m),
            fmt_duration(tp_q),
            fmt_duration(tp_total),
            fmt_duration(wp_m),
            fmt_duration(wp_q),
            fmt_duration(wp_total),
            if wp_total <= tp_total { "W_P" } else { "T_P" }.to_string(),
        ]);
        report.push(
            JsonRow::new()
                .int("queries_per_update", q as i64)
                .secs("tp_maintenance_s", tp_m)
                .secs("tp_query_s", tp_q)
                .secs("wp_maintenance_s", wp_m)
                .secs("wp_query_s", wp_q)
                .str("winner", if wp_total <= tp_total { "W_P" } else { "T_P" }),
        );
    }
    table.print();
    report.write_if(&json);
    println!();
    println!(
        "expected shape: W_P maintenance is ~0 regardless of update rate \
         (the paper's 'no action whatsoever'); T_P amortizes only when \
         queries vastly outnumber updates — and even then the memoizing \
         domain cache keeps W_P competitive."
    );
}
