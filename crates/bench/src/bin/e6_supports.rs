//! E6 — Ablation: the cost of supports.
//!
//! StDel's "no rederivation" property is bought by attaching a
//! derivation index (support) to every view entry and keeping duplicate
//! derivations as separate entries. This ablation measures what that
//! costs at materialization time — build latency, entry count, and
//! retained structure sizes — against the duplicate-free `Plain` mode
//! that Extended DRed uses.
//!
//! Regenerate: `cargo run -p mmv-bench --release --bin e6_supports`
#![forbid(unsafe_code)]

use mmv_bench::gen::constrained::{layered_program, LayeredSpec};
use mmv_bench::harness::{
    banner, fmt_duration, json_path_from_args, median_time, JsonReport, JsonRow, Table,
};
use mmv_constraints::NoDomains;
use mmv_core::{fixpoint, FixpointConfig, Operator, SupportMode};

/// Counts support tree nodes reachable from an entry (shared subtrees
/// counted once per entry, mirroring the arc-sharing of the store).
fn support_nodes(view: &mmv_core::MaterializedView) -> usize {
    fn walk(s: &mmv_core::Support) -> usize {
        1 + s.children().iter().map(walk).sum::<usize>()
    }
    view.live_entries()
        .filter_map(|(_, e)| e.support.as_ref())
        .map(walk)
        .sum()
}

/// Total literal count across live entry constraints.
fn literal_volume(view: &mmv_core::MaterializedView) -> usize {
    view.live_entries()
        .map(|(_, e)| e.atom.constraint.lits.len())
        .sum()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = json_path_from_args();
    let claim = "supports fund StDel's no-rederivation deletion; this is their build-time price";
    banner(
        "E6: support overhead ablation — WithSupports vs Plain",
        claim,
    );
    let mut report = JsonReport::new("E6", claim);
    let sweeps: Vec<(usize, usize, usize)> = if quick {
        vec![(2, 4, 1), (3, 8, 1)]
    } else {
        vec![(2, 4, 1), (3, 8, 1), (4, 16, 1), (2, 4, 2), (3, 6, 2)]
    };
    let runs = if quick { 3 } else { 5 };
    let mut table = Table::new(&[
        "layers",
        "facts",
        "body",
        "build w/ supports",
        "build plain",
        "entries w/",
        "entries plain",
        "spt nodes",
        "lits w/",
        "lits plain",
    ]);
    for (layers, facts, body_atoms) in sweeps {
        let spec = LayeredSpec {
            layers,
            preds_per_layer: 4,
            facts_per_pred: facts,
            body_atoms,
            interval_width: 400, // generous overlap so joins survive
            ..LayeredSpec::default()
        };
        let db = layered_program(&spec);
        let cfg = FixpointConfig::default();
        let t_with = median_time(1, runs, || {
            fixpoint(
                &db,
                &NoDomains,
                Operator::Tp,
                SupportMode::WithSupports,
                &cfg,
            )
            .expect("fixpoint");
        });
        let t_plain = median_time(1, runs, || {
            fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg).expect("fixpoint");
        });
        let (vw, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &cfg,
        )
        .unwrap();
        let (vp, _) = fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg).unwrap();
        table.row(vec![
            layers.to_string(),
            facts.to_string(),
            body_atoms.to_string(),
            fmt_duration(t_with),
            fmt_duration(t_plain),
            vw.len().to_string(),
            vp.len().to_string(),
            support_nodes(&vw).to_string(),
            literal_volume(&vw).to_string(),
            literal_volume(&vp).to_string(),
        ]);
        report.push(
            JsonRow::new()
                .int("layers", layers as i64)
                .int("facts_per_pred", facts as i64)
                .int("body_atoms", body_atoms as i64)
                .secs("build_with_supports_s", t_with)
                .secs("build_plain_s", t_plain)
                .int("entries_with_supports", vw.len() as i64)
                .int("entries_plain", vp.len() as i64)
                .int("support_nodes", support_nodes(&vw) as i64)
                .int("literals_with_supports", literal_volume(&vw) as i64)
                .int("literals_plain", literal_volume(&vp) as i64),
        );
    }
    table.print();
    report.write_if(&json);
    println!();
    println!(
        "expected shape: support mode keeps duplicate derivations \
         (entries w/ >= entries plain) and pays the support-tree memory; \
         build times stay comparable because semi-naive dedup is \
         O(1)/derivation via support hashing."
    );
}
