//! E7 — The law-enforcement mediator end-to-end (Example 1 / Figure 1):
//! surveillance data grows, and the suspect view must keep up.
//!
//! Paper claim (§3 "External Data Changes" + §4): modelling local-database
//! changes as function updates lets `W_P` maintain the mediated view with
//! no action, while `T_P` recomputes. This experiment drives the full
//! five-domain mediator: each round adds surveillance photos and then
//! runs the paper's headline query ("who are Don's suspects?").
//!
//! Regenerate: `cargo run -p mmv-bench --release --bin e7_lawenf`
#![forbid(unsafe_code)]

use mmv_bench::gen::lawenf::{build, LawEnfSpec};
use mmv_bench::harness::{
    banner, fmt_duration, json_path_from_args, timed, JsonReport, JsonRow, Table,
};
use mmv_constraints::{SolverConfig, Value};
use mmv_core::{FixpointConfig, MaintenanceStrategy, MediatedMaterializedView};
use std::time::Duration;

fn run(
    spec: &LawEnfSpec,
    rounds: usize,
    photos_per_round: usize,
    strategy: MaintenanceStrategy,
) -> (Duration, Duration, usize) {
    let world = build(spec);
    let cfg = FixpointConfig::default();
    let mut mv = MediatedMaterializedView::materialize(
        world.db.clone(),
        strategy,
        &world.manager,
        world.manager.clock(),
        cfg,
    )
    .expect("materialize");
    let scfg = SolverConfig {
        product_budget: 5_000_000,
        ..SolverConfig::default()
    };
    let mut maintenance = Duration::ZERO;
    let mut query_time = Duration::ZERO;
    let mut suspects = 0usize;
    for round in 0..rounds {
        for p in 0..photos_per_round {
            // New photos always show the target with one other person.
            let companion = 2 + ((round * photos_per_round + p) % (spec.people - 2)) as u64;
            world.face.add_photo(
                "surveillancedata",
                &format!("new_{round}_{p}"),
                &[1, companion],
            );
        }
        let ((), dt) = timed(|| {
            mv.on_external_change(&world.manager, world.manager.clock())
                .expect("maintenance");
        });
        maintenance += dt;
        let (res, dt) = timed(|| {
            mv.query(
                "suspect",
                &[Some(Value::str(&world.target)), None],
                &world.manager,
                &scfg,
            )
            .expect("query")
        });
        query_time += dt;
        suspects = res.len();
    }
    (maintenance, query_time, suspects)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = json_path_from_args();
    let claim =
        "photo-set growth = external function update; W_P maintains for free, T_P recomputes";
    banner(
        "E7: law-enforcement mediator under surveillance growth (Example 1)",
        claim,
    );
    let mut report = JsonReport::new("E7", claim);
    let spec = LawEnfSpec {
        people: if quick { 8 } else { 16 },
        photos: if quick { 4 } else { 10 },
        faces_per_photo: 3,
        near_dc_fraction: 0.75,
        employee_fraction: 0.75,
        seed: 0xE7,
    };
    let rounds = if quick { 3 } else { 8 };
    let mut table = Table::new(&[
        "strategy",
        "rounds",
        "photos/round",
        "maintenance",
        "query",
        "total",
        "final suspects",
    ]);
    for (name, strategy) in [
        ("T_P recompute", MaintenanceStrategy::TpRecompute),
        ("W_P deferred", MaintenanceStrategy::WpDeferred),
    ] {
        let (m, q, suspects) = run(&spec, rounds, 2, strategy);
        table.row(vec![
            name.to_string(),
            rounds.to_string(),
            "2".to_string(),
            fmt_duration(m),
            fmt_duration(q),
            fmt_duration(m + q),
            suspects.to_string(),
        ]);
        report.push(
            JsonRow::new()
                .str("strategy", name)
                .int("rounds", rounds as i64)
                .int("photos_per_round", 2)
                .secs("maintenance_s", m)
                .secs("query_s", q)
                .int("final_suspects", suspects as i64),
        );
    }
    table.print();
    report.write_if(&json);
    println!();
    println!(
        "expected shape: identical suspect counts (Corollary 1); W_P \
         maintenance ~0; query times comparable (both evaluate domain \
         calls at query time through the memo cache)."
    );
}
