//! E1 — Deletion maintenance: StDel vs Extended DRed vs full
//! recomputation.
//!
//! Paper claim (§3.1.2, Conclusion): "The important advantage of the new
//! algorithm is the elimination of the rederivation step" — StDel should
//! beat Extended DRed, and both should beat recomputation, with the gap
//! growing with view size and derivation depth.
//!
//! Regenerate: `cargo run -p mmv-bench --release --bin e1_deletion`
//! (add `--quick` for a reduced sweep, `--json <path>` for a
//! machine-readable report including view-build timings and join-engine
//! statistics).
#![forbid(unsafe_code)]

use mmv_bench::gen::constrained::{
    effective_deletion, layered_program, random_deletion, LayeredSpec,
};
use mmv_bench::harness::{
    banner, fmt_duration, json_path_from_args, median_time, time_batched_deletions, JsonReport,
    JsonRow, Table,
};
use mmv_constraints::NoDomains;
use mmv_core::delete_dred::rewrite_for_deletion;
use mmv_core::semantics::build_del;
use mmv_core::{dred_delete, fixpoint, stdel_delete, FixpointConfig, Operator, SupportMode};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = json_path_from_args();
    let claim = "StDel eliminates DRed's rederivation step (paper §3.1.2); both beat recomputation";
    banner(
        "E1: deletion latency — StDel vs Extended DRed vs recompute",
        claim,
    );
    let mut report = JsonReport::new("E1", claim);
    let sweeps: Vec<(usize, usize)> = if quick {
        vec![(2, 4), (3, 8)]
    } else {
        vec![(2, 4), (2, 8), (3, 8), (3, 16), (4, 16), (4, 32)]
    };
    let runs = if quick { 3 } else { 5 };
    let mut table = Table::new(&[
        "layers",
        "facts/pred",
        "view entries",
        "build",
        "StDel",
        "ExtDRed",
        "recompute",
        "DRed/StDel",
        "recomp/StDel",
    ]);
    for (layers, facts) in sweeps {
        let spec = LayeredSpec {
            layers,
            preds_per_layer: 4,
            facts_per_pred: facts,
            body_atoms: 1,
            ..LayeredSpec::default()
        };
        let db = layered_program(&spec);
        let cfg = FixpointConfig::default();
        let (with_supports, build_stats) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &cfg,
        )
        .expect("fixpoint");
        let (plain, _) =
            fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg).expect("fixpoint");
        let t_build = median_time(1, runs, || {
            fixpoint(
                &db,
                &NoDomains,
                Operator::Tp,
                SupportMode::WithSupports,
                &cfg,
            )
            .expect("fixpoint");
        });
        let deletion = random_deletion(&spec, 0xE1);

        let t_stdel = median_time(1, runs, || {
            let mut v = with_supports.clone();
            stdel_delete(&mut v, &deletion, &NoDomains, &cfg.solver).expect("stdel");
        });
        let t_dred = median_time(1, runs, || {
            let mut v = plain.clone();
            dred_delete(&db, &mut v, &deletion, &NoDomains, &cfg).expect("dred");
        });
        let t_recompute = median_time(1, runs, || {
            let mut v = plain.clone();
            let del = build_del(&mut v, &deletion, &NoDomains, &cfg);
            let pprime = rewrite_for_deletion(&db, &del);
            fixpoint(&pprime, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg)
                .expect("recompute");
        });
        table.row(vec![
            layers.to_string(),
            facts.to_string(),
            with_supports.len().to_string(),
            fmt_duration(t_build),
            fmt_duration(t_stdel),
            fmt_duration(t_dred),
            fmt_duration(t_recompute),
            format!(
                "{:.2}x",
                t_dred.as_secs_f64() / t_stdel.as_secs_f64().max(1e-9)
            ),
            format!(
                "{:.2}x",
                t_recompute.as_secs_f64() / t_stdel.as_secs_f64().max(1e-9)
            ),
        ]);
        report.push(
            JsonRow::new()
                .int("layers", layers as i64)
                .int("facts_per_pred", facts as i64)
                .int("view_entries", with_supports.len() as i64)
                .secs("build_s", t_build)
                .secs("stdel_s", t_stdel)
                .secs("dred_s", t_dred)
                .secs("recompute_s", t_recompute)
                .int(
                    "build_derivations_tried",
                    build_stats.derivations_tried as i64,
                )
                .int("build_index_probes", build_stats.index_probes as i64)
                .int(
                    "build_candidates_scanned",
                    build_stats.candidates_scanned as i64,
                ),
        );
    }
    table.print();

    // ---- Multi-update sweep: batched vs sequential maintenance ----------
    // k effective deletions (each guaranteed to hit a fact) applied as
    // one UpdateBatch-style set versus one at a time; ops/sec is the
    // update throughput of the batched pass.
    println!();
    println!("multi-update sweep (batch entry points vs k sequential runs):");
    let spec = LayeredSpec {
        layers: 3,
        preds_per_layer: 4,
        facts_per_pred: if quick { 8 } else { 16 },
        body_atoms: 1,
        ..LayeredSpec::default()
    };
    let db = layered_program(&spec);
    let cfg = FixpointConfig::default();
    let (with_supports, _) = fixpoint(
        &db,
        &NoDomains,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg,
    )
    .expect("fixpoint");
    let (plain, _) =
        fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg).expect("fixpoint");
    let ks: Vec<usize> = if quick { vec![4] } else { vec![4, 8, 16] };
    let mut batch_table = Table::new(&[
        "k",
        "StDel batch",
        "StDel seq",
        "StDel ops/s",
        "DRed batch",
        "DRed seq",
        "DRed ops/s",
    ]);
    for &k in &ks {
        let deletions: Vec<_> = (0..k)
            .map(|i| effective_deletion(&spec, 0xE1BA + i as u64))
            .collect();
        let t = time_batched_deletions(
            &db,
            &with_supports,
            &plain,
            &deletions,
            &NoDomains,
            &cfg,
            runs,
        );
        batch_table.row(vec![
            k.to_string(),
            fmt_duration(t.stdel_batch),
            fmt_duration(t.stdel_sequential),
            format!("{:.0}", t.stdel_ops_per_sec(k)),
            fmt_duration(t.dred_batch),
            fmt_duration(t.dred_sequential),
            format!("{:.0}", t.dred_ops_per_sec(k)),
        ]);
        report.push(
            JsonRow::new()
                .str("section", "batched_updates")
                .int("batch_size", k as i64)
                .int("view_entries", with_supports.len() as i64)
                .secs("stdel_batch_s", t.stdel_batch)
                .secs("stdel_sequential_s", t.stdel_sequential)
                .float("stdel_batch_ops_per_sec", t.stdel_ops_per_sec(k))
                .secs("dred_batch_s", t.dred_batch)
                .secs("dred_sequential_s", t.dred_sequential)
                .float("dred_batch_ops_per_sec", t.dred_ops_per_sec(k)),
        );
    }
    batch_table.print();

    report.write_if(&json);
    println!();
    println!(
        "expected shape: StDel fastest; ratios grow with layers/facts \
         (the rederivation and recomputation joins scale with the view); \
         batched k-update maintenance beats k sequential runs."
    );
}
