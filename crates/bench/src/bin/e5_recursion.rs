//! E5 — Recursive views: StDel works where the counting algorithm fails.
//!
//! Paper claim (§3.1.2 discussion + Conclusion): the counting method of
//! \[21\] "can lead to infinite counts" on recursive views and is rejected
//! here at construction; StDel handles recursion (Example 6), and its
//! result agrees with ground DRed and full recomputation.
//!
//! Workload: transitive closure over *acyclic* random graphs (so
//! duplicate-derivation supports stay finite), deleting one edge.
//!
//! Regenerate: `cargo run -p mmv-bench --release --bin e5_recursion`
//! (add `--quick` for a reduced sweep, `--json <path>` for a
//! machine-readable report including view-build timings).
#![forbid(unsafe_code)]

use mmv_bench::gen::ground::{ground_to_constrained, tc_program, GraphSpec};
use mmv_bench::harness::{
    banner, fmt_duration, json_path_from_args, median_time, JsonReport, JsonRow, Table,
};
use mmv_constraints::{NoDomains, Value};
use mmv_core::{fixpoint, stdel_delete, FixpointConfig, Operator, SupportMode};
use mmv_datalog::{evaluate, CountingEngine, Fact};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random DAG edges: only i -> j with i < j.
fn dag_edges(spec: &GraphSpec) -> Vec<(i64, i64)> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    // A backbone chain keeps the closure deep.
    for i in 0..spec.nodes as i64 - 1 {
        seen.insert((i, i + 1));
        out.push((i, i + 1));
    }
    while out.len() < spec.edges {
        let a = rng.gen_range(0..spec.nodes - 1);
        let b = rng.gen_range(a + 1..spec.nodes);
        let e = (a as i64, b as i64);
        if seen.insert(e) {
            out.push(e);
        }
    }
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = json_path_from_args();
    let claim =
        "counting has infinite counts on recursion (paper §3.1.2); StDel handles recursive views";
    banner(
        "E5: recursive views — StDel vs counting (inapplicable) vs ground DRed",
        claim,
    );
    let mut report = JsonReport::new("E5", claim);
    let sweeps: Vec<usize> = if quick { vec![12] } else { vec![12, 18, 24] };
    let runs = if quick { 3 } else { 5 };
    let mut table = Table::new(&[
        "nodes",
        "edges",
        "tc facts",
        "counting",
        "build",
        "StDel",
        "ground DRed",
        "agree",
    ]);
    for nodes in sweeps {
        let spec = GraphSpec {
            nodes,
            edges: nodes + nodes / 3,
            seed: 0xE5,
        };
        let edges = dag_edges(&spec);
        let program = tc_program(&edges);

        // Counting: rejected at construction (predicate-level recursion).
        let counting_outcome = match CountingEngine::new(program.clone()) {
            Ok(_) => "UNEXPECTEDLY OK".to_string(),
            Err(e) => format!("rejected ({})", e.predicate),
        };

        let materialized = evaluate(&program);
        let victim_edge = edges[nodes / 2];
        let victim = Fact::new(
            "edge",
            vec![Value::Int(victim_edge.0), Value::Int(victim_edge.1)],
        );

        let t_ground_dred = median_time(1, runs, || {
            mmv_datalog::apply_update(&program, &materialized, std::slice::from_ref(&victim), &[]);
        });

        let cdb = ground_to_constrained(&program);
        let cfg = FixpointConfig {
            max_entries: 4_000_000,
            ..FixpointConfig::default()
        };
        let (view, build_stats) = fixpoint(
            &cdb,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &cfg,
        )
        .expect("fixpoint (finite derivations on a DAG)");
        let t_build = median_time(if quick { 0 } else { 1 }, runs, || {
            fixpoint(
                &cdb,
                &NoDomains,
                Operator::Tp,
                SupportMode::WithSupports,
                &cfg,
            )
            .expect("fixpoint");
        });
        let deletion = mmv_core::ConstrainedAtom::fact(
            "edge",
            vec![Value::Int(victim_edge.0), Value::Int(victim_edge.1)],
        );
        let t_stdel = median_time(1, runs, || {
            let mut v = view.clone();
            stdel_delete(&mut v, &deletion, &NoDomains, &cfg.solver).expect("stdel");
        });

        // Cross-check: StDel == ground DRed == recompute.
        let agree = {
            let (ground_after, _) = mmv_datalog::apply_update(
                &program,
                &materialized,
                std::slice::from_ref(&victim),
                &[],
            );
            let mut v = view.clone();
            stdel_delete(&mut v, &deletion, &NoDomains, &cfg.solver).expect("stdel");
            let ci = v.instances(&NoDomains, &cfg.solver).expect("instances");
            let gset: std::collections::BTreeSet<(String, Vec<Value>)> = ground_after
                .facts()
                .map(|f| (f.pred.to_string(), f.args))
                .collect();
            let cset: std::collections::BTreeSet<(String, Vec<Value>)> =
                ci.into_iter().map(|(p, t)| (p.to_string(), t)).collect();
            gset == cset
        };

        let tc_count = materialized
            .facts()
            .filter(|f| f.pred.as_ref() == "tc")
            .count();
        table.row(vec![
            nodes.to_string(),
            edges.len().to_string(),
            tc_count.to_string(),
            counting_outcome.clone(),
            fmt_duration(t_build),
            fmt_duration(t_stdel),
            fmt_duration(t_ground_dred),
            if agree { "yes" } else { "NO" }.to_string(),
        ]);
        report.push(
            JsonRow::new()
                .int("nodes", nodes as i64)
                .int("edges", edges.len() as i64)
                .int("tc_facts", tc_count as i64)
                .str("counting", &counting_outcome)
                .secs("build_s", t_build)
                .secs("stdel_s", t_stdel)
                .secs("ground_dred_s", t_ground_dred)
                .bool("agree", agree)
                .int("view_entries", view.len() as i64)
                .int(
                    "build_derivations_tried",
                    build_stats.derivations_tried as i64,
                )
                .int("build_index_probes", build_stats.index_probes as i64)
                .int(
                    "build_candidates_scanned",
                    build_stats.candidates_scanned as i64,
                ),
        );
        assert!(agree, "StDel must agree with ground DRed");
    }
    table.print();
    report.write_if(&json);
    println!();
    println!(
        "expected shape: counting is rejected on every recursive input; \
         StDel completes and matches ground DRed exactly. (StDel pays for \
         duplicate-derivation supports — the memory side is E6.)"
    );
}
