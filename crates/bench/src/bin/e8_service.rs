//! E8 — The concurrent view service: snapshot reads under writer load,
//! and batched vs sequential maintenance.
//!
//! Claims under test:
//!
//! 1. **Snapshot isolation scales reads.** N reader threads sustain
//!    lock-free snapshot queries while a writer applies batched update
//!    transactions; every observed epoch is monotone and every snapshot
//!    is consistent (readers never block on maintenance).
//! 2. **Batching amortizes maintenance.** Applying a k-atom batch in
//!    one maintenance pass is measurably cheaper than k single-atom
//!    passes on the E1 layered workload, for both StDel and Extended
//!    DRed (the batch seeds the deletion frontier once and runs a
//!    single rederivation fixpoint).
//! 3. **Publication is O(touched), not O(view).** Under the persistent
//!    shared store, publishing an epoch after a small batch costs
//!    roughly the same no matter how large the view is (`publish_micros`
//!    stays flat across view sizes, and stays orders of magnitude below
//!    the deep per-entry rebuild the writer used to pay), with most
//!    store pages physically shared rather than copied.
//! 4. **Sharding scales maintenance on independent predicates.** With
//!    per-predicate writer lanes, a batch pays only for its own shard:
//!    its lane's clauses drive the rederivation loops and its lane's
//!    (smaller) view seeds them, and disjoint batches don't contend on
//!    one writer lock. Maintenance throughput on an
//!    independent-component workload grows with the lane count even
//!    single-threaded (the per-batch `O(view)` rederivation seed and
//!    `O(clauses)` round scans shrink per lane) — the sweep reports
//!    1/2/4 lanes with reads/sec, batch latency and the cross-shard
//!    fraction.
//! 5. **Intra-lane parallelism and sub-page CoW lift the skewed
//!    floor.** One hot dependency component runs its fixpoint rounds
//!    on the shared work-stealing pool (part 8 sweeps pool widths 1
//!    through 8, plus a 90%-hot skewed workload at 4 lanes), and a
//!    touched predicate's `by_const` index copies O(touched keys)
//!    per epoch instead of O(index) — `by_const_keys_copied_mean`
//!    stays far below the whole-index key count at 1024 entries. The
//!    report records `host_cores`: on a single-core host the pool
//!    rows measure overhead honestly rather than speedup.
//! 6. **Durability is cheap under group commit.** With the update log
//!    on a write-ahead log, every batch blocks until its frame is
//!    durable — yet concurrent writers share one fsync (group commit),
//!    so durable throughput stays within a small factor of in-memory
//!    (and `FsyncPolicy::Never`, page-cache durability, tracks it
//!    closely). Cold recovery replays the full WAL back to the exact
//!    served state, and a checkpoint of the recovered view is cut and
//!    timed.
//!
//! Regenerate: `cargo run -p mmv-bench --release --bin e8_service`
//! (add `--quick` for a reduced sweep, `--json <path>` for the
//! machine-readable report committed as `BENCH_E8.json`).
#![forbid(unsafe_code)]

use mmv_bench::gen::constrained::{
    effective_deletion, fact_intervals, layered_program, pred_name, LayeredSpec,
};
use mmv_bench::harness::{
    banner, fmt_duration, json_path_from_args, median_time, time_batched_deletions, JsonReport,
    JsonRow, Table,
};
use mmv_constraints::solver::SolverConfig;
use mmv_constraints::{Constraint, NoDomains, Term, Value, Var};
use mmv_core::batch::UpdateBatch;
use mmv_core::tp::{fixpoint, FixpointConfig, Operator};
use mmv_core::{BodyAtom, Clause, ConstrainedAtom, ConstrainedDatabase, ShardSpec, SupportMode};
use mmv_service::{
    validate_prometheus, Durability, Fault, FaultPlan, FaultVfs, FsyncPolicy, ObsOptions, OpSel,
    ServiceError, ServiceHealth, ServiceWorker, Stage, StdVfs, StorageOp, Vfs, ViewService,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = json_path_from_args();
    let claim = "snapshot readers sustain throughput under writer batches; \
                 a k-atom batch beats k sequential updates";
    banner(
        "E8: concurrent view service — readers vs batched writer",
        claim,
    );
    let mut report = JsonReport::new("E8", claim);

    let spec = LayeredSpec {
        layers: 3,
        preds_per_layer: 4,
        facts_per_pred: if quick { 8 } else { 16 },
        body_atoms: 1,
        ..LayeredSpec::default()
    };
    let db = layered_program(&spec);
    let cfg = FixpointConfig::default();

    // ---- Part 1: N readers racing the batched writer --------------------
    let readers = 4usize;
    let n_batches = if quick { 8 } else { 32 };
    let batch_size = 4usize;
    let service = Arc::new(
        ViewService::builder()
            .fixpoint(cfg.clone())
            .build(db.clone())
            .expect("service builds"),
    );
    println!(
        "view: {} entries ({} layers x {} preds x {} facts)",
        service.snapshot().len(),
        spec.layers,
        spec.preds_per_layer,
        spec.facts_per_pred
    );

    // Readers run until the writer is done *and* they have observed the
    // final epoch — so every reader provably follows the whole epoch
    // sequence, even if the scheduler starves it during the write burst.
    let stop = Arc::new(AtomicBool::new(false));
    let final_epoch = n_batches as u64;
    let reader_handles: Vec<_> = (0..readers)
        .map(|r| {
            let service = service.clone();
            let stop = stop.clone();
            let top = pred_name(spec.layers, r % spec.preds_per_layer);
            let space = spec.value_space + spec.interval_width;
            std::thread::spawn(move || {
                let cfg = SolverConfig::default();
                let mut reads = 0u64;
                let mut last_epoch = 0u64;
                loop {
                    let snap = service.snapshot();
                    assert!(snap.epoch() >= last_epoch, "epoch regression");
                    last_epoch = snap.epoch();
                    let p = Value::int((reads as i64 * 37 + r as i64 * 11) % space);
                    snap.ask(&top, &[p], &NoDomains, &cfg)
                        .expect("snapshot read");
                    reads += 1;
                    // order: stop flag only; readers re-check, no data is published through it
                    if stop.load(Ordering::Relaxed) && last_epoch >= final_epoch {
                        return (reads, last_epoch);
                    }
                }
            })
        })
        .collect();

    let (tx, worker) = ServiceWorker::spawn(service.clone());
    let bench_start = Instant::now();
    for b in 0..n_batches {
        let deletes = (0..batch_size)
            .map(|i| effective_deletion(&spec, 0xE8 + (b * batch_size + i) as u64))
            .collect();
        tx.submit(UpdateBatch::deleting(deletes)).expect("submit");
    }
    drop(tx);
    let applied = worker.join().expect("worker drains");
    let write_elapsed = bench_start.elapsed();
    stop.store(true, Ordering::Relaxed); // order: stop flag only; the join below is the real synchronization

    let mut total_reads = 0u64;
    let mut min_final_epoch = u64::MAX;
    for h in reader_handles {
        let (reads, epoch) = h.join().expect("reader");
        total_reads += reads;
        min_final_epoch = min_final_epoch.min(epoch);
    }
    let read_elapsed = bench_start.elapsed();
    let reads_per_sec = total_reads as f64 / read_elapsed.as_secs_f64();
    let log = service.log();
    let mut latencies: Vec<Duration> = log.records().iter().map(|r| r.latency).collect();
    latencies.sort();
    let batch_latency = latencies[latencies.len() / 2];
    assert_eq!(applied, n_batches, "all batches must apply");
    assert_eq!(service.epoch(), n_batches as u64, "one epoch per batch");

    let mut table = Table::new(&[
        "readers",
        "batches",
        "batch size",
        "total reads",
        "reads/sec",
        "median batch latency",
        "writer wall",
    ]);
    table.row(vec![
        readers.to_string(),
        n_batches.to_string(),
        batch_size.to_string(),
        total_reads.to_string(),
        format!("{reads_per_sec:.0}"),
        fmt_duration(batch_latency),
        fmt_duration(write_elapsed),
    ]);
    table.print();
    println!(
        "epoch checks: all reader epochs monotone; every reader observed the \
         final epoch ({min_final_epoch}/{n_batches})"
    );
    report.push(
        JsonRow::new()
            .str("section", "concurrent")
            .int("readers", readers as i64)
            .int("batches", n_batches as i64)
            .int("batch_size", batch_size as i64)
            .int("view_entries", service.snapshot().len() as i64)
            .int("total_reads", total_reads as i64)
            .float("reads_per_sec", reads_per_sec)
            .secs("median_batch_latency_s", batch_latency)
            .secs("writer_wall_s", write_elapsed)
            .bool("epochs_monotone", true),
    );

    // ---- Part 2: k-atom batch vs k sequential single-atom updates --------
    println!();
    let (with_supports, _) = fixpoint(
        &db,
        &NoDomains,
        Operator::Tp,
        SupportMode::WithSupports,
        &cfg,
    )
    .expect("fixpoint");
    let (plain, _) =
        fixpoint(&db, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg).expect("fixpoint");
    let runs = if quick { 3 } else { 15 };
    let batch_sizes: Vec<usize> = if quick { vec![4] } else { vec![4, 8, 16] };
    let mut table = Table::new(&[
        "k",
        "StDel batch",
        "StDel seq",
        "seq/batch",
        "DRed batch",
        "DRed seq",
        "seq/batch",
    ]);
    for &k in &batch_sizes {
        let deletions: Vec<_> = (0..k)
            .map(|i| effective_deletion(&spec, 0xE8BA + i as u64))
            .collect();
        let t = time_batched_deletions(
            &db,
            &with_supports,
            &plain,
            &deletions,
            &NoDomains,
            &cfg,
            runs,
        );
        table.row(vec![
            k.to_string(),
            fmt_duration(t.stdel_batch),
            fmt_duration(t.stdel_sequential),
            format!("{:.2}x", t.stdel_ratio()),
            fmt_duration(t.dred_batch),
            fmt_duration(t.dred_sequential),
            format!("{:.2}x", t.dred_ratio()),
        ]);
        report.push(
            JsonRow::new()
                .str("section", "batch_vs_sequential")
                .int("batch_size", k as i64)
                .int("view_entries", with_supports.len() as i64)
                .secs("stdel_batch_s", t.stdel_batch)
                .secs("stdel_sequential_s", t.stdel_sequential)
                .float("stdel_seq_over_batch", t.stdel_ratio())
                .float("stdel_batch_ops_per_sec", t.stdel_ops_per_sec(k))
                .secs("dred_batch_s", t.dred_batch)
                .secs("dred_sequential_s", t.dred_sequential)
                .float("dred_seq_over_batch", t.dred_ratio())
                .float("dred_batch_ops_per_sec", t.dred_ops_per_sec(k)),
        );
    }
    table.print();

    // ---- Part 3: publication cost vs view size ---------------------------
    // Fixed-size batches against growing views: under the shared store,
    // making an epoch visible is a handful of Arc bumps, so the publish
    // cost must not scale with the view. The deep per-entry rebuild
    // (`compact`) is reported alongside as the O(view) cost the writer
    // paid when publication cloned the whole view.
    println!();
    let pub_sizes: Vec<usize> = if quick { vec![4, 16] } else { vec![4, 16, 64] };
    let pub_batches = if quick { 6 } else { 16 };
    let mut table = Table::new(&[
        "facts/pred",
        "view entries",
        "publish (median)",
        "deep rebuild",
        "entry pages copied/total",
        "pred idx copied/total",
        "by_const keys copied/total",
    ]);
    for &facts in &pub_sizes {
        let spec = LayeredSpec {
            layers: 3,
            preds_per_layer: 4,
            facts_per_pred: facts,
            body_atoms: 1,
            ..LayeredSpec::default()
        };
        let db = layered_program(&spec);
        let service = ViewService::builder()
            .fixpoint(cfg.clone())
            .build(db)
            .expect("service builds");
        let view_entries = service.snapshot().len();
        let mut publishes: Vec<Duration> = Vec::new();
        let (mut pages_copied, mut preds_copied, mut keys_copied) = (0u64, 0u64, 0u64);
        let (mut pages_total, mut preds_total, mut keys_total) = (0usize, 0usize, 0usize);
        for b in 0..pub_batches {
            let deletes = (0..2)
                .map(|i| effective_deletion(&spec, 0xE8F0 + (b * 2 + i) as u64))
                .collect();
            let applied = service
                .apply(UpdateBatch::deleting(deletes))
                .expect("publication batch applies");
            publishes.push(applied.publish.publish_latency);
            pages_copied += applied.publish.entry_pages_copied;
            preds_copied += applied.publish.pred_indexes_copied;
            keys_copied += applied.publish.by_const_keys_copied;
            pages_total = applied.publish.entry_pages_total;
            preds_total = applied.publish.pred_indexes_total;
            keys_total = applied.publish.by_const_keys_total;
        }
        publishes.sort();
        let publish_median = publishes[publishes.len() / 2];
        let snap = service.snapshot();
        let deep = median_time(1, if quick { 3 } else { 7 }, || {
            std::hint::black_box(snap.merged_view());
        });
        let pages_copied_mean = pages_copied as f64 / pub_batches as f64;
        let preds_copied_mean = preds_copied as f64 / pub_batches as f64;
        let keys_copied_mean = keys_copied as f64 / pub_batches as f64;
        table.row(vec![
            facts.to_string(),
            view_entries.to_string(),
            fmt_duration(publish_median),
            fmt_duration(deep),
            format!("{pages_copied_mean:.1}/{pages_total}"),
            format!("{preds_copied_mean:.1}/{preds_total}"),
            format!("{keys_copied_mean:.1}/{keys_total}"),
        ]);
        report.push(
            JsonRow::new()
                .str("section", "publication")
                .int("facts_per_pred", facts as i64)
                .int("view_entries", view_entries as i64)
                .int("batches", pub_batches as i64)
                .int("batch_size", 2)
                .float("publish_micros", publish_median.as_secs_f64() * 1e6)
                .float("deep_rebuild_micros", deep.as_secs_f64() * 1e6)
                .float("entry_pages_copied_mean", pages_copied_mean)
                .int("entry_pages_total", pages_total as i64)
                .float("pred_indexes_copied_mean", preds_copied_mean)
                .int("pred_indexes_total", preds_total as i64)
                .float("by_const_keys_copied_mean", keys_copied_mean)
                .int("by_const_keys_total", keys_total as i64),
        );
    }
    table.print();

    // ---- Part 4: shard sweep — writer lanes on independent components ----
    // An independent-predicate workload (every chain its own dependency
    // component), identical batches per lane count; only the number of
    // writer lanes varies. Plain mode: Extended DRed's rederivation
    // seeds its delta with the whole lane view and scans the lane's
    // clause list per round, so the single lane pays O(total view +
    // all clauses) per batch where a lane pays only its shard's share —
    // sharding speeds maintenance up even on one core, and on many
    // cores the lanes additionally run in parallel.
    println!();
    let sweep_spec = LayeredSpec {
        layers: 2,
        preds_per_layer: if quick { 8 } else { 64 },
        facts_per_pred: if quick { 8 } else { 16 },
        body_atoms: 1, // chains: every top-level predicate index is its own component
        ..LayeredSpec::default()
    };
    let sweep_db = layered_program(&sweep_spec);
    let sweep_batches = build_sweep_batches(&sweep_spec, if quick { 24 } else { 96 });
    let writer_threads = 4usize;
    let mut table = Table::new(&[
        "lanes",
        "view entries",
        "batches",
        "cross-shard",
        "batches/sec",
        "median batch latency",
        "reads/sec",
        "speedup vs 1",
    ]);
    let mut baseline: Option<f64> = None;
    for lanes in [1usize, 2, 4, 8, 16] {
        let service = Arc::new(
            ViewService::builder()
                .mode(SupportMode::Plain)
                .fixpoint(cfg.clone())
                .shards(ShardSpec::at_most(lanes))
                .build(sweep_db.clone())
                .expect("sweep service builds"),
        );
        let view_entries = service.snapshot().len();
        let shards = service.shard_map().num_shards();

        let stop = Arc::new(AtomicBool::new(false));
        let reader_handles: Vec<_> = (0..2)
            .map(|r| {
                let service = service.clone();
                let stop = stop.clone();
                let top = pred_name(sweep_spec.layers, r % sweep_spec.preds_per_layer);
                let space = sweep_spec.value_space + sweep_spec.interval_width;
                std::thread::spawn(move || {
                    let cfg = SolverConfig::default();
                    let mut reads = 0u64;
                    // order: stop flag only; readers re-check, no data is published through it
                    while !stop.load(Ordering::Relaxed) {
                        let snap = service.snapshot();
                        let p = Value::int((reads as i64 * 37 + r as i64 * 11) % space);
                        snap.ask(&top, &[p], &NoDomains, &cfg).expect("sweep read");
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();

        // The same batch list every round, dealt round-robin to the
        // writer threads (single-shard batches of one component mostly
        // contend only on their own lane).
        let sweep_start = Instant::now();
        let writers: Vec<_> = (0..writer_threads)
            .map(|w| {
                let service = service.clone();
                let mine: Vec<UpdateBatch> = sweep_batches
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % writer_threads == w)
                    .map(|(_, b)| b.clone())
                    .collect();
                std::thread::spawn(move || {
                    for batch in mine {
                        service.apply(batch).expect("sweep batch applies");
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().expect("sweep writer");
        }
        let write_wall = sweep_start.elapsed();
        stop.store(true, Ordering::Relaxed); // order: stop flag only; the joins below are the real synchronization
        let total_reads: u64 = reader_handles
            .into_iter()
            .map(|h| h.join().expect("sweep reader"))
            .sum();

        let log = service.log();
        let mut latencies: Vec<Duration> = log.records().iter().map(|r| r.latency).collect();
        latencies.sort();
        let median_latency = latencies[latencies.len() / 2];
        let cross = log
            .records()
            .iter()
            .filter(|r| r.shards_touched >= 2)
            .count();
        let cross_fraction = cross as f64 / log.len() as f64;
        let batches_per_sec = sweep_batches.len() as f64 / write_wall.as_secs_f64();
        let reads_per_sec = total_reads as f64 / write_wall.as_secs_f64();
        let speedup = batches_per_sec / *baseline.get_or_insert(batches_per_sec);
        assert_eq!(service.epoch(), sweep_batches.len() as u64);

        table.row(vec![
            format!("{lanes} ({shards} shards)"),
            view_entries.to_string(),
            sweep_batches.len().to_string(),
            format!("{:.0}%", cross_fraction * 100.0),
            format!("{batches_per_sec:.0}"),
            fmt_duration(median_latency),
            format!("{reads_per_sec:.0}"),
            format!("{speedup:.2}x"),
        ]);
        report.push(
            JsonRow::new()
                .str("section", "shard_sweep")
                .int("lanes", lanes as i64)
                .int("shards", shards as i64)
                .int("view_entries", view_entries as i64)
                .int("batches", sweep_batches.len() as i64)
                .int("writer_threads", writer_threads as i64)
                .float("cross_shard_fraction", cross_fraction)
                .float("maintenance_batches_per_sec", batches_per_sec)
                .secs("median_batch_latency_s", median_latency)
                .float("reads_per_sec", reads_per_sec)
                .float("speedup_vs_single_lane", speedup),
        );
    }
    table.print();

    // ---- Part 5: durability — WAL group commit, checkpoint, recovery -----
    // The same multi-writer workload as the shard sweep, with the update
    // log (a) in memory, (b) on a WAL that is never fsynced (page cache
    // only — survives a process kill, not a power cut), and (c) on a WAL
    // with group-commit fsync: every batch blocks until its frame is
    // durable, but concurrent writers share one fsync. Afterwards the
    // group-commit directory is recovered cold (full-WAL replay, no
    // checkpoint) and a checkpoint is cut and timed.
    println!();
    let dur_dir_base = std::env::temp_dir().join(format!("mmv-e8-dur-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dur_dir_base);
    let run_writers = |service: &Arc<ViewService>| -> Duration {
        let start = Instant::now();
        let writers: Vec<_> = (0..writer_threads)
            .map(|w| {
                let service = service.clone();
                let mine: Vec<UpdateBatch> = sweep_batches
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % writer_threads == w)
                    .map(|(_, b)| b.clone())
                    .collect();
                std::thread::spawn(move || {
                    for batch in mine {
                        service.apply(batch).expect("durable batch applies");
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().expect("durable writer");
        }
        start.elapsed()
    };
    let dur_builder = || {
        ViewService::builder()
            .mode(SupportMode::Plain)
            .fixpoint(cfg.clone())
            .shards(ShardSpec::at_most(4))
    };
    let mut table = Table::new(&[
        "log",
        "batches/sec",
        "vs memory",
        "fsync batches",
        "fsyncs",
        "wal KiB",
    ]);
    // The whole workload runs in ~100–250ms, so single runs are noisy:
    // each config is measured over `DUR_ROUNDS` fresh services (fresh
    // WAL directories) and the *median* round is reported.
    const DUR_ROUNDS: usize = 3;
    let mut mem_rate = 0f64;
    let mut gc_dir = dur_dir_base.join("group-commit");
    for (label, dir_stub) in [
        ("in-memory", None),
        ("wal, fsync never", Some("never")),
        // No automatic checkpoints on the group-commit config: recovery
        // below replays the whole WAL, which is what we want to measure.
        ("wal, group commit", Some("group-commit")),
    ] {
        let mut rates = Vec::with_capacity(DUR_ROUNDS);
        let mut wal = None;
        for round in 0..DUR_ROUNDS {
            let mut builder = dur_builder();
            if let Some(stub) = dir_stub {
                let dir = dur_dir_base.join(format!("{stub}-{round}"));
                let d = match stub {
                    "never" => Durability::durable(&dir).fsync(FsyncPolicy::Never),
                    _ => Durability::durable(&dir).checkpoint_every(0),
                };
                if stub == "group-commit" {
                    gc_dir = dir;
                }
                builder = builder.durability(d);
            }
            let service = Arc::new(builder.build(sweep_db.clone()).expect("durable service"));
            let wall = run_writers(&service);
            assert_eq!(service.epoch(), sweep_batches.len() as u64);
            rates.push(sweep_batches.len() as f64 / wall.as_secs_f64());
            wal = service.wal_stats();
        }
        rates.sort_by(|a, b| a.total_cmp(b));
        let rate = rates[rates.len() / 2];
        if dir_stub.is_none() {
            mem_rate = rate;
        }
        table.row(vec![
            label.to_string(),
            format!("{rate:.0}"),
            format!("{:.2}x", rate / mem_rate),
            wal.map_or("-".into(), |w| w.fsync_batches.to_string()),
            wal.map_or("-".into(), |w| w.fsyncs.to_string()),
            wal.map_or("-".into(), |w| (w.bytes_written / 1024).to_string()),
        ]);
        report.push(
            JsonRow::new()
                .str("section", "durability")
                .str("log", label)
                .int("batches", sweep_batches.len() as i64)
                .int("writer_threads", writer_threads as i64)
                .int("rounds", DUR_ROUNDS as i64)
                .float("maintenance_batches_per_sec", rate)
                .float("throughput_vs_memory", rate / mem_rate)
                .int("fsync_batches", wal.map_or(0, |w| w.fsync_batches as i64))
                .int("fsyncs", wal.map_or(0, |w| w.fsyncs as i64))
                .int("wal_bytes", wal.map_or(0, |w| w.bytes_written as i64)),
        );
    }
    table.print();

    // Cold recovery of the group-commit directory: no checkpoint was
    // cut, so every batch replays through the ticketed maintenance
    // path; then a checkpoint of the recovered view is cut and timed.
    let rec_start = Instant::now();
    let (recovered, rec_report) = dur_builder()
        .durability(Durability::durable(&gc_dir).checkpoint_every(0))
        .recover(sweep_db.clone())
        .expect("recovery succeeds");
    let rec_wall = rec_start.elapsed();
    assert_eq!(rec_report.replayed_records, sweep_batches.len() as u64);
    assert_eq!(recovered.epoch(), sweep_batches.len() as u64);
    assert!(recovered.request_checkpoint(), "checkpointer accepts");
    let chk = loop {
        let stats = recovered.checkpoint_stats().expect("durable service");
        if stats.checkpoints > 0 || stats.failed > 0 {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(chk.failed, 0, "checkpoint write failed");
    println!(
        "recovery: replayed {} records ({} segments, torn tail: {}) in {}; \
         checkpoint of {} entries in {}",
        rec_report.replayed_records,
        rec_report.segments_scanned,
        rec_report.torn_tail,
        fmt_duration(rec_wall),
        chk.last_entries,
        fmt_duration(Duration::from_micros(chk.last_micros)),
    );
    report.push(
        JsonRow::new()
            .str("section", "recovery")
            .int(
                "recovery_replay_records",
                rec_report.replayed_records as i64,
            )
            .int("recovered_epoch", rec_report.recovered_epoch as i64)
            .int("segments_scanned", rec_report.segments_scanned as i64)
            .bool("torn_tail", rec_report.torn_tail)
            .secs("recovery_wall_s", rec_wall)
            .float("checkpoint_micros", chk.last_micros as f64)
            .int("checkpoint_entries", chk.last_entries as i64),
    );
    drop(recovered);
    let _ = std::fs::remove_dir_all(&dur_dir_base);

    // ---- Part 6: fault injection — Vfs gate overhead, degraded reads -----
    // (a) Every storage op now routes through an `Arc<dyn Vfs>`; the
    // sweep above already pays that (StdVfs). Here the same group-commit
    // workload additionally runs through a FaultVfs with an empty fault
    // plan — the full injection gate (op counting + plan lookup) on
    // every op — to price the instrumentation itself.
    println!();
    let fi_dir_base = std::env::temp_dir().join(format!("mmv-e8-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&fi_dir_base);
    let measure_vfs = |stub: &str, vfs: Option<Arc<dyn Vfs>>| -> f64 {
        let mut rates = Vec::with_capacity(DUR_ROUNDS);
        for round in 0..DUR_ROUNDS {
            let dir = fi_dir_base.join(format!("{stub}-{round}"));
            let mut d = Durability::durable(&dir).checkpoint_every(0);
            if let Some(v) = &vfs {
                d = d.vfs(v.clone());
            }
            let service = Arc::new(
                dur_builder()
                    .durability(d)
                    .build(sweep_db.clone())
                    .expect("fault-vfs service builds"),
            );
            let wall = run_writers(&service);
            assert_eq!(service.epoch(), sweep_batches.len() as u64);
            rates.push(sweep_batches.len() as f64 / wall.as_secs_f64());
        }
        rates.sort_by(|a, b| a.total_cmp(b));
        rates[rates.len() / 2]
    };
    let std_rate = measure_vfs("std", None);
    let fault_vfs = FaultVfs::new(Arc::new(StdVfs), FaultPlan::none());
    let gated_rate = measure_vfs("gated", Some(Arc::new(fault_vfs.clone())));
    println!(
        "vfs gate: group-commit sweep {std_rate:.0} batches/sec via StdVfs, \
         {gated_rate:.0} via FaultVfs (no faults) — {:.2}x, {} ops gated",
        gated_rate / std_rate,
        fault_vfs.stats().ops,
    );
    report.push(
        JsonRow::new()
            .str("section", "vfs_overhead")
            .int("batches", sweep_batches.len() as i64)
            .int("rounds", DUR_ROUNDS as i64)
            .float("stdvfs_batches_per_sec", std_rate)
            .float("faultvfs_batches_per_sec", gated_rate)
            .float("faultvfs_vs_stdvfs", gated_rate / std_rate)
            .int("ops_gated", fault_vfs.stats().ops as i64),
    );

    // (b) Degraded serving: a persistent append fault flips the service
    // read-only; readers keep hitting the last published composite
    // snapshot while writers are rejected without touching storage.
    let deg_dir = fi_dir_base.join("degraded");
    let acked_target = 4u64;
    // Append 0 is the segment header; data appends start at 1, so
    // append `acked_target + 1` is the first rejected batch's frame.
    let deg_vfs = FaultVfs::new(
        Arc::new(StdVfs),
        FaultPlan::none().script(
            OpSel::NthOfKind(StorageOp::Append, acked_target + 1),
            Fault::Enospc,
        ),
    );
    let service = Arc::new(
        dur_builder()
            .durability(
                Durability::durable(&deg_dir)
                    .fsync(FsyncPolicy::Always)
                    .checkpoint_every(0)
                    .vfs(Arc::new(deg_vfs.clone()))
                    .probe_interval(Duration::from_millis(5)),
            )
            .build(sweep_db.clone())
            .expect("degraded service builds"),
    );
    let mut batches = sweep_batches.iter().cloned();
    for _ in 0..acked_target {
        service
            .apply(batches.next().expect("enough sweep batches"))
            .expect("pre-fault batch applies");
    }
    let tripped = batches.next().expect("enough sweep batches");
    service
        .apply(tripped.clone())
        .expect_err("the faulted append rejects the batch");
    assert_eq!(service.health(), ServiceHealth::ReadOnly);
    assert_eq!(service.epoch(), acked_target);

    let window = Duration::from_millis(if quick { 100 } else { 300 });
    let (reads, rejects) = std::thread::scope(|s| {
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let service = service.clone();
                let top = pred_name(sweep_spec.layers, r % sweep_spec.preds_per_layer);
                let space = sweep_spec.value_space + sweep_spec.interval_width;
                s.spawn(move || {
                    let cfg = SolverConfig::default();
                    let mut reads = 0u64;
                    let end = Instant::now() + window;
                    while Instant::now() < end {
                        let snap = service.snapshot();
                        assert_eq!(snap.epoch(), acked_target, "read-only view is frozen");
                        let p = Value::int((reads as i64 * 37 + r as i64 * 11) % space);
                        snap.ask(&top, &[p], &NoDomains, &cfg)
                            .expect("degraded read");
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        let rejecter = {
            let service = service.clone();
            let batch = tripped.clone();
            s.spawn(move || {
                let mut rejects = 0u64;
                let end = Instant::now() + window;
                while Instant::now() < end {
                    match service.apply(batch.clone()) {
                        Err(ServiceError::ReadOnly) => rejects += 1,
                        other => panic!("read-only service accepted a write: {other:?}"),
                    }
                }
                rejects
            })
        };
        let reads: u64 = readers.into_iter().map(|h| h.join().expect("reader")).sum();
        (reads, rejecter.join().expect("rejecter"))
    });
    let degraded_reads_per_sec = reads as f64 / window.as_secs_f64();
    let writes_rejected_per_sec = rejects as f64 / window.as_secs_f64();

    // Heal the disk; the probe restores write service.
    deg_vfs.heal();
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.health() != ServiceHealth::Healthy {
        assert!(Instant::now() < deadline, "probe never healed the service");
        std::thread::sleep(Duration::from_millis(1));
    }
    let heal_start = Instant::now();
    service.apply(tripped).expect("post-heal batch commits");
    let post_heal_apply = heal_start.elapsed();
    println!(
        "degraded serving: {degraded_reads_per_sec:.0} reads/sec against the \
         frozen epoch-{acked_target} snapshot, {writes_rejected_per_sec:.0} \
         writes/sec rejected without storage I/O; post-heal apply {}",
        fmt_duration(post_heal_apply),
    );
    report.push(
        JsonRow::new()
            .str("section", "degraded")
            .int("acked_epochs", acked_target as i64)
            .secs("window_s", window)
            .float("degraded_reads_per_sec", degraded_reads_per_sec)
            .float("writes_rejected_per_sec", writes_rejected_per_sec)
            .secs("post_heal_apply_s", post_heal_apply),
    );
    drop(service);
    let _ = std::fs::remove_dir_all(&fi_dir_base);

    // ---- Part 7: observability — metrics overhead, per-stage profile -----
    // The group-commit sweep again, once with the metrics registry and
    // batch tracing on (the default) and once with observability
    // disabled (no stage clocks, no traces, no batch counters). The
    // instruments are relaxed atomics and a handful of `Instant::now`
    // calls per batch, so the instrumented run must stay within a few
    // percent of the dark one. The instrumented service then reports
    // its per-stage latency profile straight from the registry's
    // histograms, and `--prom <path>` dumps one Prometheus scrape of
    // the full registry for external format validation.
    println!();
    let obs_dir_base = std::env::temp_dir().join(format!("mmv-e8-obs-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&obs_dir_base);
    let measure_obs = |stub: &str, opts: ObsOptions| -> (f64, Arc<ViewService>) {
        let mut rates = Vec::with_capacity(DUR_ROUNDS);
        let mut last = None;
        for round in 0..DUR_ROUNDS {
            let dir = obs_dir_base.join(format!("{stub}-{round}"));
            // The instrumented run carries a 2-wide pool so the
            // `--prom` scrape below exposes the `mmv_pool_*` families
            // (both runs get it, keeping the overhead comparison fair).
            let service = Arc::new(
                dur_builder()
                    .durability(Durability::durable(&dir).checkpoint_every(0))
                    .observability(opts.clone())
                    .pool_threads(2)
                    .build(sweep_db.clone())
                    .expect("obs sweep service builds"),
            );
            let wall = run_writers(&service);
            assert_eq!(service.epoch(), sweep_batches.len() as u64);
            rates.push(sweep_batches.len() as f64 / wall.as_secs_f64());
            last = Some(service);
        }
        rates.sort_by(|a, b| a.total_cmp(b));
        (rates[rates.len() / 2], last.expect("DUR_ROUNDS > 0"))
    };
    let (instr_rate, instrumented) = measure_obs("on", ObsOptions::default());
    let (dark_rate, _) = measure_obs("off", ObsOptions::disabled());
    let overhead_fraction = 1.0 - instr_rate / dark_rate;
    println!(
        "metrics overhead: group-commit sweep {instr_rate:.0} batches/sec \
         instrumented, {dark_rate:.0} disabled — overhead {:.1}%",
        overhead_fraction * 100.0,
    );
    report.push(
        JsonRow::new()
            .str("section", "metrics_overhead")
            .int("batches", sweep_batches.len() as i64)
            .int("writer_threads", writer_threads as i64)
            .int("rounds", DUR_ROUNDS as i64)
            .float("instrumented_batches_per_sec", instr_rate)
            .float("disabled_batches_per_sec", dark_rate)
            .float("metrics_overhead_fraction", overhead_fraction),
    );

    // Per-stage latency profile of the last instrumented round, read
    // from the same histograms a scraper sees.
    let mut table = Table::new(&["stage", "batches", "p50", "p99", "max"]);
    for stage in Stage::ALL {
        let snap = instrumented.stage_timings(stage);
        if snap.count() == 0 {
            continue;
        }
        table.row(vec![
            stage.name().to_string(),
            snap.count().to_string(),
            fmt_duration(Duration::from_nanos(snap.quantile(0.5))),
            fmt_duration(Duration::from_nanos(snap.quantile(0.99))),
            fmt_duration(Duration::from_nanos(snap.max)),
        ]);
        report.push(
            JsonRow::new()
                .str("section", "stage_profile")
                .str("stage", stage.name())
                .int("batches", snap.count() as i64)
                .float("p50_micros", snap.quantile(0.5) as f64 / 1e3)
                .float("p99_micros", snap.quantile(0.99) as f64 / 1e3)
                .float("max_micros", snap.max as f64 / 1e3),
        );
    }
    table.print();
    let scrape = instrumented.metrics().render_prometheus();
    validate_prometheus(&scrape).expect("instrumented scrape parses");
    let traces = instrumented.recent_traces();
    assert!(!traces.is_empty(), "instrumented sweep left traces");
    if let Some(path) = prom_path_from_args() {
        std::fs::write(&path, &scrape).expect("write --prom scrape");
        println!("wrote prometheus scrape ({} bytes) to {path}", scrape.len());
    }
    drop(instrumented);
    let _ = std::fs::remove_dir_all(&obs_dir_base);

    // ---- Part 8: intra-lane parallelism — pool sweep, skew, sub-page CoW --
    // (a) One hot dependency component: lanes cannot help (the whole
    // workload is one shard), so the only parallelism available is the
    // work-stealing pool inside the lane's fixpoint rounds. The sweep
    // holds the workload fixed and varies only the pool width; the
    // `host_cores` key records how many cores the speedup had to work
    // with — on a single-core host the >1-thread rows honestly price
    // the pool's dealing/merge overhead instead of showing speedup.
    println!();
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Concentrated deletions carve the same fact intervals repeatedly
    // and per-entry constraint length grows with every absorbed point,
    // so the workload is kept at ~3 points per interval — dense enough
    // that the rederivation rounds dominate, small enough that solver
    // cost stays roughly flat across the sweep.
    let hot_spec = LayeredSpec {
        layers: 3,
        preds_per_layer: 1,
        facts_per_pred: if quick { 8 } else { 16 },
        body_atoms: 1,
        // A wide value space keeps the random fact intervals mostly
        // disjoint: overlapping intervals make every deleted point
        // carve several entries at once and the split cascade through
        // the derived layers grows entries (and per-entry constraint
        // length) explosively.
        value_space: 4000,
        ..LayeredSpec::default()
    };
    let hot_db = layered_program(&hot_spec);
    let hot_batches = build_sweep_batches(&hot_spec, if quick { 12 } else { 24 });
    let mut table = Table::new(&[
        "pool threads",
        "view entries",
        "batches/sec",
        "median batch latency",
        "speedup vs 1 thread",
    ]);
    let mut hot_baseline: Option<f64> = None;
    for threads in [1usize, 2, 4, 8] {
        let service = Arc::new(
            ViewService::builder()
                .mode(SupportMode::Plain)
                .fixpoint(cfg.clone())
                .pool_threads(threads)
                .build(hot_db.clone())
                .expect("hot-component service builds"),
        );
        assert_eq!(service.shard_map().num_shards(), 1, "one hot component");
        assert_eq!(service.pool().is_some(), threads > 1);
        let view_entries = service.snapshot().len();
        let start = Instant::now();
        for batch in &hot_batches {
            service.apply(batch.clone()).expect("hot batch applies");
        }
        let wall = start.elapsed();
        assert_eq!(service.epoch(), hot_batches.len() as u64);
        let log = service.log();
        let mut latencies: Vec<Duration> = log.records().iter().map(|r| r.latency).collect();
        latencies.sort();
        let median_latency = latencies[latencies.len() / 2];
        let rate = hot_batches.len() as f64 / wall.as_secs_f64();
        let speedup = rate / *hot_baseline.get_or_insert(rate);
        table.row(vec![
            threads.to_string(),
            view_entries.to_string(),
            format!("{rate:.0}"),
            fmt_duration(median_latency),
            format!("{speedup:.2}x"),
        ]);
        report.push(
            JsonRow::new()
                .str("section", "intra_lane_sweep")
                .int("pool_threads", threads as i64)
                .int("host_cores", host_cores as i64)
                .int("view_entries", view_entries as i64)
                .int("batches", hot_batches.len() as i64)
                .float("maintenance_batches_per_sec", rate)
                .secs("median_batch_latency_s", median_latency)
                .float("speedup_vs_single_thread", speedup),
        );
    }
    table.print();
    println!("host cores: {host_cores} (pool speedup is bounded by physical parallelism)");

    // (b) Skewed workload: 8 components behind 4 lanes, 90% of the
    // batches hitting component 0 — the regime where lane-level
    // sharding collapses to sequential speed and only intra-lane
    // parallelism can help the hot lane.
    let skew_spec = LayeredSpec {
        layers: 2,
        preds_per_layer: 8,
        facts_per_pred: if quick { 8 } else { 16 },
        body_atoms: 1,
        value_space: 4000,
        ..LayeredSpec::default()
    };
    let skew_db = layered_program(&skew_spec);
    let skew_batches = build_skewed_batches(&skew_spec, if quick { 10 } else { 30 });
    let mut skew_baseline: Option<f64> = None;
    for threads in [1usize, 4] {
        let service = Arc::new(
            ViewService::builder()
                .mode(SupportMode::Plain)
                .fixpoint(cfg.clone())
                .shards(ShardSpec::at_most(4))
                .pool_threads(threads)
                .build(skew_db.clone())
                .expect("skewed service builds"),
        );
        let start = Instant::now();
        for batch in &skew_batches {
            service.apply(batch.clone()).expect("skewed batch applies");
        }
        let wall = start.elapsed();
        assert_eq!(service.epoch(), skew_batches.len() as u64);
        let rate = skew_batches.len() as f64 / wall.as_secs_f64();
        let speedup = rate / *skew_baseline.get_or_insert(rate);
        println!(
            "skewed (90% hot, 4 lanes): pool {threads} -> {rate:.0} batches/sec \
             ({speedup:.2}x vs 1 thread)"
        );
        report.push(
            JsonRow::new()
                .str("section", "skewed_sweep")
                .int("pool_threads", threads as i64)
                .int("host_cores", host_cores as i64)
                .int("lanes", 4)
                .float("hot_fraction", 0.9)
                .int("batches", skew_batches.len() as i64)
                .float("maintenance_batches_per_sec", rate)
                .float("speedup_vs_single_thread", speedup),
        );
    }

    // (c) Sub-page CoW at a 1024-entry view: a constant-heavy workload
    // (`d(x) <- e(x)` over point facts, the shape the `by_const`
    // discrimination index exists for), measured per batch — key
    // copies must stay far below the whole-index key count, the
    // O(touched keys) vs O(index) claim where it matters. (The layered
    // interval workloads above barely populate `by_const`; their rows
    // carry the counters but cannot exercise the bound.)
    let x = Term::var(Var(0));
    let cow_db = ConstrainedDatabase::from_clauses(vec![Clause::new(
        "d",
        vec![x.clone()],
        Constraint::truth(),
        vec![BodyAtom::new("e", vec![x.clone()])],
    )]);
    let service = ViewService::builder()
        .fixpoint(cfg.clone())
        .build(cow_db)
        .expect("cow service builds");
    // Seed `e` with point facts in chunks: 1024 view entries total
    // (each fact derives one `d` instance).
    let base_facts = if quick { 128 } else { 512 };
    let point_fact = |v: i64| {
        ConstrainedAtom::new(
            "e",
            vec![x.clone()],
            Constraint::eq(x.clone(), Term::int(v)),
        )
    };
    for chunk in (0..base_facts).collect::<Vec<i64>>().chunks(64) {
        service
            .apply(UpdateBatch::inserting(
                chunk.iter().map(|&v| point_fact(v)).collect(),
            ))
            .expect("cow seed batch applies");
    }
    let view_entries = service.snapshot().len();
    let cow_batches: i64 = if quick { 6 } else { 16 };
    let (mut keys_copied, mut slots_copied) = (0u64, 0u64);
    let mut keys_total = 0usize;
    for b in 0..cow_batches {
        // Each batch touches two keys of the big index: delete one
        // seeded point, insert one fresh point.
        let applied = service
            .apply(
                UpdateBatch::inserting(vec![point_fact(base_facts + b)])
                    .delete(point_fact(b * 7 % base_facts)),
            )
            .expect("cow batch applies");
        keys_copied += applied.publish.by_const_keys_copied;
        slots_copied += applied.publish.slot_keys_copied;
        keys_total = applied.publish.by_const_keys_total;
    }
    let keys_copied_mean = keys_copied as f64 / cow_batches as f64;
    let slots_copied_mean = slots_copied as f64 / cow_batches as f64;
    assert!(
        keys_copied_mean < keys_total as f64,
        "sub-page CoW must copy fewer keys than the whole index holds"
    );
    println!(
        "sub-page CoW: {view_entries}-entry view, {keys_copied_mean:.1} by_const \
         keys copied per batch vs {keys_total} whole-index keys \
         ({slots_copied_mean:.1} slot keys)"
    );
    report.push(
        JsonRow::new()
            .str("section", "subpage_cow")
            .int("view_entries", view_entries as i64)
            .int("batches", cow_batches as i64)
            .int("batch_size", 2)
            .float("by_const_keys_copied_mean", keys_copied_mean)
            .int("by_const_keys_total", keys_total as i64)
            .float("slot_keys_copied_mean", slots_copied_mean),
    );

    report.write_if(&json);
    println!();
    println!(
        "expected shape: readers sustain snapshot queries (each a full \
         constraint-solving ask) throughout the writer's batches; batch \
         latency below k x single-atom latency, with the gap widening with \
         k — DRed runs one gated rederivation fixpoint instead of k; \
         publish_micros stays flat as the view grows while the deep rebuild \
         comparator scales with it; the shard sweep's maintenance \
         throughput grows with the lane count on the independent-component \
         workload; and the durable service stays within a small factor of \
         the in-memory one (group commit shares fsyncs across concurrent \
         writers; fsync-never tracks memory closely) while recovery \
         replays the full log back to the exact served state. On multi-core \
         hosts the intra-lane sweep's batches/sec grows with the pool width \
         on the single-hot-component workload (and the skewed row recovers \
         throughput sharding alone cannot); sub-page CoW keeps \
         by_const_keys_copied_mean far below the whole-index key count."
    );
}

/// `--prom <path>`: where to dump the instrumented sweep's Prometheus
/// scrape (validated in CI by the `promcheck` binary).
fn prom_path_from_args() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--prom" {
            return args.next();
        }
    }
    None
}

/// The shard-sweep batch list: mostly single-component 2-point
/// deletions (drawn inside that component's fact intervals, distinct
/// seeds so every batch does real maintenance), with every eighth batch
/// deleting across two components — the cross-shard two-phase-publish
/// fraction the sweep reports.
/// One random point deletion inside component `comp`'s layer-0 fact
/// intervals (distinct seeds draw distinct points, so every batch does
/// real maintenance).
fn component_point(intervals: &[(String, i64, i64)], comp: usize, seed: u64) -> ConstrainedAtom {
    let x = Term::var(Var(0));
    let mine: Vec<&(String, i64, i64)> = intervals
        .iter()
        .filter(|(p, _, _)| *p == pred_name(0, comp))
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xE8_5EED);
    let (pred, lo, hi) = mine[rng.gen_range(0..mine.len())];
    let point = rng.gen_range(*lo..=*hi);
    ConstrainedAtom::new(
        pred,
        vec![x.clone()],
        Constraint::eq(x.clone(), Term::int(point)),
    )
}

/// The skewed batch list: 90% of batches delete a point inside
/// component 0 and the rest rotate over the other components — the
/// hot-lane regime the intra-lane pool exists for. Single-point batches:
/// concentrated deletions carve the same fact intervals repeatedly, so
/// the per-entry constraints (and with them solver cost) grow with
/// every extra point the hot component absorbs.
fn build_skewed_batches(spec: &LayeredSpec, n: usize) -> Vec<UpdateBatch> {
    let intervals = fact_intervals(spec);
    (0..n)
        .map(|b| {
            let comp = if b % 10 < 9 {
                0
            } else {
                1 + (b / 10) % (spec.preds_per_layer - 1)
            };
            UpdateBatch::deleting(vec![component_point(&intervals, comp, 0xE85C + b as u64)])
        })
        .collect()
}

fn build_sweep_batches(spec: &LayeredSpec, n: usize) -> Vec<UpdateBatch> {
    let intervals = fact_intervals(spec);
    let comp_point = |comp: usize, seed: u64| component_point(&intervals, comp, seed);
    (0..n)
        .map(|b| {
            let comp = b % spec.preds_per_layer;
            let mut deletes = vec![
                comp_point(comp, b as u64 * 2),
                comp_point(comp, b as u64 * 2 + 1),
            ];
            if b % 8 == 7 {
                let other = (comp + 1) % spec.preds_per_layer;
                deletes.push(comp_point(other, b as u64 * 2 + 7000));
            }
            UpdateBatch::deleting(deletes)
        })
        .collect()
}
