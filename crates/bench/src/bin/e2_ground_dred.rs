//! E2 — Ground specialization: the constrained Extended DRed vs the
//! ground DRed of Gupta–Mumick–Subrahmanian \[22\].
//!
//! Paper claim (§1 item 2): the constrained framework subsumes the
//! unconstrained case. This experiment (a) verifies both engines compute
//! identical results on ground programs, and (b) measures the overhead
//! the constraint machinery pays for that generality.
//!
//! Regenerate: `cargo run -p mmv-bench --release --bin e2_ground_dred`
#![forbid(unsafe_code)]

use mmv_bench::gen::ground::{ground_to_constrained, random_edges, two_hop_program, GraphSpec};
use mmv_bench::harness::{
    banner, fmt_duration, json_path_from_args, median_time, JsonReport, JsonRow, Table,
};
use mmv_constraints::{NoDomains, Value};
use mmv_core::{dred_delete, fixpoint, FixpointConfig, Operator, SupportMode};
use mmv_datalog::{evaluate, Fact};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = json_path_from_args();
    let claim =
        "the constrained algorithm specializes to ground DRed; overhead = price of constraint generality";
    banner(
        "E2: ground DRed vs constrained Extended DRed (two-hop paths)",
        claim,
    );
    let mut report = JsonReport::new("E2", claim);
    let sweeps: Vec<(usize, usize)> = if quick {
        vec![(20, 40)]
    } else {
        vec![(20, 40), (40, 80), (60, 160), (80, 240)]
    };
    let runs = if quick { 3 } else { 5 };
    let mut table = Table::new(&[
        "nodes",
        "edges",
        "ground facts",
        "ground DRed",
        "constrained DRed",
        "overhead",
    ]);
    for (nodes, edges) in sweeps {
        let spec = GraphSpec {
            nodes,
            edges,
            seed: 0xE2,
        };
        let edge_list = random_edges(&spec);
        let program = two_hop_program(&edge_list);
        let materialized = evaluate(&program);
        let victim = Fact::new(
            "edge",
            vec![Value::Int(edge_list[0].0), Value::Int(edge_list[0].1)],
        );

        let t_ground = median_time(1, runs, || {
            let (_, _) = mmv_datalog::apply_update(
                &program,
                &materialized,
                std::slice::from_ref(&victim),
                &[],
            );
        });

        let cdb = ground_to_constrained(&program);
        let cfg = FixpointConfig::default();
        let (plain, _) =
            fixpoint(&cdb, &NoDomains, Operator::Tp, SupportMode::Plain, &cfg).expect("fixpoint");
        let deletion = mmv_core::ConstrainedAtom::fact(
            "edge",
            vec![Value::Int(edge_list[0].0), Value::Int(edge_list[0].1)],
        );
        // Correctness: the two engines agree after the deletion.
        {
            let (ground_after, _) = mmv_datalog::apply_update(
                &program,
                &materialized,
                std::slice::from_ref(&victim),
                &[],
            );
            let mut v = plain.clone();
            dred_delete(&cdb, &mut v, &deletion, &NoDomains, &cfg).expect("dred");
            let ci = v.instances(&NoDomains, &cfg.solver).expect("instances");
            let gset: std::collections::BTreeSet<(String, Vec<Value>)> = ground_after
                .facts()
                .map(|f| (f.pred.to_string(), f.args))
                .collect();
            let cset: std::collections::BTreeSet<(String, Vec<Value>)> =
                ci.into_iter().map(|(p, t)| (p.to_string(), t)).collect();
            assert_eq!(gset, cset, "engines disagree on ground deletion");
        }
        let t_constrained = median_time(1, runs, || {
            let mut v = plain.clone();
            dred_delete(&cdb, &mut v, &deletion, &NoDomains, &cfg).expect("dred");
        });
        table.row(vec![
            nodes.to_string(),
            edge_list.len().to_string(),
            materialized.len().to_string(),
            fmt_duration(t_ground),
            fmt_duration(t_constrained),
            format!(
                "{:.1}x",
                t_constrained.as_secs_f64() / t_ground.as_secs_f64().max(1e-9)
            ),
        ]);
        report.push(
            JsonRow::new()
                .int("nodes", nodes as i64)
                .int("edges", edge_list.len() as i64)
                .int("ground_facts", materialized.len() as i64)
                .secs("ground_dred_s", t_ground)
                .secs("constrained_dred_s", t_constrained),
        );
    }
    table.print();
    report.write_if(&json);
    println!();
    println!(
        "expected shape: identical results (asserted); the constrained \
         engine pays a constant-factor overhead for constraint solving."
    );
}
