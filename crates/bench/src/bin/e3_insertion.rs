//! E3 — Insertion maintenance: Algorithm 3 vs full recomputation.
//!
//! Paper claim (§3.2, Theorem 3): insertions propagate incrementally
//! through `P_ADD`; only derivations touching the new atoms are built.
//!
//! Regenerate: `cargo run -p mmv-bench --release --bin e3_insertion`
#![forbid(unsafe_code)]

use mmv_bench::gen::constrained::{layered_program, random_insertion, LayeredSpec};
use mmv_bench::harness::{
    banner, fmt_duration, json_path_from_args, median_time, JsonReport, JsonRow, Table,
};
use mmv_constraints::NoDomains;
use mmv_core::{
    fixpoint, insert_atom, insert_batch, Clause, FixpointConfig, Operator, SupportMode,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let json = json_path_from_args();
    let claim = "P_ADD propagation touches only the new derivations (paper §3.2)";
    banner("E3: insertion latency — Algorithm 3 vs recompute", claim);
    let mut report = JsonReport::new("E3", claim);
    let batches: Vec<usize> = if quick {
        vec![1, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let sizes: Vec<usize> = if quick { vec![8] } else { vec![8, 16, 32] };
    let runs = if quick { 3 } else { 5 };
    let mut table = Table::new(&[
        "facts/pred",
        "view entries",
        "batch",
        "Alg 3 batched",
        "Alg 3 seq",
        "recompute",
        "ops/s",
        "speedup",
    ]);
    for &facts in &sizes {
        let spec = LayeredSpec {
            layers: 3,
            preds_per_layer: 4,
            facts_per_pred: facts,
            body_atoms: 1,
            ..LayeredSpec::default()
        };
        let db = layered_program(&spec);
        let cfg = FixpointConfig::default();
        let (view, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &cfg,
        )
        .expect("fixpoint");
        for &batch in &batches {
            let insertions: Vec<_> = (0..batch)
                .map(|k| random_insertion(&spec, 0xE3 + k as u64, 10))
                .collect();
            // The batched entry point: one P_ADD propagation for the
            // whole insertion set.
            let t_batched = median_time(1, runs, || {
                let mut v = view.clone();
                insert_batch(&db, &mut v, &insertions, &NoDomains, Operator::Tp, &cfg)
                    .expect("insert batch");
            });
            let t_incremental = median_time(1, runs, || {
                let mut v = view.clone();
                for ins in &insertions {
                    insert_atom(&db, &mut v, ins, &NoDomains, Operator::Tp, &cfg).expect("insert");
                }
            });
            let t_recompute = median_time(1, runs, || {
                let mut extended = db.clone();
                for ins in &insertions {
                    extended.push(Clause::fact(
                        &ins.pred,
                        ins.args.clone(),
                        ins.constraint.clone(),
                    ));
                }
                fixpoint(
                    &extended,
                    &NoDomains,
                    Operator::Tp,
                    SupportMode::WithSupports,
                    &cfg,
                )
                .expect("recompute");
            });
            let ops = batch as f64 / t_batched.as_secs_f64().max(1e-9);
            table.row(vec![
                facts.to_string(),
                view.len().to_string(),
                batch.to_string(),
                fmt_duration(t_batched),
                fmt_duration(t_incremental),
                fmt_duration(t_recompute),
                format!("{ops:.0}"),
                format!(
                    "{:.1}x",
                    t_recompute.as_secs_f64() / t_batched.as_secs_f64().max(1e-9)
                ),
            ]);
            report.push(
                JsonRow::new()
                    .int("facts_per_pred", facts as i64)
                    .int("view_entries", view.len() as i64)
                    .int("batch", batch as i64)
                    .secs("insert_batch_s", t_batched)
                    .secs("insert_s", t_incremental)
                    .float("insert_batch_ops_per_sec", ops)
                    .secs("recompute_s", t_recompute),
            );
        }
    }
    table.print();
    report.write_if(&json);
    println!();
    println!(
        "expected shape: Algorithm 3 cost scales with the batch, \
         recomputation with the whole view; speedup grows with view size; \
         the batched entry point beats sequential insertion by sharing \
         one P_ADD propagation."
    );
}
