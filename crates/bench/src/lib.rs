//! # mmv-bench
//!
//! Workload generators, the synthetic sensor domain, and the experiment
//! harness for the reproduction's benchmark suite. Each experiment from
//! DESIGN.md §4 (E1–E7) has a binary under `src/bin/` that regenerates
//! its table; `benches/maintenance.rs` mirrors the core comparisons in
//! Criterion for statistically tracked numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gen;
pub mod harness;
pub mod sensors;
