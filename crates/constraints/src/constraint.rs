//! The constraint language of the paper (§2.3):
//!
//! * any DCA-atom `in(X, dom:f(args))` is a constraint,
//! * `X = T` and `X ≠ T` are constraints,
//! * any conjunction of constraints is a constraint,
//!
//! extended — as the paper's own numeric examples do (`X ≤ 3`) — with
//! comparison literals over the arithmetic domain, and with the `not(φ)`
//! construct that the maintenance algorithms introduce into constraint
//! parts (clauses (4), (5) and Algorithms 1–3).

use crate::fxhash::FxHashMap;
use crate::term::{Subst, Term, Var, VarGen};
use crate::value::Value;
use crate::valueset::ValueSet;
use std::fmt;
use std::sync::Arc;

/// Resolves domain calls to value sets. Implemented by the mediator's
/// domain manager; the constraint solver and ground evaluator are generic
/// over it. Resolution happens against the resolver's *current* state —
/// the `W_P` semantics of Section 4 falls out of passing resolvers for
/// different time points.
pub trait DomainResolver {
    /// Evaluates `domain:func(args)` on ground arguments.
    fn resolve(&self, domain: &str, func: &str, args: &[Value]) -> ValueSet;
}

/// A resolver with no domains: every call yields the empty set.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoDomains;

impl DomainResolver for NoDomains {
    fn resolve(&self, _domain: &str, _func: &str, _args: &[Value]) -> ValueSet {
        ValueSet::Empty
    }
}

/// Comparison operators of the arithmetic constraint domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The negated operator (`not(a < b)` ⇔ `a >= b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The mirrored operator (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Applies the comparison to two integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// A domain call `dom:func(args)` — the second argument of a DCA-atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Call {
    /// Domain name (e.g. `paradox`, `arith`, `facextract`).
    pub domain: Arc<str>,
    /// Function name within the domain (e.g. `select_eq`).
    pub func: Arc<str>,
    /// Argument terms; may contain variables bound elsewhere in the
    /// constraint.
    pub args: Vec<Term>,
}

impl Call {
    /// Builds a call.
    pub fn new(domain: &str, func: &str, args: Vec<Term>) -> Self {
        Call {
            domain: Arc::from(domain),
            func: Arc::from(func),
            args,
        }
    }

    /// Grounds the arguments under a total assignment.
    pub fn eval_args(&self, asg: &FxHashMap<Var, Value>) -> Option<Vec<Value>> {
        self.args.iter().map(|t| t.eval(asg)).collect()
    }

    fn substitute(&self, s: &Subst) -> Call {
        Call {
            domain: self.domain.clone(),
            func: self.func.clone(),
            args: self.args.iter().map(|t| t.substitute(s)).collect(),
        }
    }

    fn rename_into(&self, map: &mut FxHashMap<Var, Var>, gen: &mut VarGen) -> Call {
        Call {
            domain: self.domain.clone(),
            func: self.func.clone(),
            args: self.args.iter().map(|t| t.rename_into(map, gen)).collect(),
        }
    }
}

impl fmt::Display for Call {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}(", self.domain, self.func)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A constraint literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lit {
    /// `s = t`
    Eq(Term, Term),
    /// `s != t`
    Neq(Term, Term),
    /// `s op t` over integers
    Cmp(Term, CmpOp, Term),
    /// DCA-atom `in(x, call)`
    In(Term, Call),
    /// Negated DCA-atom `notin(x, call)` (arises from negation pushing)
    NotIn(Term, Call),
    /// `not(φ)` for a conjunction φ — introduced by the maintenance
    /// algorithms.
    Not(Constraint),
}

impl Lit {
    /// The logical negation of this literal, as a constraint.
    pub fn negate(&self) -> Constraint {
        match self {
            Lit::Eq(a, b) => Constraint::lit(Lit::Neq(a.clone(), b.clone())),
            Lit::Neq(a, b) => Constraint::lit(Lit::Eq(a.clone(), b.clone())),
            Lit::Cmp(a, op, b) => Constraint::lit(Lit::Cmp(a.clone(), op.negate(), b.clone())),
            Lit::In(x, c) => Constraint::lit(Lit::NotIn(x.clone(), c.clone())),
            Lit::NotIn(x, c) => Constraint::lit(Lit::In(x.clone(), c.clone())),
            Lit::Not(c) => c.clone(),
        }
    }

    /// Collects free variables.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Lit::Eq(a, b) | Lit::Neq(a, b) | Lit::Cmp(a, _, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Lit::In(x, c) | Lit::NotIn(x, c) => {
                x.collect_vars(out);
                for t in &c.args {
                    t.collect_vars(out);
                }
            }
            Lit::Not(c) => {
                for l in &c.lits {
                    l.collect_vars(out);
                }
            }
        }
    }

    /// Applies a substitution.
    pub fn substitute(&self, s: &Subst) -> Lit {
        match self {
            Lit::Eq(a, b) => Lit::Eq(a.substitute(s), b.substitute(s)),
            Lit::Neq(a, b) => Lit::Neq(a.substitute(s), b.substitute(s)),
            Lit::Cmp(a, op, b) => Lit::Cmp(a.substitute(s), *op, b.substitute(s)),
            Lit::In(x, c) => Lit::In(x.substitute(s), c.substitute(s)),
            Lit::NotIn(x, c) => Lit::NotIn(x.substitute(s), c.substitute(s)),
            Lit::Not(c) => Lit::Not(c.substitute(s)),
        }
    }

    fn rename_into(&self, map: &mut FxHashMap<Var, Var>, gen: &mut VarGen) -> Lit {
        match self {
            Lit::Eq(a, b) => Lit::Eq(a.rename_into(map, gen), b.rename_into(map, gen)),
            Lit::Neq(a, b) => Lit::Neq(a.rename_into(map, gen), b.rename_into(map, gen)),
            Lit::Cmp(a, op, b) => Lit::Cmp(a.rename_into(map, gen), *op, b.rename_into(map, gen)),
            Lit::In(x, c) => Lit::In(x.rename_into(map, gen), c.rename_into(map, gen)),
            Lit::NotIn(x, c) => Lit::NotIn(x.rename_into(map, gen), c.rename_into(map, gen)),
            Lit::Not(c) => Lit::Not(c.rename_into(map, gen)),
        }
    }

    /// Evaluates the literal under a total assignment of its variables.
    /// `None` means the assignment did not cover every variable or a term
    /// was ill-typed (e.g. a missing record field) — callers treat this as
    /// "no solution".
    pub fn eval_ground(
        &self,
        asg: &FxHashMap<Var, Value>,
        resolver: &dyn DomainResolver,
    ) -> Option<bool> {
        match self {
            Lit::Eq(a, b) => Some(a.eval(asg)? == b.eval(asg)?),
            Lit::Neq(a, b) => Some(a.eval(asg)? != b.eval(asg)?),
            Lit::Cmp(a, op, b) => {
                let (x, y) = (a.eval(asg)?, b.eval(asg)?);
                match (x, y) {
                    (Value::Int(i), Value::Int(j)) => Some(op.eval(i, j)),
                    _ => Some(false),
                }
            }
            Lit::In(x, c) => {
                let v = x.eval(asg)?;
                let args = c.eval_args(asg)?;
                Some(resolver.resolve(&c.domain, &c.func, &args).contains(&v))
            }
            Lit::NotIn(x, c) => {
                let v = x.eval(asg)?;
                let args = c.eval_args(asg)?;
                Some(!resolver.resolve(&c.domain, &c.func, &args).contains(&v))
            }
            Lit::Not(c) => {
                // Negation semantics (see DESIGN.md §3): variables of the
                // inner conjunction that the assignment does not cover are
                // *existentially quantified inside* the negation —
                // `not(ψ)` over a region with auxiliary variables means
                // "X⃗ is not an instance of the region", i.e. `¬∃aux ψ`,
                // not `∃aux ¬ψ`. This is what makes the deletion
                // algorithms' `not(removed-region)` exclusions actually
                // exclude.
                let inner_vars = c.free_vars();
                if inner_vars.iter().all(|v| asg.contains_key(v)) {
                    return Some(!c.eval_ground(asg, resolver)?);
                }
                // Substitute the covered variables, then decide
                // ∃(uncovered): ψ by exact enumeration of the residual.
                let subst: crate::term::Subst = inner_vars
                    .iter()
                    .filter_map(|v| asg.get(v).map(|val| (*v, Term::Const(val.clone()))))
                    .collect();
                let residual = c.substitute(&subst);
                match crate::solver::solutions(&residual, &[], resolver) {
                    crate::solver::EnumResult::Exact(s) => Some(s.is_empty()),
                    _ => None,
                }
            }
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lit::Eq(a, b) => write!(f, "{a} = {b}"),
            Lit::Neq(a, b) => write!(f, "{a} != {b}"),
            Lit::Cmp(a, op, b) => write!(f, "{a} {op} {b}"),
            Lit::In(x, c) => write!(f, "in({x}, {c})"),
            Lit::NotIn(x, c) => write!(f, "notin({x}, {c})"),
            Lit::Not(c) => write!(f, "not({c})"),
        }
    }
}

/// A constraint: a conjunction of literals. The empty conjunction is `true`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Constraint {
    /// The conjuncts.
    pub lits: Vec<Lit>,
}

impl Constraint {
    /// The trivially true constraint.
    pub fn truth() -> Self {
        Constraint { lits: vec![] }
    }

    /// A single-literal constraint.
    pub fn lit(l: Lit) -> Self {
        Constraint { lits: vec![l] }
    }

    /// A conjunction of literals.
    pub fn conj<I: IntoIterator<Item = Lit>>(lits: I) -> Self {
        Constraint {
            lits: lits.into_iter().collect(),
        }
    }

    /// `s = t`.
    pub fn eq(a: Term, b: Term) -> Self {
        Constraint::lit(Lit::Eq(a, b))
    }

    /// `s != t`.
    pub fn neq(a: Term, b: Term) -> Self {
        Constraint::lit(Lit::Neq(a, b))
    }

    /// `s op t`.
    pub fn cmp(a: Term, op: CmpOp, b: Term) -> Self {
        Constraint::lit(Lit::Cmp(a, op, b))
    }

    /// `in(x, call)`.
    pub fn member(x: Term, call: Call) -> Self {
        Constraint::lit(Lit::In(x, call))
    }

    /// Conjoins another constraint onto this one.
    pub fn and(mut self, other: Constraint) -> Constraint {
        self.lits.extend(other.lits);
        self
    }

    /// Conjoins a single literal.
    pub fn and_lit(mut self, l: Lit) -> Constraint {
        self.lits.push(l);
        self
    }

    /// Conjoins tuple equality `⟨a1..an⟩ = ⟨b1..bn⟩` (used pervasively by
    /// `T_P`'s `{X⃗ = t⃗}` parts). Panics if lengths differ — callers check
    /// arity first.
    pub fn and_tuple_eq(mut self, xs: &[Term], ts: &[Term]) -> Constraint {
        assert_eq!(xs.len(), ts.len(), "tuple equality arity mismatch");
        for (x, t) in xs.iter().zip(ts) {
            if x != t {
                self.lits.push(Lit::Eq(x.clone(), t.clone()));
            }
        }
        self
    }

    /// Whether this is the empty (true) conjunction.
    pub fn is_truth(&self) -> bool {
        self.lits.is_empty()
    }

    /// Free variables, deduplicated, in first-occurrence order.
    pub fn free_vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for l in &self.lits {
            l.collect_vars(&mut out);
        }
        let mut seen = crate::fxhash::FxHashSet::default();
        out.retain(|v| seen.insert(*v));
        out
    }

    /// Applies a substitution to all conjuncts.
    pub fn substitute(&self, s: &Subst) -> Constraint {
        Constraint {
            lits: self.lits.iter().map(|l| l.substitute(s)).collect(),
        }
    }

    /// Renames all variables to fresh ones (standardizing apart), extending
    /// `map` so that related structures can be renamed consistently.
    pub fn rename_into(&self, map: &mut FxHashMap<Var, Var>, gen: &mut VarGen) -> Constraint {
        Constraint {
            lits: self.lits.iter().map(|l| l.rename_into(map, gen)).collect(),
        }
    }

    /// Ground evaluation under a total assignment: the semantic truth of
    /// the constraint at the resolver's current state. `None` when the
    /// assignment does not cover all variables.
    pub fn eval_ground(
        &self,
        asg: &FxHashMap<Var, Value>,
        resolver: &dyn DomainResolver,
    ) -> Option<bool> {
        for l in &self.lits {
            match l.eval_ground(asg, resolver) {
                Some(true) => {}
                Some(false) => return Some(false),
                // An ill-typed literal (missing field) has no solutions.
                None => return Some(false),
            }
        }
        Some(true)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lits.is_empty() {
            return write!(f, "true");
        }
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

impl From<Lit> for Constraint {
    fn from(l: Lit) -> Self {
        Constraint::lit(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Var;

    fn x() -> Term {
        Term::var(Var(0))
    }
    fn y() -> Term {
        Term::var(Var(1))
    }

    #[test]
    fn negate_roundtrip() {
        let l = Lit::Cmp(x(), CmpOp::Le, Term::int(5));
        let n = l.negate();
        assert_eq!(n.lits, vec![Lit::Cmp(x(), CmpOp::Gt, Term::int(5))]);
        let l2 = Lit::Eq(x(), y());
        assert_eq!(l2.negate().lits, vec![Lit::Neq(x(), y())]);
    }

    #[test]
    fn not_negates_to_inner() {
        let inner = Constraint::eq(x(), Term::int(2));
        let l = Lit::Not(inner.clone());
        assert_eq!(l.negate(), inner);
    }

    #[test]
    fn ground_eval_conjunction() {
        let c =
            Constraint::cmp(x(), CmpOp::Le, Term::int(5)).and(Constraint::neq(x(), Term::int(3)));
        let mut asg = FxHashMap::default();
        asg.insert(Var(0), Value::int(4));
        assert_eq!(c.eval_ground(&asg, &NoDomains), Some(true));
        asg.insert(Var(0), Value::int(3));
        assert_eq!(c.eval_ground(&asg, &NoDomains), Some(false));
        asg.insert(Var(0), Value::int(9));
        assert_eq!(c.eval_ground(&asg, &NoDomains), Some(false));
    }

    #[test]
    fn ground_eval_not() {
        // X <= 5 & not(X <= 5 & X = 6)  — example 5's replaced atom.
        let inner =
            Constraint::cmp(x(), CmpOp::Le, Term::int(5)).and(Constraint::eq(x(), Term::int(6)));
        let c = Constraint::cmp(x(), CmpOp::Le, Term::int(5)).and_lit(Lit::Not(inner));
        let mut asg = FxHashMap::default();
        asg.insert(Var(0), Value::int(4));
        assert_eq!(c.eval_ground(&asg, &NoDomains), Some(true));
        asg.insert(Var(0), Value::int(6));
        // X = 6 fails the outer X<=5? No: 6 > 5, outer fails already.
        assert_eq!(c.eval_ground(&asg, &NoDomains), Some(false));
        asg.insert(Var(0), Value::int(5));
        assert_eq!(c.eval_ground(&asg, &NoDomains), Some(true));
    }

    #[test]
    fn free_vars_dedup_ordered() {
        let c = Constraint::eq(x(), y()).and(Constraint::neq(y(), Term::int(1)));
        assert_eq!(c.free_vars(), vec![Var(0), Var(1)]);
    }

    #[test]
    fn tuple_eq_skips_identical_terms() {
        let c = Constraint::truth().and_tuple_eq(&[x(), y()], &[x(), Term::int(3)]);
        assert_eq!(c.lits, vec![Lit::Eq(y(), Term::int(3))]);
    }

    #[test]
    fn display_readable() {
        let c = Constraint::eq(x(), Term::int(2))
            .and_lit(Lit::Not(Constraint::neq(y(), Term::str("don"))));
        assert_eq!(c.to_string(), "X0 = 2 & not(X1 != \"don\")");
        assert_eq!(Constraint::truth().to_string(), "true");
    }

    #[test]
    fn ill_typed_field_eval_is_false() {
        let c = Constraint::eq(Term::field(x(), "missing"), Term::int(1));
        let mut asg = FxHashMap::default();
        asg.insert(Var(0), Value::int(5));
        assert_eq!(c.eval_ground(&asg, &NoDomains), Some(false));
    }
}
