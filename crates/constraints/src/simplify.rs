//! Syntactic constraint simplification.
//!
//! The maintenance algorithms pile up redundancy: StDel replaces
//! `B(X) <- X <= 5` with `B(X) <- X <= 5 & not(X <= 5 & X = 6)`, which the
//! paper (Example 5) simplifies to `B(X) <- X <= 5 & X != 6`. This module
//! performs exactly that class of cheap, *equivalence-preserving* rewrites:
//!
//! * drop literals that are syntactically true (`t = t`, `3 <= 5`),
//! * detect literals that are syntactically false (`t != t`, `1 = 2`),
//! * inside `not(φ)`, drop conjuncts of φ that literally appear in the
//!   enclosing conjunction (they are implied by context),
//! * unwrap `not(single-literal)` to the negated literal,
//! * `not(true)` makes the whole conjunction false; `not(false)` is
//!   dropped,
//! * deduplicate repeated literals.
//!
//! Simplification never consults a resolver, so it is safe to apply to
//! `W_P` views whose constraints must remain syntactically stable under
//! external change (Theorem 4): all rewrites are time-independent.

use crate::constraint::{Constraint, Lit};
use crate::fxhash::FxHashSet;
use crate::term::Term;
use crate::value::Value;

/// Outcome of simplification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Simplified {
    /// The constraint is syntactically unsatisfiable.
    Unsat,
    /// An equivalent, usually smaller constraint.
    Constraint(Constraint),
}

impl Simplified {
    /// The constraint, mapping `Unsat` to `None`.
    pub fn into_constraint(self) -> Option<Constraint> {
        match self {
            Simplified::Unsat => None,
            Simplified::Constraint(c) => Some(c),
        }
    }
}

/// Truth status a literal can have by pure syntax.
enum LitStatus {
    True,
    False,
    Open(Lit),
}

fn const_pair(a: &Term, b: &Term) -> Option<(Value, Value)> {
    match (a.as_const(), b.as_const()) {
        (Some(x), Some(y)) => Some((x.clone(), y.clone())),
        _ => None,
    }
}

fn lit_status(l: Lit) -> LitStatus {
    match &l {
        Lit::Eq(a, b) => {
            if a == b {
                return LitStatus::True;
            }
            if let Some((x, y)) = const_pair(a, b) {
                return if x == y {
                    LitStatus::True
                } else {
                    LitStatus::False
                };
            }
            LitStatus::Open(l)
        }
        Lit::Neq(a, b) => {
            if a == b {
                return LitStatus::False;
            }
            if let Some((x, y)) = const_pair(a, b) {
                return if x != y {
                    LitStatus::True
                } else {
                    LitStatus::False
                };
            }
            LitStatus::Open(l)
        }
        Lit::Cmp(a, op, b) => {
            if let Some((x, y)) = const_pair(a, b) {
                return match (x, y) {
                    (Value::Int(i), Value::Int(j)) => {
                        if op.eval(i, j) {
                            LitStatus::True
                        } else {
                            LitStatus::False
                        }
                    }
                    _ => LitStatus::False,
                };
            }
            LitStatus::Open(l)
        }
        _ => LitStatus::Open(l),
    }
}

/// Simplifies a constraint. The result is logically equivalent (same
/// solution set against every resolver).
pub fn simplify(c: &Constraint) -> Simplified {
    simplify_in_context(c, &FxHashSet::default())
}

fn simplify_in_context(c: &Constraint, context: &FxHashSet<Lit>) -> Simplified {
    let mut out: Vec<Lit> = Vec::with_capacity(c.lits.len());
    let mut seen: FxHashSet<Lit> = FxHashSet::default();

    // First pass: resolve primitive literal statuses so the context for
    // `not(·)` processing includes every open sibling literal.
    let mut open: Vec<Lit> = Vec::with_capacity(c.lits.len());
    for l in &c.lits {
        // Fold constant field projections.
        let l = l.substitute(&crate::term::Subst::new());
        match lit_status(l) {
            LitStatus::True => {}
            LitStatus::False => return Simplified::Unsat,
            LitStatus::Open(l) => open.push(l),
        }
    }
    let mut full_context: FxHashSet<Lit> = context.clone();
    for l in &open {
        if !matches!(l, Lit::Not(_)) {
            full_context.insert(l.clone());
        }
    }

    for l in open {
        let processed = match l {
            Lit::Not(inner) => {
                // Drop inner conjuncts implied by the enclosing context.
                let mut kept: Vec<Lit> = Vec::with_capacity(inner.lits.len());
                let mut inner_unsat = false;
                for il in &inner.lits {
                    let il = il.substitute(&crate::term::Subst::new());
                    match lit_status(il) {
                        LitStatus::True => {} // true conjunct: drop
                        LitStatus::False => {
                            inner_unsat = true;
                            break;
                        }
                        LitStatus::Open(il) => {
                            if !full_context.contains(&il) {
                                kept.push(il);
                            }
                        }
                    }
                }
                if inner_unsat {
                    // not(false) = true: drop the literal entirely.
                    continue;
                }
                match kept.len() {
                    // not(true): the whole conjunction is false.
                    0 => return Simplified::Unsat,
                    1 => {
                        // Unwrap single-literal negations: not(X = 6) -> X != 6.
                        let neg = kept.pop().expect("len checked").negate();
                        if neg.lits.len() == 1 {
                            neg.lits.into_iter().next().expect("single literal")
                        } else {
                            // Negating a Not produced a conjunction; keep
                            // as nested (recursively simplified) Not.
                            Lit::Not(Constraint {
                                lits: kept_to_vec(neg.lits),
                            })
                        }
                    }
                    _ => {
                        // Recursively simplify the inner conjunction.
                        match simplify_in_context(&Constraint { lits: kept }, &full_context) {
                            Simplified::Unsat => continue, // not(false) = true
                            Simplified::Constraint(inner2) => {
                                if inner2.is_truth() {
                                    return Simplified::Unsat;
                                }
                                Lit::Not(inner2)
                            }
                        }
                    }
                }
            }
            prim => prim,
        };
        if seen.insert(processed.clone()) {
            out.push(processed);
        }
    }
    Simplified::Constraint(Constraint { lits: out })
}

fn kept_to_vec(lits: Vec<Lit>) -> Vec<Lit> {
    lits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::CmpOp;
    use crate::term::Var;

    fn x() -> Term {
        Term::var(Var(0))
    }

    fn simp(c: &Constraint) -> Constraint {
        match simplify(c) {
            Simplified::Constraint(c) => c,
            Simplified::Unsat => panic!("unexpected unsat"),
        }
    }

    #[test]
    fn paper_example_5_simplification() {
        // X <= 5 & not(X <= 5 & X = 6)  ==>  X <= 5 & X != 6
        let inner =
            Constraint::cmp(x(), CmpOp::Le, Term::int(5)).and(Constraint::eq(x(), Term::int(6)));
        let c = Constraint::cmp(x(), CmpOp::Le, Term::int(5)).and_lit(Lit::Not(inner));
        let s = simp(&c);
        assert_eq!(
            s,
            Constraint::cmp(x(), CmpOp::Le, Term::int(5)).and(Constraint::neq(x(), Term::int(6)))
        );
    }

    #[test]
    fn trivially_true_literals_dropped() {
        let c = Constraint::eq(x(), x())
            .and(Constraint::cmp(Term::int(1), CmpOp::Le, Term::int(2)))
            .and(Constraint::eq(x(), Term::int(7)));
        assert_eq!(simp(&c), Constraint::eq(x(), Term::int(7)));
    }

    #[test]
    fn trivially_false_literal_is_unsat() {
        let c = Constraint::neq(x(), x());
        assert_eq!(simplify(&c), Simplified::Unsat);
        let c2 = Constraint::eq(Term::int(1), Term::int(2));
        assert_eq!(simplify(&c2), Simplified::Unsat);
    }

    #[test]
    fn not_of_context_literal_is_unsat() {
        // X = 3 & not(X = 3): inner conjunct implied by context -> not(true).
        let c =
            Constraint::eq(x(), Term::int(3)).and_lit(Lit::Not(Constraint::eq(x(), Term::int(3))));
        assert_eq!(simplify(&c), Simplified::Unsat);
    }

    #[test]
    fn not_false_dropped() {
        let c = Constraint::eq(x(), Term::int(1))
            .and_lit(Lit::Not(Constraint::eq(Term::int(1), Term::int(2))));
        assert_eq!(simp(&c), Constraint::eq(x(), Term::int(1)));
    }

    #[test]
    fn duplicates_removed() {
        let c = Constraint::eq(x(), Term::int(1)).and(Constraint::eq(x(), Term::int(1)));
        assert_eq!(simp(&c).lits.len(), 1);
    }

    #[test]
    fn example_6_recursive_entry_simplifies_to_unsat() {
        // X = c & Y = d & not(X = c & Y = d) from Example 6, clause 3.
        let y = Term::var(Var(1));
        let inner =
            Constraint::eq(x(), Term::str("c")).and(Constraint::eq(y.clone(), Term::str("d")));
        let c = Constraint::eq(x(), Term::str("c"))
            .and(Constraint::eq(y, Term::str("d")))
            .and_lit(Lit::Not(inner));
        assert_eq!(simplify(&c), Simplified::Unsat);
    }

    #[test]
    fn field_projection_folds() {
        let rec = Value::record(vec![("k", Value::int(3))]);
        let c = Constraint::eq(Term::field(Term::Const(rec), "k"), Term::int(3));
        assert_eq!(simp(&c), Constraint::truth());
    }
}
