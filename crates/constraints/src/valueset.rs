//! Abstract value sets — the results of domain calls.
//!
//! The paper (Example 2) notes that a domain function such as
//! `arith:great(X)` denotes an *infinite* set that "need not be computed all
//! at once". `ValueSet` is the lazy representation: finite sets are held
//! extensionally, integer ranges symbolically.

use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// An inclusive-or-open integer bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntBound {
    /// Unbounded in this direction.
    Open,
    /// Bounded inclusively by the payload.
    Incl(i64),
}

impl IntBound {
    /// Tightens a *lower* bound: keeps the larger of the two.
    pub fn tighten_lower(self, other: IntBound) -> IntBound {
        self.min_with_lower(other)
    }

    /// Tightens an *upper* bound: keeps the smaller of the two.
    pub fn tighten_upper(self, other: IntBound) -> IntBound {
        self.max_with_upper(other)
    }

    fn min_with_lower(self, other: IntBound) -> IntBound {
        // For lower bounds, the intersection takes the maximum.
        match (self, other) {
            (IntBound::Open, b) | (b, IntBound::Open) => b,
            (IntBound::Incl(a), IntBound::Incl(b)) => IntBound::Incl(a.max(b)),
        }
    }

    fn max_with_upper(self, other: IntBound) -> IntBound {
        // For upper bounds, the intersection takes the minimum.
        match (self, other) {
            (IntBound::Open, b) | (b, IntBound::Open) => b,
            (IntBound::Incl(a), IntBound::Incl(b)) => IntBound::Incl(a.min(b)),
        }
    }
}

/// A (possibly infinite) set of values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueSet {
    /// The empty set.
    Empty,
    /// A finite, extensional set.
    Finite(BTreeSet<Value>),
    /// All integers within `[lo, hi]` (either side may be open).
    IntRange(IntBound, IntBound),
    /// The whole value universe (used for "no information").
    All,
}

impl ValueSet {
    /// The empty set.
    pub fn empty() -> Self {
        ValueSet::Empty
    }

    /// A finite set from an iterator of values.
    pub fn finite<I: IntoIterator<Item = Value>>(vals: I) -> Self {
        let set: BTreeSet<Value> = vals.into_iter().collect();
        if set.is_empty() {
            ValueSet::Empty
        } else {
            ValueSet::Finite(set)
        }
    }

    /// A singleton set.
    pub fn singleton(v: Value) -> Self {
        ValueSet::finite([v])
    }

    /// The integers `>= lo`.
    pub fn ints_from(lo: i64) -> Self {
        ValueSet::IntRange(IntBound::Incl(lo), IntBound::Open)
    }

    /// The integers `<= hi`.
    pub fn ints_to(hi: i64) -> Self {
        ValueSet::IntRange(IntBound::Open, IntBound::Incl(hi))
    }

    /// The integers in `[lo, hi]`.
    pub fn ints_between(lo: i64, hi: i64) -> Self {
        if lo > hi {
            ValueSet::Empty
        } else {
            ValueSet::IntRange(IntBound::Incl(lo), IntBound::Incl(hi))
        }
    }

    /// Whether the set is certainly empty.
    pub fn is_empty(&self) -> bool {
        match self {
            ValueSet::Empty => true,
            ValueSet::Finite(s) => s.is_empty(),
            ValueSet::IntRange(IntBound::Incl(lo), IntBound::Incl(hi)) => lo > hi,
            ValueSet::IntRange(_, _) => false,
            ValueSet::All => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, v: &Value) -> bool {
        match self {
            ValueSet::Empty => false,
            ValueSet::Finite(s) => s.contains(v),
            ValueSet::IntRange(lo, hi) => match v {
                Value::Int(i) => {
                    (match lo {
                        IntBound::Open => true,
                        IntBound::Incl(l) => i >= l,
                    }) && (match hi {
                        IntBound::Open => true,
                        IntBound::Incl(h) => i <= h,
                    })
                }
                _ => false,
            },
            ValueSet::All => true,
        }
    }

    /// Exact intersection.
    pub fn intersect(&self, other: &ValueSet) -> ValueSet {
        use ValueSet::*;
        match (self, other) {
            (Empty, _) | (_, Empty) => Empty,
            (All, x) | (x, All) => x.clone(),
            (Finite(a), Finite(b)) => {
                ValueSet::finite(a.intersection(b).cloned().collect::<Vec<_>>())
            }
            (Finite(a), r @ IntRange(_, _)) | (r @ IntRange(_, _), Finite(a)) => ValueSet::finite(
                a.iter()
                    .filter(|v| r.contains(v))
                    .cloned()
                    .collect::<Vec<_>>(),
            ),
            (IntRange(lo1, hi1), IntRange(lo2, hi2)) => {
                let lo = lo1.min_with_lower(*lo2);
                let hi = hi1.max_with_upper(*hi2);
                if let (IntBound::Incl(l), IntBound::Incl(h)) = (lo, hi) {
                    if l > h {
                        return Empty;
                    }
                }
                IntRange(lo, hi)
            }
        }
    }

    /// The number of elements, when finite and reasonably enumerable.
    pub fn finite_len(&self) -> Option<usize> {
        match self {
            ValueSet::Empty => Some(0),
            ValueSet::Finite(s) => Some(s.len()),
            ValueSet::IntRange(IntBound::Incl(lo), IntBound::Incl(hi)) => {
                usize::try_from(hi.checked_sub(*lo)?.checked_add(1)?).ok()
            }
            _ => None,
        }
    }

    /// Enumerates the elements when the set is finite and no larger than
    /// `limit`; `None` for infinite or oversized sets.
    pub fn enumerate(&self, limit: usize) -> Option<Vec<Value>> {
        match self {
            ValueSet::Empty => Some(vec![]),
            ValueSet::Finite(s) => {
                if s.len() <= limit {
                    Some(s.iter().cloned().collect())
                } else {
                    None
                }
            }
            ValueSet::IntRange(IntBound::Incl(lo), IntBound::Incl(hi)) => {
                let n = self.finite_len()?;
                if n <= limit {
                    Some((*lo..=*hi).map(Value::Int).collect())
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

impl fmt::Display for ValueSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueSet::Empty => write!(f, "{{}}"),
            ValueSet::Finite(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            ValueSet::IntRange(lo, hi) => {
                let l = match lo {
                    IntBound::Open => "-inf".to_string(),
                    IntBound::Incl(l) => l.to_string(),
                };
                let h = match hi {
                    IntBound::Open => "+inf".to_string(),
                    IntBound::Incl(h) => h.to_string(),
                };
                write!(f, "[{l}..{h}]")
            }
            ValueSet::All => write!(f, "ALL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_membership() {
        let s = ValueSet::ints_from(3);
        assert!(s.contains(&Value::int(3)));
        assert!(s.contains(&Value::int(1000)));
        assert!(!s.contains(&Value::int(2)));
        assert!(!s.contains(&Value::str("x")));
    }

    #[test]
    fn intersect_ranges() {
        let a = ValueSet::ints_from(3);
        let b = ValueSet::ints_to(10);
        assert_eq!(a.intersect(&b), ValueSet::ints_between(3, 10));
        let c = ValueSet::ints_from(11);
        assert!(b.intersect(&c).is_empty());
    }

    #[test]
    fn intersect_finite_with_range() {
        let f = ValueSet::finite([Value::int(1), Value::int(5), Value::str("x")]);
        let r = ValueSet::ints_from(2);
        assert_eq!(f.intersect(&r), ValueSet::singleton(Value::int(5)));
    }

    #[test]
    fn empty_propagates() {
        assert!(ValueSet::ints_between(5, 4).is_empty());
        assert!(ValueSet::finite(Vec::<Value>::new()).is_empty());
        assert!(ValueSet::Empty.intersect(&ValueSet::All).is_empty());
    }

    #[test]
    fn enumerate_bounded() {
        let r = ValueSet::ints_between(1, 4);
        assert_eq!(
            r.enumerate(10).unwrap(),
            vec![Value::int(1), Value::int(2), Value::int(3), Value::int(4)]
        );
        assert_eq!(r.enumerate(2), None);
        assert_eq!(ValueSet::ints_from(0).enumerate(100), None);
    }

    #[test]
    fn finite_len_overflow_safe() {
        let r = ValueSet::IntRange(IntBound::Incl(i64::MIN), IntBound::Incl(i64::MAX));
        assert_eq!(r.finite_len(), None);
    }

    #[test]
    fn all_is_identity_for_intersection() {
        let f = ValueSet::finite([Value::int(1)]);
        assert_eq!(ValueSet::All.intersect(&f), f);
    }
}
