//! A small, fast, non-cryptographic hasher (the FxHash algorithm used by
//! rustc), vendored to avoid an external dependency. Hot paths in the view
//! maintenance engine key maps by small integers (variable ids, support
//! hashes, clause numbers) where SipHash's DoS protection is pure overhead.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc FxHash implementation.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher state.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"materialized mediated view");
        b.write(b"materialized mediated view");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn differs_on_input() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 100);
        assert!(m.contains_key(&42));
    }

    #[test]
    fn unaligned_tail_bytes_hash() {
        let mut a = FxHasher::default();
        a.write(b"abc");
        let mut b = FxHasher::default();
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
    }
}
