//! Terms: variables, constants, and record-field projections.

use crate::fxhash::FxHashMap;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A variable, identified by a small integer. Display names are synthesized
/// (`X0`, `X1`, …) unless the parser recorded a source name elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// Generator of fresh variables. Standardizing clauses apart (required by
/// the `T_P` definition: "which share no variables") draws from one of
/// these.
#[derive(Debug, Default, Clone)]
pub struct VarGen {
    next: u32,
}

impl VarGen {
    /// A generator whose first fresh variable is `X{start}`.
    pub fn starting_at(start: u32) -> Self {
        VarGen { next: start }
    }

    /// Returns a fresh, never-before-issued variable.
    pub fn fresh(&mut self) -> Var {
        let v = Var(self.next);
        self.next += 1;
        v
    }

    /// First id not yet issued.
    pub fn watermark(&self) -> u32 {
        self.next
    }

    /// Ensures all ids below `floor` count as used.
    pub fn reserve_below(&mut self, floor: u32) {
        self.next = self.next.max(floor);
    }
}

/// A term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A ground value.
    Const(Value),
    /// Projection of a named field, e.g. `P1.origin`. The base term is a
    /// variable or another projection; projections of constants fold away
    /// during simplification.
    Field(Box<Term>, Arc<str>),
}

impl Term {
    /// Convenience constructor for variables.
    pub fn var(v: Var) -> Term {
        Term::Var(v)
    }

    /// Convenience constructor for integer constants.
    pub fn int(i: i64) -> Term {
        Term::Const(Value::Int(i))
    }

    /// Convenience constructor for string constants.
    pub fn str(s: &str) -> Term {
        Term::Const(Value::str(s))
    }

    /// Field projection.
    pub fn field(base: Term, name: &str) -> Term {
        Term::Field(Box::new(base), Arc::from(name))
    }

    /// The constant payload, if ground.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            _ => None,
        }
    }

    /// The variable, if this is a bare variable.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// Collects free variables into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Var>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::Const(_) => {}
            Term::Field(b, _) => b.collect_vars(out),
        }
    }

    /// Applies a variable substitution, leaving unmapped variables alone.
    pub fn substitute(&self, subst: &Subst) -> Term {
        match self {
            Term::Var(v) => subst.get(*v).cloned().unwrap_or(Term::Var(*v)),
            Term::Const(_) => self.clone(),
            Term::Field(b, f) => {
                let base = b.substitute(subst);
                match base {
                    // Fold projections on record constants eagerly.
                    Term::Const(ref val) => match val.field(f) {
                        Some(inner) => Term::Const(inner.clone()),
                        None => Term::Field(Box::new(base), f.clone()),
                    },
                    _ => Term::Field(Box::new(base), f.clone()),
                }
            }
        }
    }

    /// Renames every variable to a fresh one, recording the mapping.
    pub fn rename_into(&self, map: &mut FxHashMap<Var, Var>, gen: &mut VarGen) -> Term {
        match self {
            Term::Var(v) => Term::Var(*map.entry(*v).or_insert_with(|| gen.fresh())),
            Term::Const(_) => self.clone(),
            Term::Field(b, f) => Term::Field(Box::new(b.rename_into(map, gen)), f.clone()),
        }
    }

    /// Evaluates the term under a total assignment of variables to values.
    /// Returns `None` if a variable is unassigned or a field is missing.
    pub fn eval(&self, asg: &FxHashMap<Var, Value>) -> Option<Value> {
        match self {
            Term::Var(v) => asg.get(v).cloned(),
            Term::Const(v) => Some(v.clone()),
            Term::Field(b, f) => b.eval(asg)?.field(f).cloned(),
        }
    }

    /// Whether the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Const(_) => true,
            Term::Field(b, _) => b.is_ground(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
            Term::Field(b, n) => write!(f, "{b}.{n}"),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

/// A substitution: a finite map from variables to terms.
#[derive(Debug, Default, Clone)]
pub struct Subst {
    map: FxHashMap<Var, Term>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `v` to `t`, replacing any previous binding.
    pub fn bind(&mut self, v: Var, t: Term) {
        self.map.insert(v, t);
    }

    /// Looks up the binding of `v`.
    pub fn get(&self, v: Var) -> Option<&Term> {
        self.map.get(&v)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the substitution is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (Var, &Term)> {
        self.map.iter().map(|(v, t)| (*v, t))
    }
}

impl FromIterator<(Var, Term)> for Subst {
    fn from_iter<I: IntoIterator<Item = (Var, Term)>>(iter: I) -> Self {
        Subst {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitution_folds_record_fields() {
        let mut s = Subst::new();
        s.bind(
            Var(0),
            Term::Const(Value::record(vec![("origin", Value::int(7))])),
        );
        let t = Term::field(Term::var(Var(0)), "origin");
        assert_eq!(t.substitute(&s), Term::int(7));
    }

    #[test]
    fn substitution_keeps_unbound_vars() {
        let s = Subst::new();
        let t = Term::field(Term::var(Var(3)), "name");
        assert_eq!(t.substitute(&s), t);
    }

    #[test]
    fn rename_is_consistent_within_a_term() {
        let mut gen = VarGen::starting_at(100);
        let mut map = FxHashMap::default();
        let t = Term::field(Term::var(Var(1)), "f");
        let u = Term::var(Var(1));
        let t2 = t.rename_into(&mut map, &mut gen);
        let u2 = u.rename_into(&mut map, &mut gen);
        assert_eq!(t2, Term::field(Term::var(Var(100)), "f"));
        assert_eq!(u2, Term::var(Var(100)));
    }

    #[test]
    fn eval_total_assignment() {
        let mut asg = FxHashMap::default();
        asg.insert(Var(0), Value::record(vec![("x", Value::int(5))]));
        let t = Term::field(Term::var(Var(0)), "x");
        assert_eq!(t.eval(&asg), Some(Value::int(5)));
        let missing = Term::field(Term::var(Var(0)), "nope");
        assert_eq!(missing.eval(&asg), None);
    }

    #[test]
    fn vargen_reserve() {
        let mut g = VarGen::default();
        g.reserve_below(10);
        assert_eq!(g.fresh(), Var(10));
    }
}
