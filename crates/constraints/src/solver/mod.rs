//! Three-valued constraint satisfiability and exact solution enumeration.
//!
//! * [`satisfiable`] decides whether a constraint (possibly containing
//!   `not(·)`) is solvable against a [`DomainResolver`]; the answer is
//!   [`Truth::Sat`], [`Truth::Unsat`] or [`Truth::Unknown`] (sound in both
//!   definite directions).
//! * [`solutions`] enumerates the solution tuples of a constraint over a
//!   chosen variable list — the `[A(X⃗) ← φ]` instance semantics of §2.3 —
//!   exactly, when the solution space is finite and within budget.

mod conj;
mod enumerate;
mod unionfind;

pub use enumerate::{solutions, solutions_with, EnumResult};

use crate::constraint::{Constraint, DomainResolver};
use crate::normal::{dnf_with_budget, DEFAULT_DNF_BUDGET};

pub(crate) use conj::{Conflict, ConjSolver};
pub(crate) use unionfind::NodeId;

/// The verdict of a satisfiability test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truth {
    /// Definitely satisfiable.
    Sat,
    /// Definitely unsatisfiable.
    Unsat,
    /// Could not be decided within the configured budgets (treated as
    /// "possibly satisfiable" by the maintenance algorithms — see
    /// DESIGN.md §3 for why that is sound).
    Unknown,
}

impl Truth {
    /// Whether the constraint could have solutions (i.e. is not `Unsat`).
    pub fn possibly_sat(self) -> bool {
        !matches!(self, Truth::Unsat)
    }
}

/// Budgets bounding solver effort. Every budget failure degrades the
/// answer to `Unknown` rather than diverging or giving a wrong verdict.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Maximum number of DNF disjuncts expanded from `not(·)` literals.
    pub dnf_budget: usize,
    /// Maximum size of a per-class candidate enumeration.
    pub enum_limit: usize,
    /// Node-expansion budget for the disequality witness search.
    pub witness_budget: usize,
    /// Maximum number of candidate tuples examined by [`solutions`].
    pub product_budget: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            dnf_budget: DEFAULT_DNF_BUDGET,
            enum_limit: 4096,
            witness_budget: 50_000,
            product_budget: 500_000,
        }
    }
}

/// Decides satisfiability with default budgets.
pub fn satisfiable(c: &Constraint, resolver: &dyn DomainResolver) -> Truth {
    satisfiable_with(c, resolver, &SolverConfig::default())
}

/// Decides satisfiability with explicit budgets.
pub fn satisfiable_with(
    c: &Constraint,
    resolver: &dyn DomainResolver,
    config: &SolverConfig,
) -> Truth {
    let disjuncts = match dnf_with_budget(c, config.dnf_budget) {
        Ok(d) => d,
        Err(_) => return Truth::Unknown,
    };
    if disjuncts.is_empty() {
        return Truth::Unsat;
    }
    let mut any_unknown = false;
    for d in &disjuncts {
        let mut solver = ConjSolver::new(resolver, config);
        match solver.assert_all(d) {
            Err(Conflict) => continue,
            Ok(()) => match solver.verdict() {
                Truth::Sat => return Truth::Sat,
                Truth::Unknown => any_unknown = true,
                Truth::Unsat => {}
            },
        }
    }
    if any_unknown {
        Truth::Unknown
    } else {
        Truth::Unsat
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{CmpOp, Lit, NoDomains};
    use crate::term::{Term, Var};

    fn x() -> Term {
        Term::var(Var(0))
    }

    #[test]
    fn not_literal_satisfiability() {
        // X <= 5 & not(X <= 5 & X = 6): satisfiable (e.g. X = 0).
        let inner =
            Constraint::cmp(x(), CmpOp::Le, Term::int(5)).and(Constraint::eq(x(), Term::int(6)));
        let c = Constraint::cmp(x(), CmpOp::Le, Term::int(5)).and_lit(Lit::Not(inner));
        assert_eq!(satisfiable(&c, &NoDomains), Truth::Sat);
    }

    #[test]
    fn contradictory_not_unsat() {
        // X = 3 & not(X = 3): unsatisfiable.
        let c =
            Constraint::eq(x(), Term::int(3)).and_lit(Lit::Not(Constraint::eq(x(), Term::int(3))));
        assert_eq!(satisfiable(&c, &NoDomains), Truth::Unsat);
    }

    #[test]
    fn paper_example_6_deleted_constraint() {
        // X = c & Y = d & not(X = c & Y = d) is not solvable (Example 6).
        let y = Term::var(Var(1));
        let inner =
            Constraint::eq(x(), Term::str("c")).and(Constraint::eq(y.clone(), Term::str("d")));
        let c = Constraint::eq(x(), Term::str("c"))
            .and(Constraint::eq(y, Term::str("d")))
            .and_lit(Lit::Not(inner));
        assert_eq!(satisfiable(&c, &NoDomains), Truth::Unsat);
    }

    #[test]
    fn empty_dnf_is_unsat() {
        let c = Constraint::lit(Lit::Not(Constraint::truth()));
        assert_eq!(satisfiable(&c, &NoDomains), Truth::Unsat);
    }
}
