//! Exact enumeration of constraint solutions — the executable form of the
//! paper's instance semantics `[A(X⃗) ← φ]` (§2.3).
//!
//! Strategy: expand to DNF; per disjunct, run the conjunction solver to
//! obtain finite per-class candidate sets; take the product over *classes*
//! (variables in one equivalence class share a value by construction);
//! re-check every candidate assignment against the full disjunct with the
//! ground evaluator (which is exact); project onto the requested variables
//! and union across disjuncts.

use crate::constraint::{Constraint, DomainResolver};
use crate::fxhash::FxHashMap;
use crate::normal::dnf_for_enumeration;
use crate::solver::conj::{Candidates, Conflict, ConjSolver};
use crate::solver::{NodeId, SolverConfig};
use crate::term::Var;
use crate::value::Value;
use std::collections::BTreeSet;

/// Result of solution enumeration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnumResult {
    /// The exact, complete set of solution tuples (ordered per the
    /// requested variable list).
    Exact(BTreeSet<Vec<Value>>),
    /// The candidate space exceeded the product budget.
    Overflow,
    /// Some variable's solution space could not be finitely enumerated
    /// (infinite set, unresolved domain call, …).
    Unknown,
}

impl EnumResult {
    /// The tuples, if exact.
    pub fn exact(&self) -> Option<&BTreeSet<Vec<Value>>> {
        match self {
            EnumResult::Exact(s) => Some(s),
            _ => None,
        }
    }
}

/// Enumerates solutions of `c` projected to `vars` with default budgets.
pub fn solutions(c: &Constraint, vars: &[Var], resolver: &dyn DomainResolver) -> EnumResult {
    solutions_with(c, vars, resolver, &SolverConfig::default())
}

/// Enumerates solutions of `c` projected to `vars`.
pub fn solutions_with(
    c: &Constraint,
    vars: &[Var],
    resolver: &dyn DomainResolver,
    config: &SolverConfig,
) -> EnumResult {
    let disjuncts = match dnf_for_enumeration(c, config.dnf_budget, vars) {
        Ok(d) => d,
        Err(_) => return EnumResult::Unknown,
    };
    let mut out: BTreeSet<Vec<Value>> = BTreeSet::new();
    let mut budget = config.product_budget;
    for d in &disjuncts {
        match enumerate_disjunct(d, vars, resolver, config, &mut budget, &mut out) {
            Ok(()) => {}
            Err(e) => return e,
        }
    }
    EnumResult::Exact(out)
}

/// Eliminates *local existentials* from a primitive disjunct: a variable
/// occurring in exactly one literal (and not requested) is implicitly
/// existentially quantified there, so the literal can be discharged
/// instead of enumerated. This is what keeps `not(ψ)` exclusions cheap:
/// negating a region constraint ψ scatters ψ's standardized-apart
/// variables across disjuncts where each appears once.
///
/// Returns `None` when a discharged literal is unsatisfiable on its own
/// (the disjunct has no solutions).
fn eliminate_local_existentials(
    d: &Constraint,
    requested: &[Var],
    resolver: &dyn DomainResolver,
) -> Option<Constraint> {
    use crate::constraint::Lit;
    use crate::term::Term;
    let mut lits = d.lits.clone();
    loop {
        // Occurrence counts across literals.
        let mut occurrences: FxHashMap<Var, usize> = FxHashMap::default();
        for lit in &lits {
            let mut vs = Vec::new();
            lit.collect_vars(&mut vs);
            vs.sort_unstable();
            vs.dedup();
            for v in vs {
                *occurrences.entry(v).or_insert(0) += 1;
            }
        }
        let is_local = |v: &Var| occurrences.get(v) == Some(&1) && !requested.contains(v);
        let mut dropped = false;
        let mut i = 0;
        while i < lits.len() {
            let lit = &lits[i];
            // Whether a term mentions a local variable / is free of `v`.
            let has_local = |t: &Term| {
                let mut vs = Vec::new();
                t.collect_vars(&mut vs);
                vs.iter().any(&is_local)
            };
            let free_of = |t: &Term, v: &Var| {
                let mut vs = Vec::new();
                t.collect_vars(&mut vs);
                !vs.contains(v)
            };
            let verdict: Option<bool> = match lit {
                // ∃v̄ (a = b): a side rooted in a local variable can be
                // chosen freely; satisfiable when the other side does not
                // mention that variable (a value cannot equal a strict
                // subterm of itself, so `v = v.f` stays).
                Lit::Eq(a, b) => {
                    let side_local_free = |s: &Term, o: &Term| {
                        let mut vs = Vec::new();
                        s.collect_vars(&mut vs);
                        vs.iter().any(|v| is_local(v) && free_of(o, v))
                    };
                    if side_local_free(a, b) || side_local_free(b, a) {
                        Some(true)
                    } else {
                        None
                    }
                }
                // ∃v̄ (a != b): over the infinite universe a side
                // containing a local variable can always be made to
                // differ, unless the sides are syntactically identical.
                Lit::Neq(a, b) => {
                    if a == b {
                        Some(false)
                    } else if has_local(a) || has_local(b) {
                        Some(true)
                    } else {
                        None
                    }
                }
                // ∃v (v op k) over the integers: satisfiable for integer k.
                Lit::Cmp(a, _, b) => match (a, b) {
                    (Term::Var(v), Term::Const(Value::Int(_)))
                    | (Term::Const(Value::Int(_)), Term::Var(v))
                        if is_local(v) =>
                    {
                        Some(true)
                    }
                    (Term::Var(v), Term::Var(w)) if v != w && is_local(v) && is_local(w) => {
                        Some(true)
                    }
                    _ => None,
                },
                // ∃v (v in S): true iff S is nonempty (evaluable when the
                // arguments are ground).
                Lit::In(x, call) => match x {
                    Term::Var(v) if is_local(v) => {
                        let ground: Option<Vec<Value>> =
                            call.args.iter().map(|t| t.as_const().cloned()).collect();
                        ground.map(|args| {
                            !resolver.resolve(&call.domain, &call.func, &args).is_empty()
                        })
                    }
                    _ => None,
                },
                // ∃v̄ ¬(x in S(args)): with every variable of the literal
                // local, this fails only if the membership held
                // *universally* — impossible for proper (non-universal)
                // set-valued domain functions, which is the documented
                // assumption on [`crate::constraint::DomainResolver`]
                // implementations (see DESIGN.md §3). Ground calls are
                // checked exactly.
                Lit::NotIn(x, call) => {
                    let mut vs = Vec::new();
                    lit.collect_vars(&mut vs);
                    if vs.is_empty() {
                        // Fully ground: evaluate exactly.
                        let args: Option<Vec<Value>> =
                            call.args.iter().map(|t| t.as_const().cloned()).collect();
                        match (x.as_const(), args) {
                            (Some(v), Some(args)) => Some(
                                !resolver
                                    .resolve(&call.domain, &call.func, &args)
                                    .contains(v),
                            ),
                            _ => None,
                        }
                    } else if vs.iter().any(&is_local) {
                        // A local membership variable can dodge any proper
                        // set; a local *argument* variable can be fed an
                        // ill-typed value, for which domain functions
                        // return the empty set by convention
                        // ([`crate::constraint::DomainResolver`]) — either
                        // way the negation is witnessed.
                        Some(true)
                    } else {
                        None
                    }
                }
                Lit::Not(_) => None,
            };
            match verdict {
                Some(true) => {
                    lits.remove(i);
                    dropped = true;
                    // Occurrence counts changed: restart the scan.
                    break;
                }
                Some(false) => return None,
                None => i += 1,
            }
        }
        if !dropped {
            return Some(Constraint { lits });
        }
    }
}

fn enumerate_disjunct(
    raw: &Constraint,
    vars: &[Var],
    resolver: &dyn DomainResolver,
    config: &SolverConfig,
    budget: &mut usize,
    out: &mut BTreeSet<Vec<Value>>,
) -> Result<(), EnumResult> {
    let Some(d) = eliminate_local_existentials(raw, vars, resolver) else {
        return Ok(()); // a discharged literal was unsatisfiable
    };
    let d = &d;
    let mut solver = ConjSolver::new(resolver, config);
    if solver.assert_all(d).is_err() {
        // Unsatisfiable disjunct: contributes nothing.
        return Ok(());
    }
    // Requested variables that do not occur in the disjunct are
    // unconstrained, hence have infinitely many solutions.
    let var_classes = solver.var_classes();
    for v in vars {
        if !var_classes.contains_key(v) {
            return Err(EnumResult::Unknown);
        }
    }
    // Group the disjunct's *enumerable* variables by class: variables
    // occurring only inside opaque `not(·)` literals are existential
    // within the negation and must not be enumerated.
    let mut d_vars: Vec<Var> = Vec::new();
    for lit in &d.lits {
        if !matches!(lit, crate::constraint::Lit::Not(_)) {
            lit.collect_vars(&mut d_vars);
        }
    }
    d_vars.extend(vars.iter().copied());
    d_vars.sort_unstable();
    d_vars.dedup();
    d_vars.retain(|v| var_classes.contains_key(v));
    let mut class_vars: FxHashMap<NodeId, Vec<Var>> = FxHashMap::default();
    for v in &d_vars {
        let root = var_classes[v];
        class_vars.entry(root).or_default().push(*v);
    }
    let mut roots: Vec<NodeId> = class_vars.keys().copied().collect();
    roots.sort_unstable();
    // Static candidates from constraint propagation, where finite.
    let mut static_cands: FxHashMap<NodeId, Vec<Value>> = FxHashMap::default();
    for r in &roots {
        match solver.candidates_for_root(*r) {
            Err(Conflict) => return Ok(()), // class empty: no solutions
            Ok(Candidates::Finite(v)) => {
                static_cands.insert(*r, v);
            }
            Ok(Candidates::Infinite) => {}
        }
    }
    let mut search = JoinSearch {
        d,
        vars,
        resolver,
        config,
        class_vars: &class_vars,
        var_classes: &var_classes,
        static_cands: &static_cands,
        asg: FxHashMap::default(),
        assigned: Vec::new(),
        steps: 0,
        budget: *budget,
        out,
    };
    let remaining = roots.clone();
    let result = search.descend(&remaining);
    *budget = budget.saturating_sub(search.steps);
    result
}

/// Backtracking join search over equivalence classes: at every depth the
/// next class is the one with the fewest *currently available*
/// candidates — either statically finite (intervals, direct memberships)
/// or generated dynamically from a positive `in(X, d:f(args))` literal
/// whose argument variables are already assigned (the dependent joins of
/// the mediator clauses, e.g. `in(Y, facedb:findname(P2))`). Literals are
/// checked eagerly as soon as all their variables are assigned, pruning
/// the search space the way a join engine pushes selections.
struct JoinSearch<'a> {
    d: &'a Constraint,
    vars: &'a [Var],
    resolver: &'a dyn DomainResolver,
    config: &'a SolverConfig,
    class_vars: &'a FxHashMap<NodeId, Vec<Var>>,
    var_classes: &'a FxHashMap<Var, NodeId>,
    static_cands: &'a FxHashMap<NodeId, Vec<Value>>,
    asg: FxHashMap<Var, Value>,
    assigned: Vec<NodeId>,
    steps: usize,
    budget: usize,
    out: &'a mut BTreeSet<Vec<Value>>,
}

impl<'a> JoinSearch<'a> {
    fn descend(&mut self, remaining: &[NodeId]) -> Result<(), EnumResult> {
        if remaining.is_empty() {
            // Full assignment: exact semantic check of every literal.
            if self.d.eval_ground(&self.asg, self.resolver) == Some(true) {
                let tuple: Option<Vec<Value>> =
                    self.vars.iter().map(|v| self.asg.get(v).cloned()).collect();
                if let Some(t) = tuple {
                    self.out.insert(t);
                }
            }
            return Ok(());
        }
        // Pick the unassigned class with the fewest available candidates.
        let mut best: Option<(usize, NodeId, Vec<Value>)> = None;
        for &r in remaining {
            let cands = self.available_candidates(r)?;
            if let Some(c) = cands {
                if best.as_ref().is_none_or(|(n, _, _)| c.len() < *n) {
                    let len = c.len();
                    best = Some((len, r, c));
                    if len <= 1 {
                        break; // cannot do better
                    }
                }
            }
        }
        let Some((_, root, cands)) = best else {
            // No class is enumerable at this point: infinite solutions.
            return Err(EnumResult::Unknown);
        };
        let rest: Vec<NodeId> = remaining.iter().copied().filter(|&r| r != root).collect();
        let class = &self.class_vars[&root];
        for value in cands {
            self.steps += 1;
            if self.steps > self.budget {
                return Err(EnumResult::Overflow);
            }
            for v in class {
                self.asg.insert(*v, value.clone());
            }
            self.assigned.push(root);
            let ok = self.lits_consistent();
            if ok {
                self.descend(&rest)?;
            }
            self.assigned.pop();
            for v in class {
                self.asg.remove(v);
            }
        }
        Ok(())
    }

    /// Evaluates every literal whose variables are all assigned; `false`
    /// prunes the branch. (Literals with unassigned variables are checked
    /// later, and everything is re-checked at the leaf.)
    fn lits_consistent(&self) -> bool {
        for lit in &self.d.lits {
            let mut vs = Vec::new();
            lit.collect_vars(&mut vs);
            if vs.iter().all(|v| self.asg.contains_key(v))
                && lit.eval_ground(&self.asg, self.resolver) != Some(true)
            {
                return false;
            }
        }
        true
    }

    /// Candidates for class `r` available *now*: statically finite sets,
    /// or dynamic generation through a positive membership literal whose
    /// arguments are fully assigned.
    fn available_candidates(&mut self, r: NodeId) -> Result<Option<Vec<Value>>, EnumResult> {
        let mut best: Option<Vec<Value>> = self.static_cands.get(&r).cloned();
        for lit in &self.d.lits {
            let crate::constraint::Lit::In(x, call) = lit else {
                continue;
            };
            let Some(xv) = x.as_var() else { continue };
            if self.var_classes[&xv] != r {
                continue;
            }
            let mut argvars = Vec::new();
            for t in &call.args {
                t.collect_vars(&mut argvars);
            }
            if !argvars.iter().all(|v| self.asg.contains_key(v)) {
                continue;
            }
            let Some(args) = call.eval_args(&self.asg) else {
                // Ill-typed under this assignment: the literal can never
                // hold, so the branch is dead (lits_consistent will catch
                // it once x is assigned; give it no candidates now).
                return Ok(Some(Vec::new()));
            };
            self.steps += 1;
            if self.steps > self.budget {
                return Err(EnumResult::Overflow);
            }
            let set = self.resolver.resolve(&call.domain, &call.func, &args);
            if let Some(vals) = set.enumerate(self.config.enum_limit) {
                if best.as_ref().is_none_or(|b| vals.len() < b.len()) {
                    best = Some(vals);
                }
            }
        }
        Ok(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{Call, CmpOp, Lit, NoDomains};
    use crate::term::Term;
    use crate::valueset::ValueSet;

    fn x() -> Term {
        Term::var(Var(0))
    }
    fn y() -> Term {
        Term::var(Var(1))
    }

    fn tuples(r: &EnumResult) -> Vec<Vec<Value>> {
        r.exact().unwrap().iter().cloned().collect()
    }

    #[test]
    fn bounded_interval_enumeration() {
        let c = Constraint::cmp(x(), CmpOp::Ge, Term::int(1)).and(Constraint::cmp(
            x(),
            CmpOp::Le,
            Term::int(3),
        ));
        let r = solutions(&c, &[Var(0)], &NoDomains);
        assert_eq!(
            tuples(&r),
            vec![
                vec![Value::int(1)],
                vec![Value::int(2)],
                vec![Value::int(3)]
            ]
        );
    }

    #[test]
    fn paper_example_semantics() {
        // φ = (X = 2 & Y != X & Y > X): [p(X,Y) <- φ] = {p(2,3), p(2,4), ...}
        // bounded here with Y <= 5 for finiteness.
        let c = Constraint::eq(x(), Term::int(2))
            .and(Constraint::neq(y(), x()))
            .and(Constraint::cmp(y(), CmpOp::Gt, x()))
            .and(Constraint::cmp(y(), CmpOp::Le, Term::int(5)));
        let r = solutions(&c, &[Var(0), Var(1)], &NoDomains);
        assert_eq!(
            tuples(&r),
            vec![
                vec![Value::int(2), Value::int(3)],
                vec![Value::int(2), Value::int(4)],
                vec![Value::int(2), Value::int(5)],
            ]
        );
    }

    #[test]
    fn unbounded_is_unknown() {
        let c = Constraint::cmp(x(), CmpOp::Ge, Term::int(0));
        assert_eq!(solutions(&c, &[Var(0)], &NoDomains), EnumResult::Unknown);
    }

    #[test]
    fn unsat_gives_empty() {
        let c = Constraint::eq(x(), Term::int(1)).and(Constraint::eq(x(), Term::int(2)));
        let r = solutions(&c, &[Var(0)], &NoDomains);
        assert!(r.exact().unwrap().is_empty());
    }

    #[test]
    fn not_literal_carves_out_point() {
        // 1 <= X <= 4 & not(X = 2): {1, 3, 4}
        let c = Constraint::cmp(x(), CmpOp::Ge, Term::int(1))
            .and(Constraint::cmp(x(), CmpOp::Le, Term::int(4)))
            .and_lit(Lit::Not(Constraint::eq(x(), Term::int(2))));
        let r = solutions(&c, &[Var(0)], &NoDomains);
        assert_eq!(
            tuples(&r),
            vec![
                vec![Value::int(1)],
                vec![Value::int(3)],
                vec![Value::int(4)]
            ]
        );
    }

    #[test]
    fn membership_enumeration() {
        struct R;
        impl DomainResolver for R {
            fn resolve(&self, _d: &str, _f: &str, _a: &[Value]) -> ValueSet {
                ValueSet::finite([Value::str("a"), Value::str("b")])
            }
        }
        let c = Constraint::member(x(), Call::new("d", "f", vec![]))
            .and(Constraint::neq(x(), Term::str("a")));
        let r = solutions(&c, &[Var(0)], &R);
        assert_eq!(tuples(&r), vec![vec![Value::str("b")]]);
    }

    #[test]
    fn projection_onto_subset_of_vars() {
        // X in 1..2, Y = X+? — use equality: Y = X; project onto Y only.
        let c = Constraint::cmp(x(), CmpOp::Ge, Term::int(1))
            .and(Constraint::cmp(x(), CmpOp::Le, Term::int(2)))
            .and(Constraint::eq(y(), x()));
        let r = solutions(&c, &[Var(1)], &NoDomains);
        assert_eq!(tuples(&r), vec![vec![Value::int(1)], vec![Value::int(2)]]);
    }

    #[test]
    fn aux_var_projection_dedups() {
        // Aux var Y ranges over 1..3 but we only ask for X = 9.
        let c = Constraint::eq(x(), Term::int(9))
            .and(Constraint::cmp(y(), CmpOp::Ge, Term::int(1)))
            .and(Constraint::cmp(y(), CmpOp::Le, Term::int(3)));
        let r = solutions(&c, &[Var(0)], &NoDomains);
        assert_eq!(tuples(&r), vec![vec![Value::int(9)]]);
    }

    #[test]
    fn ground_constraint_no_vars() {
        let c = Constraint::eq(Term::int(1), Term::int(1));
        let r = solutions(&c, &[], &NoDomains);
        assert_eq!(tuples(&r), vec![Vec::<Value>::new()]);
        let c2 = Constraint::eq(Term::int(1), Term::int(2));
        let r2 = solutions(&c2, &[], &NoDomains);
        assert!(r2.exact().unwrap().is_empty());
    }

    #[test]
    fn overflow_detected() {
        let cfg = SolverConfig {
            product_budget: 4,
            ..SolverConfig::default()
        };
        let c = Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
            x(),
            CmpOp::Le,
            Term::int(100),
        ));
        assert_eq!(
            solutions_with(&c, &[Var(0)], &NoDomains, &cfg),
            EnumResult::Overflow
        );
    }
}
