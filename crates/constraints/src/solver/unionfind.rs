//! Union-find over solver nodes with path compression and union by rank.
//! Per-class payloads are owned by the conjunction solver, which merges
//! them when classes union; this structure only tracks representatives.

/// Index of a solver node.
pub type NodeId = usize;

/// Disjoint-set forest.
#[derive(Debug, Default, Clone)]
pub struct UnionFind {
    parent: Vec<NodeId>,
    rank: Vec<u32>,
}

impl UnionFind {
    /// Creates an empty forest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fresh singleton node and returns its id.
    pub fn add(&mut self) -> NodeId {
        let id = self.parent.len();
        self.parent.push(id);
        self.rank.push(0);
        id
    }

    /// Finds the representative of `x`, compressing the path.
    pub fn find(&mut self, x: NodeId) -> NodeId {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Unions the classes of `a` and `b`. Returns `Some((winner, loser))`
    /// when a merge happened — the caller must fold the loser's payload
    /// into the winner's — or `None` if they were already one class.
    pub fn union(&mut self, a: NodeId, b: NodeId) -> Option<(NodeId, NodeId)> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return None;
        }
        let (winner, loser) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[loser] = winner;
        if self.rank[winner] == self.rank[loser] {
            self.rank[winner] += 1;
        }
        Some((winner, loser))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new();
        let a = uf.add();
        let b = uf.add();
        let c = uf.add();
        assert_ne!(uf.find(a), uf.find(b));
        let merged = uf.union(a, b).unwrap();
        assert!(merged.0 != merged.1);
        assert_eq!(uf.find(a), uf.find(b));
        assert_ne!(uf.find(a), uf.find(c));
        assert!(uf.union(a, b).is_none());
    }

    #[test]
    fn transitive_union() {
        let mut uf = UnionFind::new();
        let nodes: Vec<_> = (0..10).map(|_| uf.add()).collect();
        for w in nodes.windows(2) {
            uf.union(w[0], w[1]);
        }
        let r = uf.find(nodes[0]);
        assert!(nodes.iter().all(|&n| uf.find(n) == r));
    }
}
