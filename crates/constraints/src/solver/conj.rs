//! Decision procedure for *primitive* conjunctions (no `not(·)`): the
//! *engine room* of the satisfiability tests that `T_P`, `Del`, `Add`,
//! `P_OUT` and `P_ADD` perform.
//!
//! The procedure combines:
//! * congruence-closure-style union-find over variables and record-field
//!   projections,
//! * integer interval reasoning with an ordering graph (SCC contraction
//!   for `X <= Y <= X` cycles, then exact one-pass DAG bound propagation),
//! * evaluation of DCA-atoms `in(X, d:f(args))` against a
//!   [`DomainResolver`], intersecting the returned [`ValueSet`]s,
//! * finite-candidate witness search for disequality clusters.
//!
//! The verdict is three-valued ([`Truth`]): `Sat` and `Unsat` are
//! definitive; `Unknown` arises from deferred DCA-atoms whose arguments
//! never become ground, oversized candidate spaces, or exhausted witness
//! budgets. Callers treat `Unknown` as "possibly satisfiable", which is
//! sound for view maintenance (see DESIGN.md §3).

use crate::constraint::{Call, CmpOp, Constraint, DomainResolver, Lit};
use crate::fxhash::FxHashMap;
use crate::solver::unionfind::{NodeId, UnionFind};
use crate::solver::{SolverConfig, Truth};
use crate::term::{Term, Var};
use crate::value::Value;
use crate::valueset::{IntBound, ValueSet};
use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::sync::Arc;

/// Marker for a definite inconsistency (the conjunction is unsatisfiable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Conflict;

/// The representation of a term inside the solver.
#[derive(Debug, Clone)]
enum Repr {
    Val(Value),
    Node(NodeId),
}

/// Pending structural operations, processed via a worklist to avoid deep
/// recursion through field-congruence cascades.
#[derive(Debug)]
enum Op {
    Union(NodeId, NodeId),
    Bind(NodeId, Value),
}

/// Per-equivalence-class knowledge.
#[derive(Debug, Clone)]
struct ClassData {
    binding: Option<Value>,
    /// Whether the class must be an integer (it participates in a
    /// comparison literal).
    numeric: bool,
    lo: IntBound,
    hi: IntBound,
    /// Values this class must not take (from `X != c`).
    excluded: BTreeSet<Value>,
    /// Sets this class must belong to (from DCA-atoms).
    sets: Vec<ValueSet>,
    /// Sets this class must avoid (from negated DCA-atoms).
    anti: Vec<ValueSet>,
    /// Field-projection nodes, for congruence on records.
    fields: FxHashMap<Arc<str>, NodeId>,
}

impl ClassData {
    fn new() -> Self {
        ClassData {
            binding: None,
            numeric: false,
            lo: IntBound::Open,
            hi: IntBound::Open,
            excluded: BTreeSet::new(),
            sets: Vec::new(),
            anti: Vec::new(),
            fields: FxHashMap::default(),
        }
    }
}

/// Candidate values for one class after constraint propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Candidates {
    /// Exactly these values remain possible.
    Finite(Vec<Value>),
    /// Infinitely many (or more than the enumeration budget) remain.
    Infinite,
}

/// A deferred DCA-atom: `positive` distinguishes `in` from `notin`.
#[derive(Debug, Clone)]
struct Residual {
    x: Term,
    call: Call,
    positive: bool,
}

pub(crate) struct ConjSolver<'a> {
    resolver: &'a dyn DomainResolver,
    config: &'a SolverConfig,
    uf: UnionFind,
    data: Vec<Option<ClassData>>,
    var_nodes: FxHashMap<Var, NodeId>,
    diseqs: Vec<(NodeId, NodeId)>,
    /// Ordering edges `a <(=) b`; bool = strict.
    edges: Vec<(NodeId, NodeId, bool)>,
    residuals: Vec<Residual>,
    /// Set when the verdict cannot be definitive.
    unknown: bool,
    ops: VecDeque<Op>,
}

impl<'a> ConjSolver<'a> {
    pub(crate) fn new(resolver: &'a dyn DomainResolver, config: &'a SolverConfig) -> Self {
        ConjSolver {
            resolver,
            config,
            uf: UnionFind::new(),
            data: Vec::new(),
            var_nodes: FxHashMap::default(),
            diseqs: Vec::new(),
            edges: Vec::new(),
            residuals: Vec::new(),
            unknown: false,
            ops: VecDeque::new(),
        }
    }

    /// Ingests a primitive conjunction and propagates to fixpoint.
    /// Precondition: `c` contains no `Lit::Not` (use DNF first).
    pub(crate) fn assert_all(&mut self, c: &Constraint) -> Result<(), Conflict> {
        for lit in &c.lits {
            self.assert_lit(lit)?;
        }
        self.propagate_fixpoint()
    }

    /// The final three-valued verdict. Call after `assert_all`.
    pub(crate) fn verdict(&mut self) -> Truth {
        match self.final_check() {
            Err(Conflict) => Truth::Unsat,
            Ok(true) => Truth::Sat,
            Ok(false) => Truth::Unknown,
        }
    }

    // ---- node plumbing -------------------------------------------------

    fn new_node(&mut self) -> NodeId {
        let id = self.uf.add();
        self.data.push(Some(ClassData::new()));
        id
    }

    fn var_node(&mut self, v: Var) -> NodeId {
        if let Some(&n) = self.var_nodes.get(&v) {
            return n;
        }
        let n = self.new_node();
        self.var_nodes.insert(v, n);
        n
    }

    fn root_data(&mut self, n: NodeId) -> &mut ClassData {
        let r = self.uf.find(n);
        self.data[r].as_mut().expect("root data present")
    }

    fn repr(&mut self, t: &Term) -> Result<Repr, Conflict> {
        match t {
            Term::Const(v) => Ok(Repr::Val(v.clone())),
            Term::Var(v) => Ok(Repr::Node(self.var_node(*v))),
            Term::Field(base, f) => {
                let b = self.repr(base)?;
                match b {
                    // Projection of a constant: fold, or fail (a record
                    // without the field has no solutions).
                    Repr::Val(v) => v.field(f).cloned().map(Repr::Val).ok_or(Conflict),
                    Repr::Node(n) => {
                        let r = self.uf.find(n);
                        let d = self.data[r].as_ref().expect("root");
                        if let Some(bv) = &d.binding {
                            return bv.field(f).cloned().map(Repr::Val).ok_or(Conflict);
                        }
                        if let Some(&fnode) = d.fields.get(f.as_ref()) {
                            return Ok(Repr::Node(fnode));
                        }
                        let fnode = self.new_node();
                        self.root_data(r).fields.insert(f.clone(), fnode);
                        Ok(Repr::Node(fnode))
                    }
                }
            }
        }
    }

    // ---- literal ingestion ---------------------------------------------

    fn assert_lit(&mut self, lit: &Lit) -> Result<(), Conflict> {
        match lit {
            Lit::Eq(a, b) => {
                let (ra, rb) = (self.repr(a)?, self.repr(b)?);
                self.assert_eq_repr(ra, rb)?;
            }
            Lit::Neq(a, b) => {
                let (ra, rb) = (self.repr(a)?, self.repr(b)?);
                self.assert_neq_repr(ra, rb)?;
            }
            Lit::Cmp(a, op, b) => {
                let (ra, rb) = (self.repr(a)?, self.repr(b)?);
                self.assert_cmp_repr(ra, *op, rb)?;
            }
            Lit::In(x, call) => {
                self.assert_membership(x, call, true)?;
            }
            Lit::NotIn(x, call) => {
                self.assert_membership(x, call, false)?;
            }
            Lit::Not(_) => {
                // Callers must expand to DNF first; treat a stray Not
                // conservatively.
                self.unknown = true;
            }
        }
        self.drain_ops()
    }

    fn assert_eq_repr(&mut self, a: Repr, b: Repr) -> Result<(), Conflict> {
        match (a, b) {
            (Repr::Val(x), Repr::Val(y)) => {
                if x == y {
                    Ok(())
                } else {
                    Err(Conflict)
                }
            }
            (Repr::Node(n), Repr::Val(v)) | (Repr::Val(v), Repr::Node(n)) => {
                self.ops.push_back(Op::Bind(n, v));
                Ok(())
            }
            (Repr::Node(x), Repr::Node(y)) => {
                self.ops.push_back(Op::Union(x, y));
                Ok(())
            }
        }
    }

    fn assert_neq_repr(&mut self, a: Repr, b: Repr) -> Result<(), Conflict> {
        match (a, b) {
            (Repr::Val(x), Repr::Val(y)) => {
                if x != y {
                    Ok(())
                } else {
                    Err(Conflict)
                }
            }
            (Repr::Node(n), Repr::Val(v)) | (Repr::Val(v), Repr::Node(n)) => {
                let d = self.root_data(n);
                if d.binding.as_ref() == Some(&v) {
                    return Err(Conflict);
                }
                d.excluded.insert(v);
                Ok(())
            }
            (Repr::Node(x), Repr::Node(y)) => {
                self.diseqs.push((x, y));
                Ok(())
            }
        }
    }

    fn assert_cmp_repr(&mut self, a: Repr, op: CmpOp, b: Repr) -> Result<(), Conflict> {
        match (a, b) {
            (Repr::Val(x), Repr::Val(y)) => match (x, y) {
                (Value::Int(i), Value::Int(j)) => {
                    if op.eval(i, j) {
                        Ok(())
                    } else {
                        Err(Conflict)
                    }
                }
                // Comparisons on non-integers are false.
                _ => Err(Conflict),
            },
            (Repr::Node(n), Repr::Val(v)) => self.tighten_const(n, op, v),
            (Repr::Val(v), Repr::Node(n)) => self.tighten_const(n, op.flip(), v),
            (Repr::Node(x), Repr::Node(y)) => {
                self.root_data(x).numeric = true;
                self.root_data(y).numeric = true;
                match op {
                    CmpOp::Lt => self.edges.push((x, y, true)),
                    CmpOp::Le => self.edges.push((x, y, false)),
                    CmpOp::Gt => self.edges.push((y, x, true)),
                    CmpOp::Ge => self.edges.push((y, x, false)),
                }
                Ok(())
            }
        }
    }

    /// Applies `node op k` for a constant `k`.
    fn tighten_const(&mut self, n: NodeId, op: CmpOp, v: Value) -> Result<(), Conflict> {
        let k = match v {
            Value::Int(k) => k,
            _ => return Err(Conflict),
        };
        let d = self.root_data(n);
        d.numeric = true;
        match op {
            CmpOp::Lt => d.hi = d.hi.tighten_upper(IntBound::Incl(k.saturating_sub(1))),
            CmpOp::Le => d.hi = d.hi.tighten_upper(IntBound::Incl(k)),
            CmpOp::Gt => d.lo = d.lo.tighten_lower(IntBound::Incl(k.saturating_add(1))),
            CmpOp::Ge => d.lo = d.lo.tighten_lower(IntBound::Incl(k)),
        }
        self.check_class(n)
    }

    fn assert_membership(&mut self, x: &Term, call: &Call, positive: bool) -> Result<(), Conflict> {
        match self.try_ground_call(call)? {
            Some(args) => {
                let set = self.resolver.resolve(&call.domain, &call.func, &args);
                self.apply_membership(x, set, positive)
            }
            None => {
                // Materialize the membership variable's node too, so the
                // enumerator sees its class even while the call is
                // deferred.
                let _ = self.repr(x)?;
                self.residuals.push(Residual {
                    x: x.clone(),
                    call: call.clone(),
                    positive,
                });
                Ok(())
            }
        }
    }

    /// Grounds the call arguments if every argument is a constant or a
    /// bound class; `None` when still unresolved. Always materializes
    /// solver nodes for *every* argument (the enumerator relies on every
    /// variable of the conjunction having a class).
    fn try_ground_call(&mut self, call: &Call) -> Result<Option<Vec<Value>>, Conflict> {
        let mut args = Vec::with_capacity(call.args.len());
        let mut unresolved = false;
        for t in &call.args {
            match self.repr(t)? {
                Repr::Val(v) => args.push(v),
                Repr::Node(n) => match self.root_data(n).binding.clone() {
                    Some(v) => args.push(v),
                    None => unresolved = true,
                },
            }
        }
        Ok(if unresolved { None } else { Some(args) })
    }

    fn apply_membership(
        &mut self,
        x: &Term,
        set: ValueSet,
        positive: bool,
    ) -> Result<(), Conflict> {
        match self.repr(x)? {
            Repr::Val(v) => {
                if set.contains(&v) == positive {
                    Ok(())
                } else {
                    Err(Conflict)
                }
            }
            Repr::Node(n) => {
                {
                    let d = self.root_data(n);
                    if let Some(b) = d.binding.clone() {
                        return if set.contains(&b) == positive {
                            Ok(())
                        } else {
                            Err(Conflict)
                        };
                    }
                    if positive {
                        d.sets.push(set);
                    } else {
                        d.anti.push(set);
                    }
                }
                self.check_class(n)
            }
        }
    }

    // ---- structural operations ------------------------------------------

    fn drain_ops(&mut self) -> Result<(), Conflict> {
        while let Some(op) = self.ops.pop_front() {
            match op {
                Op::Union(a, b) => self.do_union(a, b)?,
                Op::Bind(n, v) => self.do_bind(n, v)?,
            }
        }
        Ok(())
    }

    fn do_union(&mut self, a: NodeId, b: NodeId) -> Result<(), Conflict> {
        let Some((winner, loser)) = self.uf.union(a, b) else {
            return Ok(());
        };
        let ld = self.data[loser].take().expect("loser data");
        let winner_binding = self.data[winner]
            .as_ref()
            .expect("winner data")
            .binding
            .clone();

        let mut deferred_bind: Option<Value> = None;
        match (&winner_binding, &ld.binding) {
            (Some(x), Some(y)) if x != y => return Err(Conflict),
            (None, Some(y)) => deferred_bind = Some(y.clone()),
            _ => {}
        }
        let mut pending_unions: Vec<(NodeId, NodeId)> = Vec::new();
        {
            let wd = self.data[winner].as_mut().expect("winner data");
            wd.numeric |= ld.numeric;
            wd.lo = wd.lo.tighten_lower(ld.lo);
            wd.hi = wd.hi.tighten_upper(ld.hi);
            wd.excluded.extend(ld.excluded);
            wd.sets.extend(ld.sets);
            wd.anti.extend(ld.anti);
            for (name, lnode) in ld.fields {
                if let Some(&wnode) = wd.fields.get(&name) {
                    pending_unions.push((wnode, lnode));
                } else {
                    wd.fields.insert(name, lnode);
                }
            }
        }
        for (x, y) in pending_unions {
            self.ops.push_back(Op::Union(x, y));
        }
        if let Some(v) = deferred_bind {
            // Clear and re-bind so the merged class revalidates fully.
            self.data[winner].as_mut().expect("winner data").binding = None;
            self.ops.push_back(Op::Bind(winner, v));
        } else if let Some(v) = winner_binding {
            // Winner was already bound: validate against merged constraints
            // and propagate to newly acquired field nodes.
            self.validate_binding(winner, &v)?;
            self.propagate_binding_to_fields(winner, &v)?;
        }
        self.check_class(winner)
    }

    fn do_bind(&mut self, n: NodeId, v: Value) -> Result<(), Conflict> {
        let r = self.uf.find(n);
        let d = self.data[r].as_mut().expect("root data");
        if let Some(b) = &d.binding {
            return if *b == v { Ok(()) } else { Err(Conflict) };
        }
        d.binding = Some(v.clone());
        self.validate_binding(r, &v)?;
        self.propagate_binding_to_fields(r, &v)
    }

    fn validate_binding(&mut self, r: NodeId, v: &Value) -> Result<(), Conflict> {
        let d = self.data[self.uf.find(r)].as_ref().expect("root data");
        if d.numeric && !matches!(v, Value::Int(_)) {
            return Err(Conflict);
        }
        if let Value::Int(i) = v {
            if let IntBound::Incl(lo) = d.lo {
                if *i < lo {
                    return Err(Conflict);
                }
            }
            if let IntBound::Incl(hi) = d.hi {
                if *i > hi {
                    return Err(Conflict);
                }
            }
        } else if !matches!((d.lo, d.hi), (IntBound::Open, IntBound::Open)) {
            return Err(Conflict);
        }
        if d.excluded.contains(v) {
            return Err(Conflict);
        }
        if d.sets.iter().any(|s| !s.contains(v)) {
            return Err(Conflict);
        }
        if d.anti.iter().any(|s| s.contains(v)) {
            return Err(Conflict);
        }
        Ok(())
    }

    fn propagate_binding_to_fields(&mut self, r: NodeId, v: &Value) -> Result<(), Conflict> {
        let fields: Vec<(Arc<str>, NodeId)> = {
            let d = self.data[self.uf.find(r)].as_ref().expect("root data");
            d.fields.iter().map(|(k, &n)| (k.clone(), n)).collect()
        };
        for (name, fnode) in fields {
            match v.field(&name) {
                Some(fv) => self.ops.push_back(Op::Bind(fnode, fv.clone())),
                None => return Err(Conflict),
            }
        }
        Ok(())
    }

    /// Cheap per-class consistency check (no witness search).
    fn check_class(&mut self, n: NodeId) -> Result<(), Conflict> {
        let r = self.uf.find(n);
        let d = self.data[r].as_ref().expect("root data");
        if let (IntBound::Incl(lo), IntBound::Incl(hi)) = (d.lo, d.hi) {
            if lo > hi {
                return Err(Conflict);
            }
        }
        if let Some(b) = &d.binding {
            if d.sets.iter().any(|s| !s.contains(b)) || d.anti.iter().any(|s| s.contains(b)) {
                return Err(Conflict);
            }
            if d.excluded.contains(b) {
                return Err(Conflict);
            }
            // The interval may have been tightened *after* the binding
            // was set: re-validate (the bind-time check only covers the
            // constraints known then).
            match b {
                Value::Int(i) => {
                    if let IntBound::Incl(lo) = d.lo {
                        if *i < lo {
                            return Err(Conflict);
                        }
                    }
                    if let IntBound::Incl(hi) = d.hi {
                        if *i > hi {
                            return Err(Conflict);
                        }
                    }
                }
                _ => {
                    if d.numeric || !matches!((d.lo, d.hi), (IntBound::Open, IntBound::Open)) {
                        return Err(Conflict);
                    }
                }
            }
        }
        if d.sets.iter().any(|s| s.is_empty()) {
            return Err(Conflict);
        }
        Ok(())
    }

    // ---- propagation loop ------------------------------------------------

    fn propagate_fixpoint(&mut self) -> Result<(), Conflict> {
        self.drain_ops()?;
        loop {
            let mut changed = self.retry_residuals()?;
            changed |= self.scc_merge()?;
            if changed {
                continue;
            }
            self.propagate_bounds()?;
            changed = self.promote_singletons()?;
            if !changed {
                break;
            }
        }
        Ok(())
    }

    fn retry_residuals(&mut self) -> Result<bool, Conflict> {
        let mut remaining = Vec::new();
        let mut changed = false;
        let residuals = std::mem::take(&mut self.residuals);
        for res in residuals {
            match self.try_ground_call(&res.call)? {
                Some(args) => {
                    let set = self
                        .resolver
                        .resolve(&res.call.domain, &res.call.func, &args);
                    self.apply_membership(&res.x, set, res.positive)?;
                    self.drain_ops()?;
                    changed = true;
                }
                None => remaining.push(res),
            }
        }
        self.residuals = remaining;
        Ok(changed)
    }

    /// Contracts strongly connected components of the ordering graph.
    /// A strict edge within a component is a contradiction (`X < X`).
    fn scc_merge(&mut self) -> Result<bool, Conflict> {
        if self.edges.is_empty() {
            return Ok(false);
        }
        // Canonicalize edges to roots, dropping trivial `a <= a` loops and
        // rejecting `a < a`.
        let mut canon: Vec<(NodeId, NodeId, bool)> = Vec::with_capacity(self.edges.len());
        let edges = self.edges.clone();
        for (a, b, strict) in edges {
            let (ra, rb) = (self.uf.find(a), self.uf.find(b));
            if ra == rb {
                if strict {
                    return Err(Conflict);
                }
                continue;
            }
            canon.push((ra, rb, strict));
        }
        // Tarjan over the set of roots involved.
        let mut ids: Vec<NodeId> = canon.iter().flat_map(|&(a, b, _)| [a, b]).collect();
        ids.sort_unstable();
        ids.dedup();
        let index_of: FxHashMap<NodeId, usize> =
            ids.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let n = ids.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b, _) in &canon {
            adj[index_of[&a]].push(index_of[&b]);
        }
        let sccs = tarjan_sccs(&adj);
        // Map node -> scc id.
        let mut comp = vec![0usize; n];
        for (cid, scc) in sccs.iter().enumerate() {
            for &v in scc {
                comp[v] = cid;
            }
        }
        let mut changed = false;
        for scc in &sccs {
            if scc.len() > 1 {
                // Everything in one SCC must be equal; merge.
                for w in scc.windows(2) {
                    self.ops.push_back(Op::Union(ids[w[0]], ids[w[1]]));
                }
                changed = true;
            }
        }
        // Strict edge inside a component: contradiction.
        for &(a, b, strict) in &canon {
            if strict && comp[index_of[&a]] == comp[index_of[&b]] {
                return Err(Conflict);
            }
        }
        self.drain_ops()?;
        Ok(changed)
    }

    /// Exact bound propagation over the (acyclic, post-SCC) ordering graph:
    /// lower bounds flow forward in topological order, upper bounds flow
    /// backward.
    fn propagate_bounds(&mut self) -> Result<(), Conflict> {
        if self.edges.is_empty() {
            return Ok(());
        }
        let mut canon: Vec<(NodeId, NodeId, bool)> = Vec::new();
        let edges = self.edges.clone();
        for (a, b, strict) in edges {
            let (ra, rb) = (self.uf.find(a), self.uf.find(b));
            if ra == rb {
                if strict {
                    return Err(Conflict);
                }
                continue;
            }
            canon.push((ra, rb, strict));
        }
        if canon.is_empty() {
            return Ok(());
        }
        let mut ids: Vec<NodeId> = canon.iter().flat_map(|&(a, b, _)| [a, b]).collect();
        ids.sort_unstable();
        ids.dedup();
        let index_of: FxHashMap<NodeId, usize> =
            ids.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let n = ids.len();

        // Effective bounds, folding in bindings as point intervals.
        let mut lo = vec![IntBound::Open; n];
        let mut hi = vec![IntBound::Open; n];
        for (i, &r) in ids.iter().enumerate() {
            let d = self.data[r].as_ref().expect("root data");
            lo[i] = d.lo;
            hi[i] = d.hi;
            match &d.binding {
                Some(Value::Int(v)) => {
                    lo[i] = lo[i].tighten_lower(IntBound::Incl(*v));
                    hi[i] = hi[i].tighten_upper(IntBound::Incl(*v));
                }
                Some(_) => return Err(Conflict), // non-int in ordering graph
                None => {}
            }
        }

        // Kahn topological order.
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
        let mut inc: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
        for &(a, b, strict) in &canon {
            let (ia, ib) = (index_of[&a], index_of[&b]);
            out[ia].push((ib, strict));
            inc[ib].push((ia, strict));
            indeg[ib] += 1;
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(i) = queue.pop_front() {
            topo.push(i);
            for &(j, _) in &out[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push_back(j);
                }
            }
        }
        if topo.len() != n {
            // Residual cycle (nonstrict, should have merged): be safe.
            self.unknown = true;
            return Ok(());
        }
        for &i in &topo {
            if let IntBound::Incl(l) = lo[i] {
                for &(j, strict) in &out[i] {
                    let bound = IntBound::Incl(l.saturating_add(strict as i64));
                    lo[j] = lo[j].tighten_lower(bound);
                }
            }
        }
        for &i in topo.iter().rev() {
            if let IntBound::Incl(h) = hi[i] {
                for &(j, strict) in &inc[i] {
                    let bound = IntBound::Incl(h.saturating_sub(strict as i64));
                    hi[j] = hi[j].tighten_upper(bound);
                }
            }
        }
        // Write back and check.
        for (i, &r) in ids.iter().enumerate() {
            let d = self.data[r].as_mut().expect("root data");
            d.numeric = true;
            d.lo = d.lo.tighten_lower(lo[i]);
            d.hi = d.hi.tighten_upper(hi[i]);
            if let (IntBound::Incl(l), IntBound::Incl(h)) = (d.lo, d.hi) {
                if l > h {
                    return Err(Conflict);
                }
            }
            if let Some(Value::Int(v)) = &d.binding {
                if let IntBound::Incl(l) = d.lo {
                    if *v < l {
                        return Err(Conflict);
                    }
                }
                if let IntBound::Incl(h) = d.hi {
                    if *v > h {
                        return Err(Conflict);
                    }
                }
            }
        }
        Ok(())
    }

    /// Binds classes whose candidate set shrank to exactly one value.
    fn promote_singletons(&mut self) -> Result<bool, Conflict> {
        let mut changed = false;
        let roots = self.live_roots();
        for r in roots {
            let d = self.data[r].as_ref().expect("root data");
            if d.binding.is_some() {
                continue;
            }
            if let Some(cands) = self.compute_candidates(r, 64)? {
                match cands.len() {
                    0 => return Err(Conflict),
                    1 => {
                        let v = cands.into_iter().next().unwrap();
                        self.ops.push_back(Op::Bind(r, v));
                        self.drain_ops()?;
                        changed = true;
                    }
                    _ => {}
                }
            }
        }
        Ok(changed)
    }

    fn live_roots(&mut self) -> Vec<NodeId> {
        (0..self.data.len())
            .filter(|&i| self.data[i].is_some() && self.uf.find(i) == i)
            .collect()
    }

    /// Computes candidate values for class `r` when finitely enumerable
    /// within `limit`; `Ok(None)` when infinite/oversized.
    fn compute_candidates(&self, r: NodeId, limit: usize) -> Result<Option<Vec<Value>>, Conflict> {
        let d = self.data[r].as_ref().expect("root data");
        if let Some(b) = &d.binding {
            return Ok(Some(vec![b.clone()]));
        }
        let mut acc = ValueSet::All;
        for s in &d.sets {
            acc = acc.intersect(s);
        }
        if d.numeric {
            acc = acc.intersect(&ValueSet::IntRange(d.lo, d.hi));
        }
        if acc.is_empty() {
            return Err(Conflict);
        }
        match acc.enumerate(limit) {
            Some(vals) => {
                let filtered: Vec<Value> = vals
                    .into_iter()
                    .filter(|v| !d.excluded.contains(v))
                    .filter(|v| !d.anti.iter().any(|a| a.contains(v)))
                    .collect();
                if filtered.is_empty() {
                    return Err(Conflict);
                }
                Ok(Some(filtered))
            }
            None => {
                // Infinite or oversized. Check the anti-sets cannot cover
                // the whole candidate space.
                for a in &d.anti {
                    if covers(a, &acc) {
                        return Err(Conflict);
                    }
                }
                Ok(None)
            }
        }
    }

    // ---- final verdict ---------------------------------------------------

    /// `Ok(true)` = definitely satisfiable; `Ok(false)` = unknown;
    /// `Err` = definitely unsatisfiable.
    fn final_check(&mut self) -> Result<bool, Conflict> {
        let mut definitive = !self.unknown && self.residuals.is_empty();

        let roots = self.live_roots();
        let mut cands: FxHashMap<NodeId, Candidates> = FxHashMap::default();
        for r in &roots {
            match self.compute_candidates(*r, self.config.enum_limit)? {
                Some(v) => {
                    cands.insert(*r, Candidates::Finite(v));
                }
                None => {
                    cands.insert(*r, Candidates::Infinite);
                }
            }
        }

        // Disequality clusters: only finite-candidate classes can run out
        // of room. (An infinite class can always dodge finitely many
        // conflicting neighbours.)
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        let diseqs = self.diseqs.clone();
        for (a, b) in diseqs {
            let (ra, rb) = (self.uf.find(a), self.uf.find(b));
            if ra == rb {
                return Err(Conflict);
            }
            let fa = matches!(cands.get(&ra), Some(Candidates::Finite(_)));
            let fb = matches!(cands.get(&rb), Some(Candidates::Finite(_)));
            if fa && fb {
                pairs.push((ra.min(rb), ra.max(rb)));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        if !pairs.is_empty() {
            match witness_search(&pairs, &cands, self.config.witness_budget) {
                WitnessOutcome::Found => {}
                WitnessOutcome::Impossible => return Err(Conflict),
                WitnessOutcome::BudgetExhausted => definitive = false,
            }
        }
        Ok(definitive)
    }

    /// Exposes, for the enumerator: the root and candidates of each
    /// variable seen by this solver.
    pub(crate) fn var_classes(&mut self) -> FxHashMap<Var, NodeId> {
        let entries: Vec<(Var, NodeId)> = self.var_nodes.iter().map(|(v, n)| (*v, *n)).collect();
        entries
            .into_iter()
            .map(|(v, n)| (v, self.uf.find(n)))
            .collect()
    }

    /// Candidates for a class root under the configured enumeration limit.
    pub(crate) fn candidates_for_root(&self, r: NodeId) -> Result<Candidates, Conflict> {
        match self.compute_candidates(r, self.config.enum_limit)? {
            Some(v) => Ok(Candidates::Finite(v)),
            None => Ok(Candidates::Infinite),
        }
    }
}

/// Whether value-set `a` is a superset of `b` (sound, not complete: only
/// the cases needed to refute `X in b` ∧ `X notin a`).
fn covers(a: &ValueSet, b: &ValueSet) -> bool {
    use ValueSet::*;
    match (a, b) {
        (All, _) => true,
        (IntRange(alo, ahi), IntRange(blo, bhi)) => {
            let lo_ok = match (alo, blo) {
                (IntBound::Open, _) => true,
                (IntBound::Incl(_), IntBound::Open) => false,
                (IntBound::Incl(x), IntBound::Incl(y)) => x <= y,
            };
            let hi_ok = match (ahi, bhi) {
                (IntBound::Open, _) => true,
                (IntBound::Incl(_), IntBound::Open) => false,
                (IntBound::Incl(x), IntBound::Incl(y)) => x >= y,
            };
            lo_ok && hi_ok
        }
        _ => false,
    }
}

enum WitnessOutcome {
    Found,
    Impossible,
    BudgetExhausted,
}

/// Backtracking search for an assignment of finite-candidate classes that
/// satisfies all pairwise disequalities. Complete within the budget.
fn witness_search(
    pairs: &[(NodeId, NodeId)],
    cands: &FxHashMap<NodeId, Candidates>,
    budget: usize,
) -> WitnessOutcome {
    let mut nodes: Vec<NodeId> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
    nodes.sort_unstable();
    nodes.dedup();
    let idx: FxHashMap<NodeId, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let lists: Vec<&Vec<Value>> = nodes
        .iter()
        .map(|n| match cands.get(n) {
            Some(Candidates::Finite(v)) => v,
            _ => unreachable!("only finite classes enter witness search"),
        })
        .collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for &(a, b) in pairs {
        let (ia, ib) = (idx[&a], idx[&b]);
        adj[ia].push(ib);
        adj[ib].push(ia);
    }
    // Order by ascending candidate count (fail-first).
    let mut order: Vec<usize> = (0..nodes.len()).collect();
    order.sort_by_key(|&i| lists[i].len());

    let mut chosen: Vec<Option<&Value>> = vec![None; nodes.len()];
    let mut steps = 0usize;

    fn rec<'v>(
        pos: usize,
        order: &[usize],
        lists: &[&'v Vec<Value>],
        adj: &[Vec<usize>],
        chosen: &mut Vec<Option<&'v Value>>,
        steps: &mut usize,
        budget: usize,
    ) -> Option<bool> {
        if pos == order.len() {
            return Some(true);
        }
        let i = order[pos];
        for v in lists[i] {
            *steps += 1;
            if *steps > budget {
                return None;
            }
            if adj[i].iter().any(|&j| chosen[j] == Some(v)) {
                continue;
            }
            chosen[i] = Some(v);
            match rec(pos + 1, order, lists, adj, chosen, steps, budget) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
            chosen[i] = None;
        }
        Some(false)
    }

    match rec(0, &order, &lists, &adj, &mut chosen, &mut steps, budget) {
        Some(true) => WitnessOutcome::Found,
        Some(false) => WitnessOutcome::Impossible,
        None => WitnessOutcome::BudgetExhausted,
    }
}

/// Iterative Tarjan SCC over an adjacency list; returns components in
/// reverse topological order.
fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack: (node, child cursor).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&(v, cursor)) = call_stack.last() {
            if cursor == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if cursor < adj[v].len() {
                call_stack.last_mut().expect("frame").1 += 1;
                let w = adj[v][cursor];
                if index[w] == usize::MAX {
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::NoDomains;

    fn solve(c: &Constraint) -> Truth {
        let cfg = SolverConfig::default();
        let mut s = ConjSolver::new(&NoDomains, &cfg);
        match s.assert_all(c) {
            Err(Conflict) => Truth::Unsat,
            Ok(()) => s.verdict(),
        }
    }

    fn x() -> Term {
        Term::var(Var(0))
    }
    fn y() -> Term {
        Term::var(Var(1))
    }
    fn z() -> Term {
        Term::var(Var(2))
    }

    #[test]
    fn trivial_sat() {
        assert_eq!(solve(&Constraint::truth()), Truth::Sat);
        assert_eq!(solve(&Constraint::eq(x(), Term::int(3))), Truth::Sat);
    }

    #[test]
    fn eq_conflict() {
        let c = Constraint::eq(x(), Term::int(1)).and(Constraint::eq(x(), Term::int(2)));
        assert_eq!(solve(&c), Truth::Unsat);
    }

    #[test]
    fn neq_conflict_through_equality() {
        let c = Constraint::eq(x(), y())
            .and(Constraint::eq(y(), Term::int(5)))
            .and(Constraint::neq(x(), Term::int(5)));
        assert_eq!(solve(&c), Truth::Unsat);
    }

    #[test]
    fn interval_conflict() {
        let c = Constraint::cmp(x(), CmpOp::Le, Term::int(3)).and(Constraint::cmp(
            x(),
            CmpOp::Gt,
            Term::int(3),
        ));
        assert_eq!(solve(&c), Truth::Unsat);
        let c2 = Constraint::cmp(x(), CmpOp::Le, Term::int(3)).and(Constraint::cmp(
            x(),
            CmpOp::Ge,
            Term::int(3),
        ));
        assert_eq!(solve(&c2), Truth::Sat);
    }

    #[test]
    fn interval_point_excluded() {
        // x in [3,3] and x != 3: unsat via singleton promotion.
        let c = Constraint::cmp(x(), CmpOp::Le, Term::int(3))
            .and(Constraint::cmp(x(), CmpOp::Ge, Term::int(3)))
            .and(Constraint::neq(x(), Term::int(3)));
        assert_eq!(solve(&c), Truth::Unsat);
    }

    #[test]
    fn ordering_cycle_merges() {
        // x <= y, y <= z, z <= x, x = 7 => all are 7; y != 7 contradicts.
        let c = Constraint::cmp(x(), CmpOp::Le, y())
            .and(Constraint::cmp(y(), CmpOp::Le, z()))
            .and(Constraint::cmp(z(), CmpOp::Le, x()))
            .and(Constraint::eq(x(), Term::int(7)))
            .and(Constraint::neq(y(), Term::int(7)));
        assert_eq!(solve(&c), Truth::Unsat);
    }

    #[test]
    fn strict_cycle_unsat() {
        let c = Constraint::cmp(x(), CmpOp::Lt, y()).and(Constraint::cmp(y(), CmpOp::Lt, x()));
        assert_eq!(solve(&c), Truth::Unsat);
    }

    #[test]
    fn bound_propagation_through_chain() {
        // 0 <= x < y < z <= 2 over ints: x=0,y=1,z=2 forced; z != 2 unsat.
        let c = Constraint::cmp(x(), CmpOp::Ge, Term::int(0))
            .and(Constraint::cmp(x(), CmpOp::Lt, y()))
            .and(Constraint::cmp(y(), CmpOp::Lt, z()))
            .and(Constraint::cmp(z(), CmpOp::Le, Term::int(2)))
            .and(Constraint::neq(z(), Term::int(2)));
        assert_eq!(solve(&c), Truth::Unsat);
        let sat = Constraint::cmp(x(), CmpOp::Ge, Term::int(0))
            .and(Constraint::cmp(x(), CmpOp::Lt, y()))
            .and(Constraint::cmp(y(), CmpOp::Lt, z()))
            .and(Constraint::cmp(z(), CmpOp::Le, Term::int(2)));
        assert_eq!(solve(&sat), Truth::Sat);
    }

    #[test]
    fn diseq_pigeonhole() {
        // x,y,z in {1,2} pairwise distinct: unsat (pigeonhole).
        let two = |t: Term| {
            Constraint::cmp(t.clone(), CmpOp::Ge, Term::int(1)).and(Constraint::cmp(
                t,
                CmpOp::Le,
                Term::int(2),
            ))
        };
        let c = two(x())
            .and(two(y()))
            .and(two(z()))
            .and(Constraint::neq(x(), y()))
            .and(Constraint::neq(y(), z()))
            .and(Constraint::neq(x(), z()));
        assert_eq!(solve(&c), Truth::Unsat);
        // With three candidate values it becomes satisfiable.
        let three = |t: Term| {
            Constraint::cmp(t.clone(), CmpOp::Ge, Term::int(1)).and(Constraint::cmp(
                t,
                CmpOp::Le,
                Term::int(3),
            ))
        };
        let c2 = three(x())
            .and(three(y()))
            .and(three(z()))
            .and(Constraint::neq(x(), y()))
            .and(Constraint::neq(y(), z()))
            .and(Constraint::neq(x(), z()));
        assert_eq!(solve(&c2), Truth::Sat);
    }

    #[test]
    fn field_congruence() {
        // x = y, x.name = "a", y.name = "b" -> unsat.
        let c = Constraint::eq(x(), y())
            .and(Constraint::eq(Term::field(x(), "name"), Term::str("a")))
            .and(Constraint::eq(Term::field(y(), "name"), Term::str("b")));
        assert_eq!(solve(&c), Truth::Unsat);
    }

    #[test]
    fn field_of_bound_record() {
        let rec = Value::record(vec![("name", Value::str("a"))]);
        let c = Constraint::eq(x(), Term::Const(rec))
            .and(Constraint::eq(Term::field(x(), "name"), Term::str("a")));
        assert_eq!(solve(&c), Truth::Sat);
        let rec2 = Value::record(vec![("name", Value::str("a"))]);
        let c2 = Constraint::eq(x(), Term::Const(rec2))
            .and(Constraint::eq(Term::field(x(), "name"), Term::str("b")));
        assert_eq!(solve(&c2), Truth::Unsat);
    }

    #[test]
    fn missing_field_is_unsat() {
        let rec = Value::record(vec![("name", Value::str("a"))]);
        let c = Constraint::eq(x(), Term::Const(rec))
            .and(Constraint::eq(Term::field(x(), "zip"), Term::int(1)));
        assert_eq!(solve(&c), Truth::Unsat);
    }

    #[test]
    fn numeric_class_rejects_string() {
        let c = Constraint::cmp(x(), CmpOp::Ge, Term::int(0))
            .and(Constraint::eq(x(), Term::str("nope")));
        assert_eq!(solve(&c), Truth::Unsat);
    }

    #[test]
    fn membership_with_resolver() {
        struct R;
        impl DomainResolver for R {
            fn resolve(&self, _d: &str, f: &str, args: &[Value]) -> ValueSet {
                match f {
                    "geq" => match args[0] {
                        Value::Int(k) => ValueSet::ints_from(k),
                        _ => ValueSet::Empty,
                    },
                    "pair" => ValueSet::finite([Value::int(1), Value::int(2)]),
                    _ => ValueSet::Empty,
                }
            }
        }
        let cfg = SolverConfig::default();
        // in(x, d:geq(5)) & x <= 4 : unsat
        let c = Constraint::member(x(), Call::new("d", "geq", vec![Term::int(5)]))
            .and(Constraint::cmp(x(), CmpOp::Le, Term::int(4)));
        let mut s = ConjSolver::new(&R, &cfg);
        let t = match s.assert_all(&c) {
            Err(Conflict) => Truth::Unsat,
            Ok(()) => s.verdict(),
        };
        assert_eq!(t, Truth::Unsat);
        // in(x, d:pair()) & x != 1 & x != 2 : unsat
        let c2 = Constraint::member(x(), Call::new("d", "pair", vec![]))
            .and(Constraint::neq(x(), Term::int(1)))
            .and(Constraint::neq(x(), Term::int(2)));
        let mut s2 = ConjSolver::new(&R, &cfg);
        let t2 = match s2.assert_all(&c2) {
            Err(Conflict) => Truth::Unsat,
            Ok(()) => s2.verdict(),
        };
        assert_eq!(t2, Truth::Unsat);
    }

    #[test]
    fn residual_call_yields_unknown() {
        // in(x, d:f(y)) with y unbound: cannot evaluate -> Unknown.
        let c = Constraint::member(x(), Call::new("d", "f", vec![y()]));
        assert_eq!(solve(&c), Truth::Unknown);
    }

    #[test]
    fn residual_resolves_after_binding() {
        struct R;
        impl DomainResolver for R {
            fn resolve(&self, _d: &str, _f: &str, args: &[Value]) -> ValueSet {
                match &args[0] {
                    Value::Int(k) => ValueSet::singleton(Value::Int(k + 1)),
                    _ => ValueSet::Empty,
                }
            }
        }
        let cfg = SolverConfig::default();
        // in(x, d:succ(y)) & y = 1 & x = 3 : succ(1)={2}, x=3 not in it.
        let c = Constraint::member(x(), Call::new("d", "succ", vec![y()]))
            .and(Constraint::eq(y(), Term::int(1)))
            .and(Constraint::eq(x(), Term::int(3)));
        let mut s = ConjSolver::new(&R, &cfg);
        let t = match s.assert_all(&c) {
            Err(Conflict) => Truth::Unsat,
            Ok(()) => s.verdict(),
        };
        assert_eq!(t, Truth::Unsat);
    }

    #[test]
    fn notin_finite_unsat() {
        struct R;
        impl DomainResolver for R {
            fn resolve(&self, _d: &str, _f: &str, _a: &[Value]) -> ValueSet {
                ValueSet::ints_from(0)
            }
        }
        let cfg = SolverConfig::default();
        // x >= 5 & notin(x, d:nonneg()) : candidates [5,inf) subset of anti.
        let c = Constraint::cmp(x(), CmpOp::Ge, Term::int(5)).and(Constraint::lit(Lit::NotIn(
            x(),
            Call::new("d", "nonneg", vec![]),
        )));
        let mut s = ConjSolver::new(&R, &cfg);
        let t = match s.assert_all(&c) {
            Err(Conflict) => Truth::Unsat,
            Ok(()) => s.verdict(),
        };
        assert_eq!(t, Truth::Unsat);
    }

    #[test]
    fn var_var_diseq_same_class_unsat() {
        let c = Constraint::eq(x(), y()).and(Constraint::neq(x(), y()));
        assert_eq!(solve(&c), Truth::Unsat);
    }

    #[test]
    fn binding_revalidated_after_later_tightening() {
        // Regression (found by proptest): the bind happens before the
        // interval tightening, so the conflict must be caught when the
        // interval arrives, not only at bind time.
        let c =
            Constraint::eq(Term::int(6), x()).and(Constraint::cmp(Term::int(1), CmpOp::Gt, x()));
        assert_eq!(solve(&c), Truth::Unsat);
        // Same for exclusions arriving after the bind.
        let c2 = Constraint::eq(x(), Term::int(3)).and(Constraint::neq(x(), Term::int(3)));
        assert_eq!(solve(&c2), Truth::Unsat);
        // And for a non-integer binding meeting a later interval.
        let c3 =
            Constraint::eq(x(), Term::str("s")).and(Constraint::cmp(x(), CmpOp::Le, Term::int(9)));
        assert_eq!(solve(&c3), Truth::Unsat);
    }
}
