//! Negation pushing and disjunctive normal form.
//!
//! The maintenance algorithms conjoin `not(φ)` literals onto view-entry
//! constraints (clause (4), step 2 of StDel, the `Add` set, …). Deciding
//! satisfiability requires eliminating those negations: `not(l1 & … & lk)`
//! is `¬l1 ∨ … ∨ ¬lk`, so a constraint expands into a disjunction of
//! *primitive* conjunctions (no `Not`, no `Lit::Not` nesting), each of
//! which the conjunction solver can decide.

use crate::constraint::{Constraint, Lit};

/// Error raised when DNF expansion exceeds the disjunct budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnfOverflow {
    /// The budget that was exceeded.
    pub budget: usize,
}

impl std::fmt::Display for DnfOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DNF expansion exceeded budget of {} disjuncts",
            self.budget
        )
    }
}

impl std::error::Error for DnfOverflow {}

/// Default budget for DNF expansion. Deletion constraints in practice
/// carry a handful of `not()`s, each over a few literals; this is far
/// beyond realistic sizes while still bounding pathological inputs.
pub const DEFAULT_DNF_BUDGET: usize = 16_384;

/// Expands `c` into DNF with the default budget.
pub fn dnf(c: &Constraint) -> Result<Vec<Constraint>, DnfOverflow> {
    dnf_with_budget(c, DEFAULT_DNF_BUDGET)
}

/// Expands `c` into a disjunction of primitive conjunctions. Every
/// returned `Constraint` is free of `Lit::Not`. The disjunction is
/// logically equivalent to `c`.
pub fn dnf_with_budget(c: &Constraint, budget: usize) -> Result<Vec<Constraint>, DnfOverflow> {
    let mut disjuncts: Vec<Vec<Lit>> = vec![Vec::new()];
    for lit in &c.lits {
        let alts = dnf_lit(lit, budget)?;
        if alts.is_empty() {
            // The literal is unsatisfiable by construction (cannot happen
            // with the current literal kinds, but keep the algebra total).
            return Ok(vec![]);
        }
        if alts.len() == 1 {
            for d in &mut disjuncts {
                d.extend(alts[0].iter().cloned());
            }
        } else {
            let mut next = Vec::with_capacity(disjuncts.len() * alts.len());
            for d in &disjuncts {
                for a in &alts {
                    if next.len() >= budget {
                        return Err(DnfOverflow { budget });
                    }
                    let mut nd = d.clone();
                    nd.extend(a.iter().cloned());
                    next.push(nd);
                }
            }
            disjuncts = next;
        }
        if disjuncts.len() > budget {
            return Err(DnfOverflow { budget });
        }
    }
    Ok(disjuncts
        .into_iter()
        .map(|lits| Constraint { lits })
        .collect())
}

/// DNF for *enumeration*: `not(ψ)` literals are only expanded when every
/// variable of ψ is visible outside the negation (in a positive literal
/// of `c` or in `requested`). Negations over region constraints with
/// auxiliary variables are kept opaque — their semantics is
/// `¬∃aux ψ` (see [`crate::constraint::Lit::eval_ground`]), which
/// disjunct-wise expansion would misread as `∃aux ¬ψ`.
pub fn dnf_for_enumeration(
    c: &Constraint,
    budget: usize,
    requested: &[crate::term::Var],
) -> Result<Vec<Constraint>, DnfOverflow> {
    use crate::fxhash::FxHashSet;
    let mut outer: FxHashSet<crate::term::Var> = requested.iter().copied().collect();
    for lit in &c.lits {
        if !matches!(lit, Lit::Not(_)) {
            let mut vs = Vec::new();
            lit.collect_vars(&mut vs);
            outer.extend(vs);
        }
    }
    let mut disjuncts: Vec<Vec<Lit>> = vec![Vec::new()];
    for lit in &c.lits {
        let expandable = match lit {
            Lit::Not(inner) => {
                let mut vs = Vec::new();
                for l in &inner.lits {
                    l.collect_vars(&mut vs);
                }
                vs.iter().all(|v| outer.contains(v))
            }
            _ => true,
        };
        let alts: Vec<Vec<Lit>> = if expandable {
            dnf_lit(lit, budget)?
        } else {
            vec![vec![lit.clone()]]
        };
        if alts.is_empty() {
            return Ok(vec![]);
        }
        if alts.len() == 1 {
            for d in &mut disjuncts {
                d.extend(alts[0].iter().cloned());
            }
        } else {
            let mut next = Vec::with_capacity(disjuncts.len() * alts.len());
            for d in &disjuncts {
                for a in &alts {
                    if next.len() >= budget {
                        return Err(DnfOverflow { budget });
                    }
                    let mut nd = d.clone();
                    nd.extend(a.iter().cloned());
                    next.push(nd);
                }
            }
            disjuncts = next;
        }
        if disjuncts.len() > budget {
            return Err(DnfOverflow { budget });
        }
    }
    Ok(disjuncts
        .into_iter()
        .map(|lits| Constraint { lits })
        .collect())
}

/// DNF of a single literal: a disjunction of primitive conjunctions.
fn dnf_lit(l: &Lit, budget: usize) -> Result<Vec<Vec<Lit>>, DnfOverflow> {
    match l {
        Lit::Not(inner) => {
            // ¬(l1 & … & lk) = ¬l1 ∨ … ∨ ¬lk ; each ¬li is itself a
            // constraint (possibly with further Nots) that we expand.
            let mut out: Vec<Vec<Lit>> = Vec::new();
            for il in &inner.lits {
                let neg = il.negate();
                let sub = dnf_with_budget(&neg, budget)?;
                for s in sub {
                    out.push(s.lits);
                    if out.len() > budget {
                        return Err(DnfOverflow { budget });
                    }
                }
            }
            // ¬(empty conjunction) = ¬true = false: no disjuncts.
            Ok(out)
        }
        prim => Ok(vec![vec![prim.clone()]]),
    }
}

/// Whether a constraint is primitive (contains no `Lit::Not` at any depth).
pub fn is_primitive(c: &Constraint) -> bool {
    c.lits.iter().all(|l| !matches!(l, Lit::Not(_)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::CmpOp;
    use crate::term::{Term, Var};

    fn x() -> Term {
        Term::var(Var(0))
    }

    #[test]
    fn primitive_passthrough() {
        let c = Constraint::eq(x(), Term::int(1)).and(Constraint::neq(x(), Term::int(2)));
        let d = dnf(&c).unwrap();
        assert_eq!(d, vec![c]);
    }

    #[test]
    fn single_not_expands_to_disjunction() {
        // X <= 5 & not(X <= 5 & X = 6)
        let inner =
            Constraint::cmp(x(), CmpOp::Le, Term::int(5)).and(Constraint::eq(x(), Term::int(6)));
        let c = Constraint::cmp(x(), CmpOp::Le, Term::int(5)).and_lit(Lit::Not(inner));
        let d = dnf(&c).unwrap();
        assert_eq!(d.len(), 2);
        // Disjunct 1: X<=5 & X>5 ; disjunct 2: X<=5 & X!=6.
        assert_eq!(
            d[0],
            Constraint::cmp(x(), CmpOp::Le, Term::int(5)).and(Constraint::cmp(
                x(),
                CmpOp::Gt,
                Term::int(5)
            ))
        );
        assert_eq!(
            d[1],
            Constraint::cmp(x(), CmpOp::Le, Term::int(5)).and(Constraint::neq(x(), Term::int(6)))
        );
    }

    #[test]
    fn not_of_truth_is_false() {
        let c = Constraint::truth().and_lit(Lit::Not(Constraint::truth()));
        assert_eq!(dnf(&c).unwrap(), Vec::<Constraint>::new());
    }

    #[test]
    fn nested_not_unwraps() {
        let inner = Constraint::lit(Lit::Not(Constraint::eq(x(), Term::int(1))));
        let c = Constraint::lit(Lit::Not(inner));
        // not(not(X=1)) == X=1
        let d = dnf(&c).unwrap();
        assert_eq!(d, vec![Constraint::eq(x(), Term::int(1))]);
    }

    #[test]
    fn budget_enforced() {
        // Chain of k Nots each contributing 2 disjuncts -> 2^k growth.
        let mut c = Constraint::truth();
        for i in 0..20 {
            let inner = Constraint::eq(Term::var(Var(i)), Term::int(1))
                .and(Constraint::eq(Term::var(Var(i + 100)), Term::int(2)));
            c = c.and_lit(Lit::Not(inner));
        }
        assert!(dnf_with_budget(&c, 64).is_err());
    }

    #[test]
    fn is_primitive_detects_nesting() {
        assert!(is_primitive(&Constraint::eq(x(), Term::int(1))));
        let c = Constraint::lit(Lit::Not(Constraint::truth()));
        assert!(!is_primitive(&c));
    }
}
