//! # mmv-constraints
//!
//! The constraint substrate of the materialized-mediated-views system
//! (reproduction of Lu, Moerkotte, Schu & Subrahmanian, *Efficient
//! Maintenance of Materialized Mediated Views*, SIGMOD 1995).
//!
//! The paper's view-maintenance algorithms operate on *constrained atoms*
//! `A(X⃗) ← φ`, where `φ` is built from domain-call atoms
//! (`in(X, dom:f(args))`), equalities, disequalities, comparisons, and the
//! `not(·)` construct introduced by the deletion/insertion rewrites. This
//! crate provides:
//!
//! * [`value::Value`] / [`term::Term`] — the term language (including the
//!   record field projections of the HERMES mediator language),
//! * [`constraint::Constraint`] — constraints and their ground semantics,
//! * [`valueset::ValueSet`] — lazy (possibly infinite) domain-call results,
//! * [`solver`] — a sound three-valued satisfiability procedure plus exact
//!   solution enumeration (the `[·]` instance semantics of §2.3),
//! * [`simplify`](fn@simplify) — the equivalence-preserving cleanup the paper applies in
//!   its worked examples,
//! * [`normal`] — negation pushing / DNF,
//! * [`fxhash`] — fast hashing for the engine's hot, integer-keyed maps.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod constraint;
pub mod fxhash;
pub mod normal;
pub mod simplify;
pub mod solver;
pub mod term;
pub mod value;
pub mod valueset;

pub use constraint::{Call, CmpOp, Constraint, DomainResolver, Lit, NoDomains};
pub use simplify::{simplify, Simplified};
pub use solver::{
    satisfiable, satisfiable_with, solutions, solutions_with, EnumResult, SolverConfig, Truth,
};
pub use term::{Subst, Term, Var, VarGen};
pub use value::{Record, Value};
pub use valueset::{IntBound, ValueSet};
