//! Ground values of the mediated-system universe.
//!
//! The paper's domains Σ contain arbitrary data objects; we model the ones
//! its examples use: integers, strings, booleans, tuples, and records with
//! named fields (needed for the law-enforcement example's `P1.origin`
//! field accesses).

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A record value: a set of named fields, kept sorted by field name so that
/// structurally-equal records compare and hash equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Record {
    fields: Vec<(Arc<str>, Value)>,
}

impl Record {
    /// Builds a record from field/value pairs. Later duplicates of a field
    /// name override earlier ones.
    pub fn new(mut fields: Vec<(Arc<str>, Value)>) -> Self {
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        fields.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = std::mem::replace(&mut later.1, Value::Bool(false));
                true
            } else {
                false
            }
        });
        Record { fields }
    }

    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields
            .binary_search_by(|(f, _)| f.as_ref().cmp(name))
            .ok()
            .map(|i| &self.fields[i].1)
    }

    /// Iterates the fields in name order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(n, v)| (n.as_ref(), v))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

/// A ground value. Values of different kinds are never equal; the total
/// order sorts first by kind, then by content, giving `Value` a stable
/// `Ord` for use in `BTreeSet`-backed value sets.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit integer (the arithmetic constraint domain works over these).
    Int(i64),
    /// Interned string.
    Str(Arc<str>),
    /// Boolean (e.g. the `in(true, facextract:matchface(..))` idiom).
    Bool(bool),
    /// Positional tuple.
    Tuple(Arc<[Value]>),
    /// Record with named fields.
    Record(Arc<Record>),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Convenience constructor for integers.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// Convenience constructor for records.
    pub fn record(fields: Vec<(&str, Value)>) -> Value {
        Value::Record(Arc::new(Record::new(
            fields.into_iter().map(|(n, v)| (Arc::from(n), v)).collect(),
        )))
    }

    /// Convenience constructor for tuples.
    pub fn tuple(vs: Vec<Value>) -> Value {
        Value::Tuple(Arc::from(vs))
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Projects a named field out of a record value.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Record(r) => r.get(name),
            _ => None,
        }
    }

    /// Discriminant rank used by the cross-kind total order.
    fn kind_rank(&self) -> u8 {
        match self {
            Value::Bool(_) => 0,
            Value::Int(_) => 1,
            Value::Str(_) => 2,
            Value::Tuple(_) => 3,
            Value::Record(_) => 4,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Tuple(a), Tuple(b)) => a.cmp(b),
            (Record(a), Record(b)) => a.cmp(b),
            _ => self.kind_rank().cmp(&other.kind_rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Record(r) => {
                write!(f, "{{")?;
                for (i, (n, v)) in r.fields().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_field_lookup_is_order_insensitive() {
        let a = Value::record(vec![("x", Value::int(1)), ("y", Value::int(2))]);
        let b = Value::record(vec![("y", Value::int(2)), ("x", Value::int(1))]);
        assert_eq!(a, b);
        assert_eq!(a.field("x"), Some(&Value::int(1)));
        assert_eq!(a.field("z"), None);
    }

    #[test]
    fn record_duplicate_fields_last_wins() {
        let r = Value::record(vec![("x", Value::int(1)), ("x", Value::int(9))]);
        assert_eq!(r.field("x"), Some(&Value::int(9)));
    }

    #[test]
    fn cross_kind_order_is_total_and_stable() {
        let mut vs = vec![
            Value::str("b"),
            Value::int(3),
            Value::Bool(true),
            Value::str("a"),
            Value::int(-1),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Bool(true),
                Value::int(-1),
                Value::int(3),
                Value::str("a"),
                Value::str("b"),
            ]
        );
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::int(7).to_string(), "7");
        assert_eq!(Value::str("don").to_string(), "\"don\"");
        assert_eq!(
            Value::tuple(vec![Value::int(1), Value::str("x")]).to_string(),
            "(1, \"x\")"
        );
        let rec = Value::record(vec![("origin", Value::int(3))]);
        assert_eq!(rec.to_string(), "{origin: 3}");
    }

    #[test]
    fn field_on_non_record_is_none() {
        assert_eq!(Value::int(1).field("x"), None);
    }
}
