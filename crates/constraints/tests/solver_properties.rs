//! Property-based tests of the constraint substrate's core guarantees:
//!
//! * the satisfiability verdict is *sound in both definite directions*
//!   (`Sat` ⇒ enumeration finds solutions when finite; `Unsat` ⇒
//!   enumeration finds none),
//! * [`simplify`] and [`normalize`-style] rewrites preserve ground truth,
//! * DNF expansion preserves ground truth,
//! * enumeration agrees with brute-force evaluation over a bounded
//!   universe.

use mmv_constraints::fxhash::FxHashMap;
use mmv_constraints::{
    satisfiable, simplify, solutions, CmpOp, Constraint, EnumResult, Lit, NoDomains, Simplified,
    Term, Truth, Value, Var,
};
use proptest::prelude::*;

/// Universe for brute-force checking: a small integer box.
const LO: i64 = 0;
const HI: i64 = 7;

fn var_term() -> impl Strategy<Value = Term> {
    (0u32..3).prop_map(|v| Term::var(Var(v)))
}

fn any_term() -> impl Strategy<Value = Term> {
    prop_oneof![var_term(), (LO..=HI).prop_map(Term::int),]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

/// Primitive literal over three integer variables.
fn prim_lit() -> impl Strategy<Value = Lit> {
    prop_oneof![
        (any_term(), any_term()).prop_map(|(a, b)| Lit::Eq(a, b)),
        (any_term(), any_term()).prop_map(|(a, b)| Lit::Neq(a, b)),
        (any_term(), cmp_op(), any_term()).prop_map(|(a, op, b)| Lit::Cmp(a, op, b)),
    ]
}

/// A constraint: primitive literals plus bounding-box literals so the
/// solution space is finite, with optional `not(·)` of small conjunctions.
fn constraint() -> impl Strategy<Value = Constraint> {
    let bounded_not =
        proptest::collection::vec(prim_lit(), 1..3).prop_map(|lits| Lit::Not(Constraint { lits }));
    let lit = prop_oneof![4 => prim_lit(), 1 => bounded_not];
    proptest::collection::vec(lit, 0..5).prop_map(|mut lits| {
        // Bound every variable to the box so enumeration is finite.
        for v in 0..3u32 {
            lits.push(Lit::Cmp(Term::var(Var(v)), CmpOp::Ge, Term::int(LO)));
            lits.push(Lit::Cmp(Term::var(Var(v)), CmpOp::Le, Term::int(HI)));
        }
        Constraint { lits }
    })
}

/// Brute-force ground truth: all assignments over the box satisfying `c`.
fn brute_force(c: &Constraint) -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    for x in LO..=HI {
        for y in LO..=HI {
            for z in LO..=HI {
                let mut asg: FxHashMap<Var, Value> = FxHashMap::default();
                asg.insert(Var(0), Value::Int(x));
                asg.insert(Var(1), Value::Int(y));
                asg.insert(Var(2), Value::Int(z));
                if c.eval_ground(&asg, &NoDomains) == Some(true) {
                    out.push(vec![Value::Int(x), Value::Int(y), Value::Int(z)]);
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64), failure_persistence: None, ..ProptestConfig::default()
    })]

    /// Enumeration is exactly brute force over the bounded universe.
    #[test]
    fn enumeration_matches_brute_force(c in constraint()) {
        let vars = [Var(0), Var(1), Var(2)];
        let expected = brute_force(&c);
        match solutions(&c, &vars, &NoDomains) {
            EnumResult::Exact(got) => {
                let got: Vec<Vec<Value>> = got.into_iter().collect();
                prop_assert_eq!(got, expected);
            }
            other => prop_assert!(false, "expected exact enumeration, got {:?}", other),
        }
    }

    /// The satisfiability verdict never contradicts brute force.
    #[test]
    fn satisfiability_is_sound(c in constraint()) {
        let nonempty = !brute_force(&c).is_empty();
        match satisfiable(&c, &NoDomains) {
            Truth::Sat => prop_assert!(nonempty, "Sat but no solutions"),
            Truth::Unsat => prop_assert!(!nonempty, "Unsat but solutions exist"),
            Truth::Unknown => {} // allowed either way
        }
    }

    /// Simplification preserves ground truth on every assignment.
    #[test]
    fn simplify_preserves_semantics(c in constraint()) {
        let simplified = simplify(&c);
        for x in LO..=HI {
            for y in LO..=HI {
                for z in LO..=HI {
                    let mut asg: FxHashMap<Var, Value> = FxHashMap::default();
                    asg.insert(Var(0), Value::Int(x));
                    asg.insert(Var(1), Value::Int(y));
                    asg.insert(Var(2), Value::Int(z));
                    let original = c.eval_ground(&asg, &NoDomains) == Some(true);
                    let after = match &simplified {
                        Simplified::Unsat => false,
                        Simplified::Constraint(s) => {
                            s.eval_ground(&asg, &NoDomains) == Some(true)
                        }
                    };
                    prop_assert_eq!(original, after,
                        "assignment ({}, {}, {}) disagrees", x, y, z);
                }
            }
        }
    }

    /// Classical DNF expansion preserves ground truth (all variables of
    /// these constraints are outer, so the classical reading applies).
    #[test]
    fn dnf_preserves_semantics(c in constraint()) {
        let disjuncts = mmv_constraints::normal::dnf(&c).unwrap();
        for x in LO..=HI {
            for z in LO..=HI {
                let mut asg: FxHashMap<Var, Value> = FxHashMap::default();
                asg.insert(Var(0), Value::Int(x));
                asg.insert(Var(1), Value::Int((x + z) % (HI + 1)));
                asg.insert(Var(2), Value::Int(z));
                let original = c.eval_ground(&asg, &NoDomains) == Some(true);
                let expanded = disjuncts
                    .iter()
                    .any(|d| d.eval_ground(&asg, &NoDomains) == Some(true));
                prop_assert_eq!(original, expanded);
            }
        }
    }

    /// Conjunction order does not change the solution set.
    #[test]
    fn conjunction_is_commutative(c in constraint(), seed in 0u64..1000) {
        let vars = [Var(0), Var(1), Var(2)];
        let mut shuffled = c.lits.clone();
        // Cheap deterministic shuffle.
        let n = shuffled.len();
        if n > 1 {
            for i in 0..n {
                let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
                shuffled.swap(i, j);
            }
        }
        let c2 = Constraint { lits: shuffled };
        let a = solutions(&c, &vars, &NoDomains);
        let b = solutions(&c2, &vars, &NoDomains);
        prop_assert_eq!(a, b);
    }
}

/// Deterministic regression cases distilled from the mediator workloads.
mod regressions {
    use super::*;
    use mmv_constraints::Call;

    #[test]
    fn negated_region_with_aux_vars_excludes() {
        // φ = (0 <= X <= 5) ∧ not(∃Z: Z = X ∧ Z >= 3): instances {0,1,2}.
        let x = Term::var(Var(0));
        let z = Term::var(Var(9));
        let region = Constraint::eq(z.clone(), x.clone()).and(Constraint::cmp(
            z.clone(),
            CmpOp::Ge,
            Term::int(3),
        ));
        let c = Constraint::cmp(x.clone(), CmpOp::Ge, Term::int(0))
            .and(Constraint::cmp(x.clone(), CmpOp::Le, Term::int(5)))
            .and_lit(Lit::Not(region));
        let got = solutions(&c, &[Var(0)], &NoDomains);
        let tuples: Vec<i64> = got
            .exact()
            .expect("exact")
            .iter()
            .map(|t| t[0].as_int().unwrap())
            .collect();
        assert_eq!(tuples, vec![0, 1, 2]);
    }

    #[test]
    fn negated_membership_region_excludes() {
        // Resolver: f() = {1, 2}. φ = (0<=X<=3) ∧ not(∃Z: Z in f() ∧ Z = X)
        // — instances {0, 3}.
        struct R;
        impl mmv_constraints::DomainResolver for R {
            fn resolve(&self, _d: &str, _f: &str, _a: &[Value]) -> mmv_constraints::ValueSet {
                mmv_constraints::ValueSet::finite([Value::int(1), Value::int(2)])
            }
        }
        let x = Term::var(Var(0));
        let z = Term::var(Var(9));
        let region = Constraint::member(z.clone(), Call::new("d", "f", vec![]))
            .and(Constraint::eq(z.clone(), x.clone()));
        let c = Constraint::cmp(x.clone(), CmpOp::Ge, Term::int(0))
            .and(Constraint::cmp(x.clone(), CmpOp::Le, Term::int(3)))
            .and_lit(Lit::Not(region));
        let got = solutions(&c, &[Var(0)], &R);
        let tuples: Vec<i64> = got
            .exact()
            .expect("exact")
            .iter()
            .map(|t| t[0].as_int().unwrap())
            .collect();
        assert_eq!(tuples, vec![0, 3]);
    }

    #[test]
    fn dependent_call_chain_enumerates() {
        // in(P, d:base()) ∧ in(Y, d:next(P)): Y determined through P.
        struct R;
        impl mmv_constraints::DomainResolver for R {
            fn resolve(&self, _d: &str, f: &str, args: &[Value]) -> mmv_constraints::ValueSet {
                match f {
                    "base" => mmv_constraints::ValueSet::finite([Value::int(1), Value::int(2)]),
                    "next" => match args[0] {
                        Value::Int(k) => mmv_constraints::ValueSet::singleton(Value::Int(k * 10)),
                        _ => mmv_constraints::ValueSet::Empty,
                    },
                    _ => mmv_constraints::ValueSet::Empty,
                }
            }
        }
        let p = Term::var(Var(0));
        let y = Term::var(Var(1));
        let c = Constraint::member(p.clone(), Call::new("d", "base", vec![])).and(
            Constraint::member(y.clone(), Call::new("d", "next", vec![p.clone()])),
        );
        let got = solutions(&c, &[Var(1)], &R);
        let tuples: Vec<i64> = got
            .exact()
            .expect("exact")
            .iter()
            .map(|t| t[0].as_int().unwrap())
            .collect();
        assert_eq!(tuples, vec![10, 20]);
    }
}
