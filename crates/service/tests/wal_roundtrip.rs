//! Property tests for the WAL codec: random `WalPayload`s (batches in
//! both shapes, recovery and checkpoint markers) must round-trip
//! bit-exactly through the textual frame format and the segmented
//! on-disk log — and the two failure shapes must behave per the
//! contract: a *truncated tail* (the crash-interrupted final write) is
//! detected and silently dropped, while a *corrupted non-final
//! segment* (damaged history) is an explicit [`StorageError`].

use mmv_constraints::{CmpOp, Constraint, Term, Var};
use mmv_core::batch::UpdateBatch;
use mmv_core::parser::{parse_wal_payload, render_wal_payload, WalPayload};
use mmv_core::ConstrainedAtom;
use mmv_service::wal::{scan_dir, FsyncPolicy, StorageError, Wal};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn x() -> Term {
    Term::var(Var(0))
}

/// A fresh scratch directory per proptest case.
fn case_dir() -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "mmv-wal-prop-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[derive(Debug, Clone)]
enum AtomShape {
    Point { pred: usize, v: i64 },
    Interval { pred: usize, lo: i64, w: i64 },
    TwoVar { pred: usize, v: i64 },
}

fn atom(shape: &AtomShape) -> ConstrainedAtom {
    match *shape {
        AtomShape::Point { pred, v } => ConstrainedAtom::new(
            &format!("p{pred}"),
            vec![x()],
            Constraint::eq(x(), Term::int(v)),
        ),
        AtomShape::Interval { pred, lo, w } => ConstrainedAtom::new(
            &format!("p{pred}"),
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(lo)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(lo + w),
            )),
        ),
        // Two distinct variables with a join constraint — exercises
        // the exact-variable parsing (`X0`, `X1` must keep identity).
        AtomShape::TwoVar { pred, v } => ConstrainedAtom::new(
            &format!("q{pred}"),
            vec![x(), Term::var(Var(1))],
            Constraint::cmp(x(), CmpOp::Le, Term::var(Var(1)))
                .and(Constraint::eq(Term::var(Var(1)), Term::int(v))),
        ),
    }
}

fn atom_strategy() -> impl Strategy<Value = AtomShape> {
    prop_oneof![
        ((0..4usize), (-50i64..50)).prop_map(|(pred, v)| AtomShape::Point { pred, v }),
        ((0..4usize), (-50i64..50), (0i64..9)).prop_map(|(pred, lo, w)| AtomShape::Interval {
            pred,
            lo,
            w
        }),
        ((0..4usize), (-50i64..50)).prop_map(|(pred, v)| AtomShape::TwoVar { pred, v }),
    ]
}

#[derive(Debug, Clone)]
enum PayloadShape {
    Batch {
        ticket_base: u64,
        deletes: Vec<AtomShape>,
        inserts: Vec<AtomShape>,
    },
    Recovery {
        shard: usize,
        epoch: u64,
    },
    Checkpoint {
        epoch: u64,
    },
}

fn payload_strategy() -> impl Strategy<Value = PayloadShape> {
    prop_oneof![
        4 => (
            (0u64..10_000),
            collection::vec(atom_strategy(), 0..4_usize),
            collection::vec(atom_strategy(), 0..4_usize),
        )
            .prop_map(|(ticket_base, deletes, inserts)| PayloadShape::Batch {
                ticket_base,
                deletes,
                inserts,
            }),
        1 => ((0..8usize), (0u64..10_000))
            .prop_map(|(shard, epoch)| PayloadShape::Recovery { shard, epoch }),
        1 => (0u64..10_000).prop_map(|epoch| PayloadShape::Checkpoint { epoch }),
    ]
}

/// Realizes shapes as payloads; batches get ascending epochs so the
/// stream looks like a real WAL.
fn payloads_from(shapes: &[PayloadShape]) -> Vec<WalPayload> {
    shapes
        .iter()
        .enumerate()
        .map(|(i, s)| match s {
            PayloadShape::Batch {
                ticket_base,
                deletes,
                inserts,
            } => WalPayload::Batch {
                epoch: i as u64 + 1,
                ticket_base: *ticket_base,
                batch: UpdateBatch {
                    deletes: deletes.iter().map(atom).collect(),
                    inserts: inserts.iter().map(atom).collect(),
                },
            },
            PayloadShape::Recovery { shard, epoch } => WalPayload::Recovery {
                shard: *shard,
                epoch: *epoch,
            },
            PayloadShape::Checkpoint { epoch } => WalPayload::Checkpoint { epoch: *epoch },
        })
        .collect()
}

fn payload_epoch(p: &WalPayload) -> u64 {
    match p {
        WalPayload::Batch { epoch, .. }
        | WalPayload::Recovery { epoch, .. }
        | WalPayload::Checkpoint { epoch } => *epoch,
        _ => 0,
    }
}

/// The on-disk segment files, ascending by sequence number.
fn segments(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name()?.to_str()?;
            (name.starts_with("wal-") && name.ends_with(".log")).then(|| p.clone())
        })
        .collect();
    out.sort();
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(32),
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    /// The pure codec: render → parse is the identity on every payload.
    #[test]
    fn codec_roundtrips(shapes in collection::vec(payload_strategy(), 1..=8_usize)) {
        for payload in payloads_from(&shapes) {
            let rendered = render_wal_payload(&payload);
            let parsed = parse_wal_payload(&rendered)
                .unwrap_or_else(|e| panic!("unparseable rendering {rendered:?}: {e}"));
            prop_assert_eq!(&parsed, &payload, "codec not identity: {}", rendered);
        }
    }

    /// The full log: append through `Wal` (with random segment sizes,
    /// so rotation boundaries land everywhere), read back with
    /// `scan_dir` — same payloads, same order, clean tail.
    #[test]
    fn segmented_log_roundtrips(
        shapes in collection::vec(payload_strategy(), 1..=10_usize),
        segment_bytes in prop_oneof![Just(1u64), Just(64), Just(256), Just(8 << 20)],
    ) {
        let dir = case_dir();
        let payloads = payloads_from(&shapes);
        {
            let wal = Wal::open(&dir, FsyncPolicy::Never, segment_bytes, 1).unwrap();
            for p in &payloads {
                wal.append(payload_epoch(p), &render_wal_payload(p)).unwrap();
            }
        }
        let scan = scan_dir(&dir, false).unwrap();
        prop_assert!(!scan.torn_tail);
        prop_assert_eq!(&scan.payloads, &payloads);
        prop_assert_eq!(scan.segments, segments(&dir).len() as u64);
        prop_assert!(scan.next_seq > scan.segments, "next_seq past every segment");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Truncated tail (the crash mid-write): cutting the final frame at
    /// any interior byte loses exactly that record, silently — and in
    /// repair mode the torn bytes are removed so the next scan is
    /// clean.
    #[test]
    fn truncated_tail_drops_exactly_the_last_record(
        // ≥ 2: the first appends create the segment before the cut one.
        shapes in collection::vec(payload_strategy(), 2..=6_usize),
        cut_pick in 0u32..1000,
    ) {
        let dir = case_dir();
        let payloads = payloads_from(&shapes);
        let (intact_len, full_len, seg);
        {
            // One big segment so the tail is in the same file as the
            // rest of the history.
            let wal = Wal::open(&dir, FsyncPolicy::Never, 8 << 20, 1).unwrap();
            for p in &payloads[..payloads.len() - 1] {
                wal.append(payload_epoch(p), &render_wal_payload(p)).unwrap();
            }
            seg = segments(&dir).pop().expect("one segment");
            intact_len = std::fs::metadata(&seg).unwrap().len();
            let last = payloads.last().unwrap();
            wal.append(payload_epoch(last), &render_wal_payload(last)).unwrap();
            full_len = std::fs::metadata(&seg).unwrap().len();
        }
        // Cut strictly inside the final frame: at least one byte of it
        // remains, at least one byte is missing.
        let span = full_len - intact_len;
        let cut = intact_len + 1 + (span - 2) * u64::from(cut_pick) / 1000;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(cut)
            .unwrap();

        let scan = scan_dir(&dir, true).unwrap();
        prop_assert!(scan.torn_tail, "a cut frame must be reported torn");
        prop_assert_eq!(&scan.payloads, &payloads[..payloads.len() - 1]);
        // Repair truncated the torn bytes: scanning again is clean.
        prop_assert_eq!(std::fs::metadata(&seg).unwrap().len(), intact_len);
        let rescan = scan_dir(&dir, false).unwrap();
        prop_assert!(!rescan.torn_tail);
        prop_assert_eq!(&rescan.payloads, &payloads[..payloads.len() - 1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Corrupted history (any byte of a non-final segment): never
    /// silently dropped — the scan fails with `StorageError::Corrupt`,
    /// repair mode or not.
    #[test]
    fn corrupt_nonfinal_segment_is_an_explicit_error(
        shapes in collection::vec(payload_strategy(), 2..=6_usize),
        victim_pick in 0u32..1000,
        offset_pick in 0u32..1000,
    ) {
        let dir = case_dir();
        let payloads = payloads_from(&shapes);
        {
            // segment_bytes=1: every append rotates, one frame per
            // segment, so all but the last segment are "history".
            let wal = Wal::open(&dir, FsyncPolicy::Never, 1, 1).unwrap();
            for p in &payloads {
                wal.append(payload_epoch(p), &render_wal_payload(p)).unwrap();
            }
        }
        let segs = segments(&dir);
        prop_assert_eq!(segs.len(), payloads.len());
        let victim = &segs[(segs.len() - 1) * victim_pick as usize / 1000];
        let mut bytes = std::fs::read(victim).unwrap();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        let lo = header_end + 1;
        let target = lo + (bytes.len() - 1 - lo) * offset_pick as usize / 1000;
        bytes[target] ^= 0x01;
        std::fs::write(victim, bytes).unwrap();

        for repair in [false, true] {
            match scan_dir(&dir, repair) {
                Err(StorageError::Corrupt { file, .. }) => {
                    prop_assert_eq!(&file, victim, "corruption attributed to its segment")
                }
                other => prop_assert!(
                    false,
                    "scan of corrupt history must fail with Corrupt, got {other:?}"
                ),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
