//! Sharding must be invisible: a service with per-predicate writer
//! lanes must serve *syntactically* the same view as the single-lane
//! service (and, instance-level, the same state as the declarative
//! `batch_oracle`) on any sequence of mixed single-/cross-shard
//! batches, in both support modes — and concurrent readers must see
//! per-shard and global epochs move monotonically, never a torn
//! cross-shard publication.

use mmv_constraints::solver::SolverConfig;
use mmv_constraints::{CmpOp, Constraint, NoDomains, Term, Value, Var};
use mmv_core::batch::UpdateBatch;
use mmv_core::semantics::batch_oracle;
use mmv_core::tp::{fixpoint, FixpointConfig, Operator};
use mmv_core::{BodyAtom, Clause, ConstrainedAtom, ConstrainedDatabase, ShardSpec, SupportMode};
use mmv_service::{ServiceWorker, ViewService};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const COMPONENTS: usize = 3;

fn x() -> Term {
    Term::var(Var(0))
}

/// `COMPONENTS` independent chains `bK → aK`, each over `[0, 9]`.
fn multi_chain_db() -> ConstrainedDatabase {
    let mut clauses = Vec::new();
    for k in 0..COMPONENTS {
        clauses.push(Clause::fact(
            &format!("b{k}"),
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(9),
            )),
        ));
        clauses.push(Clause::new(
            &format!("a{k}"),
            vec![x()],
            Constraint::truth(),
            vec![BodyAtom::new(&format!("b{k}"), vec![x()])],
        ));
    }
    ConstrainedDatabase::from_clauses(clauses)
}

fn del_point(comp: usize, v: i64) -> ConstrainedAtom {
    ConstrainedAtom::new(
        &format!("b{comp}"),
        vec![x()],
        Constraint::eq(x(), Term::int(v)),
    )
}

fn ins_interval(comp: usize, lo: i64, w: i64) -> ConstrainedAtom {
    ConstrainedAtom::new(
        &format!("b{comp}"),
        vec![x()],
        Constraint::cmp(x(), CmpOp::Ge, Term::int(lo)).and(Constraint::cmp(
            x(),
            CmpOp::Le,
            Term::int(lo + w),
        )),
    )
}

#[derive(Debug, Clone)]
enum Op {
    Del { comp: usize, v: i64 },
    Ins { comp: usize, lo: i64, w: i64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => ((0..COMPONENTS), (0i64..12)).prop_map(|(comp, v)| Op::Del { comp, v }),
        1 => ((0..COMPONENTS), (20i64..50), (0i64..3))
            .prop_map(|(comp, lo, w)| Op::Ins { comp, lo, w }),
    ]
}

fn batches_strategy() -> impl Strategy<Value = Vec<Vec<Op>>> {
    collection::vec(collection::vec(op_strategy(), 1..=4_usize), 1..=4_usize)
}

fn to_batch(ops: &[Op]) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for op in ops {
        match *op {
            Op::Del { comp, v } => batch.deletes.push(del_point(comp, v)),
            Op::Ins { comp, lo, w } => batch.inserts.push(ins_interval(comp, lo, w)),
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(24),
        failure_persistence: None,
        ..ProptestConfig::default()
    })]

    #[test]
    fn sharded_equals_single_lane_and_oracle(batches in batches_strategy()) {
        let db = multi_chain_db();
        let cfg = FixpointConfig::default();
        let scfg = SolverConfig::default();
        for mode in [SupportMode::Plain, SupportMode::WithSupports] {
            // The declarative oracle for the first batch, taken from
            // the (shared) base state.
            let (base_view, _) = fixpoint(&db, &NoDomains, Operator::Tp, mode, &cfg)
                .expect("base fixpoint");
            let first_oracle = batch_oracle(
                &db, &base_view, &to_batch(&batches[0]), &NoDomains, &cfg,
            ).expect("oracle evaluates");

            // The sharded service sweeps the intra-lane pool width
            // (1 = sequential paths, 2 and 4 = parallel rounds); the
            // single-lane reference always runs sequentially, so every
            // width is checked against the same sequential state.
            for pool_threads in [1usize, 2, 4] {
            let sharded = ViewService::builder()
                .mode(mode)
                .fixpoint(cfg.clone())
                .pool_threads(pool_threads)
                .build(db.clone())
                .expect("sharded service builds");
            prop_assert_eq!(sharded.shard_map().num_shards(), COMPONENTS);
            prop_assert_eq!(sharded.pool().is_some(), pool_threads > 1);
            let single = ViewService::builder()
                .mode(mode)
                .fixpoint(cfg.clone())
                .shards(ShardSpec::single_lane())
                .pool_threads(1)
                .build(db.clone())
                .expect("single-lane service builds");
            prop_assert!(single.shard_map().is_single());

            let mut last_shard_epochs = [0u64; COMPONENTS];
            for (i, ops) in batches.iter().enumerate() {
                let batch = to_batch(ops);
                let touched: std::collections::BTreeSet<usize> = batch
                    .deletes.iter().chain(&batch.inserts)
                    .map(|a| sharded.shard_map().shard_of(&a.pred))
                    .collect();
                let a = sharded.apply(batch.clone()).expect("sharded apply");
                let b = single.apply(batch).expect("single-lane apply");
                prop_assert_eq!(a.epoch, b.epoch, "global epochs advance in lockstep");
                prop_assert_eq!(a.shards_touched, touched.len());
                prop_assert_eq!(b.shards_touched.min(1), 1);

                // Shard epochs advance exactly for touched shards.
                let snap = sharded.snapshot();
                for (s, last) in last_shard_epochs.iter_mut().enumerate() {
                    let expect = *last + u64::from(touched.contains(&s));
                    prop_assert_eq!(snap.shard_epoch(s), expect, "shard {} epoch", s);
                    *last = snap.shard_epoch(s);
                }

                // The served states are syntactically identical (atoms,
                // supports, external tickets — everything).
                let merged = snap.merged_view();
                prop_assert!(
                    merged.syntactically_equal(&single.snapshot().merged_view()),
                    "{mode:?} diverged after batch {i}:\nsharded:\n{merged}\nsingle:\n{sv}",
                    mode = mode, i = i, merged = merged,
                    sv = single.snapshot().merged_view(),
                );
                if i == 0 {
                    let inst = snap.instances(&NoDomains, &scfg).expect("instances");
                    prop_assert_eq!(&inst, &first_oracle, "{:?} != oracle on batch 0", mode);
                }
            }

            // Replaying the sharded service's log onto one fresh view
            // reproduces the merged served state.
            let replayed = sharded
                .log()
                .replay(&db, &NoDomains, Operator::Tp, mode, &cfg)
                .expect("replay");
            prop_assert!(replayed.syntactically_equal(&sharded.snapshot().merged_view()));
            }
        }
    }
}

/// Concurrent readers racing writers on independent lanes: per-shard
/// epochs and the global epoch must be monotone on every read, and a
/// cross-shard batch must never be observed torn (both its shards move
/// in one publication).
#[test]
fn concurrent_readers_observe_monotone_untorn_epochs() {
    let db = multi_chain_db();
    let svc = Arc::new(ViewService::builder().build(db).expect("service builds"));
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let svc = svc.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let cfg = SolverConfig::default();
                let mut last_global = 0u64;
                let mut last_shard = [0u64; COMPONENTS];
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = svc.snapshot();
                    assert!(snap.epoch() >= last_global, "global epoch regressed");
                    last_global = snap.epoch();
                    let mut sum = 0;
                    for (s, last) in last_shard.iter_mut().enumerate() {
                        let e = snap.shard_epoch(s);
                        assert!(e >= *last, "shard {s} epoch regressed");
                        *last = e;
                        sum += e;
                    }
                    // Each batch bumps the global epoch once and every
                    // touched shard once; with single- and two-shard
                    // batches in flight, the shard-epoch sum can never
                    // exceed twice the global epoch — a torn two-phase
                    // publish (one shard visible without its sibling
                    // *and* the global bump) would break the bound the
                    // other way: shard movement with no global tick.
                    assert!(
                        sum <= 2 * snap.epoch(),
                        "shard epochs moved without a global publication: \
                         sum {sum} > 2 x global {}",
                        snap.epoch()
                    );
                    // And the snapshot is internally consistent per
                    // shard: the chain agrees with its base.
                    let probe = Value::int((reads % 10) as i64);
                    let k = (reads as usize) % COMPONENTS;
                    let in_b = snap
                        .ask(
                            &format!("b{k}"),
                            std::slice::from_ref(&probe),
                            &NoDomains,
                            &cfg,
                        )
                        .expect("read b");
                    let in_a = snap
                        .ask(&format!("a{k}"), &[probe], &NoDomains, &cfg)
                        .expect("read a");
                    assert_eq!(in_b, in_a, "torn chain inside one shard snapshot");
                    reads += 1;
                }
                reads
            })
        })
        .collect();

    // One worker per component plus a main-thread cross-shard mixer.
    let workers: Vec<_> = (0..COMPONENTS)
        .map(|k| {
            let (tx, worker) = ServiceWorker::spawn(svc.clone());
            for v in 0..5 {
                tx.submit(UpdateBatch::deleting(vec![del_point(k, v)]))
                    .expect("submit");
            }
            drop(tx);
            worker
        })
        .collect();
    for i in 0..4 {
        svc.apply(UpdateBatch::deleting(vec![
            del_point(i % COMPONENTS, 6 + i as i64),
            del_point((i + 1) % COMPONENTS, 6 + i as i64),
        ]))
        .expect("cross-shard batch");
    }
    for w in workers {
        w.join().expect("worker");
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().expect("reader") > 0);
    }
    assert_eq!(svc.epoch(), (COMPONENTS * 5 + 4) as u64);
}
