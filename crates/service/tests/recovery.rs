//! Crash recovery: a durable service rebuilt from its checkpoint + WAL
//! tail must serve the *syntactically* identical view — supports,
//! external tickets and all — that it served before dying.
//!
//! The centerpiece is a kill-the-process test: a child process applies
//! a deterministic batch sequence under `FsyncPolicy::GroupCommit` and
//! prints each epoch once `apply` returns (i.e. once the frame is
//! durable); the parent SIGKILLs it mid-load, recovers the directory,
//! and compares against a never-killed reference service that applied
//! the same prefix. The rest pins the recovery contract edge cases:
//! clean-shutdown round trips, checkpointed tails, torn final frames
//! (silently truncated), and corrupt non-final segments (explicit
//! [`ServiceError::Storage`]).

use mmv_constraints::{CmpOp, Constraint, Term, Var};
use mmv_core::batch::UpdateBatch;
use mmv_core::{BodyAtom, Clause, ConstrainedAtom, ConstrainedDatabase};
use mmv_service::{Durability, FsyncPolicy, ServiceError, ViewService};
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn x() -> Term {
    Term::var(Var(0))
}

/// Two independent chains b0 → a0 and b1 → a1 (two writer lanes), so
/// the batch stream exercises single- and cross-shard recovery.
fn two_chain_db() -> ConstrainedDatabase {
    let mut clauses = Vec::new();
    for k in 0..2 {
        clauses.push(Clause::fact(
            &format!("b{k}"),
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(49),
            )),
        ));
        clauses.push(Clause::new(
            &format!("a{k}"),
            vec![x()],
            Constraint::truth(),
            vec![BodyAtom::new(&format!("b{k}"), vec![x()])],
        ));
    }
    ConstrainedDatabase::from_clauses(clauses)
}

fn point(pred: &str, v: i64) -> ConstrainedAtom {
    ConstrainedAtom::new(pred, vec![x()], Constraint::eq(x(), Term::int(v)))
}

fn interval(pred: &str, lo: i64, hi: i64) -> ConstrainedAtom {
    ConstrainedAtom::new(
        pred,
        vec![x()],
        Constraint::cmp(x(), CmpOp::Ge, Term::int(lo)).and(Constraint::cmp(
            x(),
            CmpOp::Le,
            Term::int(hi),
        )),
    )
}

/// The deterministic batch stream both the killed child and the
/// never-killed reference apply: point deletions walking the base
/// intervals, a fresh-space insertion (external tickets!) every third
/// batch, and a cross-shard batch every fourth.
fn batch_for(i: u64) -> UpdateBatch {
    let comp = (i % 2) as usize;
    let pred = format!("b{comp}");
    let mut batch = UpdateBatch::deleting(vec![point(&pred, (i as i64 * 7) % 50)]);
    if i % 3 == 0 {
        let lo = 100 + 5 * i as i64;
        batch = batch.insert(interval(&pred, lo, lo + 2));
    }
    if i % 4 == 0 {
        let other = format!("b{}", 1 - comp);
        batch = batch.delete(point(&other, (i as i64 * 11) % 50));
    }
    batch
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmv-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A never-killed in-memory reference that applied batches `1..=n`.
fn reference_after(n: u64) -> ViewService {
    let svc = ViewService::builder()
        .build(two_chain_db())
        .expect("reference builds");
    for i in 1..=n {
        svc.apply(batch_for(i)).expect("reference apply");
    }
    svc
}

fn durable_config(dir: &Path) -> Durability {
    // Fsync nothing in tests that don't kill the process — the
    // recovery contract is about bytes, not about the disk.
    Durability::durable(dir)
        .fsync(FsyncPolicy::Never)
        .checkpoint_every(0)
}

#[test]
fn clean_shutdown_round_trips() {
    let dir = tmp_dir("clean");
    let n = 12u64;
    {
        let svc = ViewService::builder()
            .durability(durable_config(&dir))
            .build(two_chain_db())
            .expect("durable service builds");
        for i in 1..=n {
            svc.apply(batch_for(i)).expect("apply");
        }
    }
    let (recovered, report) = ViewService::builder()
        .durability(durable_config(&dir))
        .recover(two_chain_db())
        .expect("recovery succeeds");
    assert_eq!(report.checkpoint_epoch, None, "no checkpoint was cut");
    assert_eq!(report.replayed_records, n);
    assert_eq!(report.recovered_epoch, n);
    assert!(!report.torn_tail);
    assert_eq!(recovered.epoch(), n);

    let reference = reference_after(n);
    assert!(
        recovered
            .snapshot()
            .merged_view()
            .syntactically_equal(&reference.snapshot().merged_view()),
        "recovered view diverged:\nrecovered:\n{}\nreference:\n{}",
        recovered.snapshot().merged_view(),
        reference.snapshot().merged_view(),
    );

    // The recovered service keeps going: new batches apply and are
    // logged at the right epochs.
    let a = recovered.apply(batch_for(n + 1)).expect("post-recovery");
    assert_eq!(a.epoch, n + 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_replays_only_past_the_checkpoint() {
    let dir = tmp_dir("checkpoint");
    let n = 10u64;
    let checkpoint_at = 6u64;
    {
        let svc = ViewService::builder()
            .durability(durable_config(&dir))
            .build(two_chain_db())
            .expect("durable service builds");
        for i in 1..=n {
            svc.apply(batch_for(i)).expect("apply");
            if i == checkpoint_at {
                assert!(svc.request_checkpoint(), "checkpoint accepted");
                // Wait for the background write so the later batches
                // are strictly after it.
                loop {
                    let s = svc.checkpoint_stats().expect("durable");
                    if s.checkpoints > 0 || s.failed > 0 {
                        assert_eq!(s.failed, 0, "checkpoint failed");
                        assert_eq!(s.last_epoch, checkpoint_at);
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }
        }
    }
    let (recovered, report) = ViewService::builder()
        .durability(durable_config(&dir))
        .recover(two_chain_db())
        .expect("recovery succeeds");
    assert_eq!(report.checkpoint_epoch, Some(checkpoint_at));
    assert_eq!(
        report.replayed_records,
        n - checkpoint_at,
        "only the tail past the checkpoint replays"
    );
    assert_eq!(recovered.epoch(), n);
    let reference = reference_after(n);
    assert!(recovered
        .snapshot()
        .merged_view()
        .syntactically_equal(&reference.snapshot().merged_view()));

    // External tickets survived the checkpoint: inserting after
    // recovery continues the pre-crash numbering, which only shows if
    // the served views stay syntactically equal through *new* inserts.
    recovered.apply(batch_for(n + 1)).expect("post-recovery");
    let reference2 = reference_after(n + 1);
    assert!(recovered
        .snapshot()
        .merged_view()
        .syntactically_equal(&reference2.snapshot().merged_view()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_truncated_silently() {
    let dir = tmp_dir("torn");
    let n = 8u64;
    {
        let svc = ViewService::builder()
            .durability(durable_config(&dir))
            .build(two_chain_db())
            .expect("durable service builds");
        for i in 1..=n {
            svc.apply(batch_for(i)).expect("apply");
        }
    }
    // Append half a frame to the newest segment — the write the crash
    // interrupted.
    let seg = newest_segment(&dir);
    let mut f = std::fs::OpenOptions::new().append(true).open(&seg).unwrap();
    f.write_all(b"@9999 deadbeef\nbatch epoch=999").unwrap();
    drop(f);

    let (recovered, report) = ViewService::builder()
        .durability(durable_config(&dir))
        .recover(two_chain_db())
        .expect("a torn tail recovers silently");
    assert!(report.torn_tail);
    assert_eq!(report.replayed_records, n, "all complete records survive");
    assert_eq!(recovered.epoch(), n);
    let reference = reference_after(n);
    assert!(recovered
        .snapshot()
        .merged_view()
        .syntactically_equal(&reference.snapshot().merged_view()));

    // The repair truncated the torn frame away: recovering a second
    // time reports a clean tail.
    drop(recovered);
    let (_, report2) = ViewService::builder()
        .durability(durable_config(&dir))
        .recover(two_chain_db())
        .expect("second recovery");
    assert!(!report2.torn_tail, "repair removed the torn frame");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_non_final_segment_is_an_explicit_error() {
    let dir = tmp_dir("corrupt");
    {
        let svc = ViewService::builder()
            // Tiny segments: every batch rotates, so corruption lands
            // in a non-final segment (a torn *tail* is recoverable;
            // corrupt *history* must never be silently dropped).
            .durability(durable_config(&dir).segment_bytes(1))
            .build(two_chain_db())
            .expect("durable service builds");
        for i in 1..=4 {
            svc.apply(batch_for(i)).expect("apply");
        }
    }
    let mut segs = all_segments(&dir);
    segs.sort();
    assert!(segs.len() >= 2, "tiny segments must have rotated");
    // Flip a payload byte inside the first (non-final) segment, past
    // its header line.
    let first = &segs[0];
    let mut bytes = std::fs::read(first).unwrap();
    let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
    let target = header_end + 20;
    bytes[target] ^= 0x20;
    std::fs::write(first, bytes).unwrap();

    let err = ViewService::builder()
        .durability(durable_config(&dir))
        .recover(two_chain_db())
        .expect_err("corrupt history must not recover silently");
    assert!(
        matches!(err, ServiceError::Storage(_)),
        "wrong error: {err:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn building_over_an_existing_wal_is_refused() {
    let dir = tmp_dir("refuse");
    {
        let svc = ViewService::builder()
            .durability(durable_config(&dir))
            .build(two_chain_db())
            .expect("durable service builds");
        svc.apply(batch_for(1)).expect("apply");
    }
    let err = ViewService::builder()
        .durability(durable_config(&dir))
        .build(two_chain_db())
        .expect_err("a fresh build must not shadow existing durable state");
    assert!(matches!(err, ServiceError::Storage(_)));
    // Recovery, by contrast, is the sanctioned path.
    ViewService::builder()
        .durability(durable_config(&dir))
        .recover(two_chain_db())
        .expect("recovery works on the same dir");
    let _ = std::fs::remove_dir_all(&dir);
}

fn all_segments(dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            let name = p.file_name()?.to_str()?;
            (name.starts_with("wal-") && name.ends_with(".log")).then(|| p.clone())
        })
        .collect()
}

fn newest_segment(dir: &Path) -> PathBuf {
    let mut segs = all_segments(dir);
    segs.sort();
    segs.pop().expect("at least one segment")
}

// ---- The kill-the-process test ----------------------------------------

/// Child-process body, disguised as a test: inert unless the parent
/// sets `MMV_RECOVERY_CHILD_DIR`. It applies the deterministic batch
/// stream under real group-commit fsync and prints `epoch N` after
/// each `apply` returns — i.e. after the WAL frame is durable — so
/// every epoch the parent *reads* is an epoch recovery must reach.
#[test]
fn kill_child_write_load() {
    let Ok(dir) = std::env::var("MMV_RECOVERY_CHILD_DIR") else {
        return;
    };
    let svc = ViewService::builder()
        .durability(
            Durability::durable(&dir)
                .fsync(FsyncPolicy::GroupCommit(std::time::Duration::ZERO))
                .checkpoint_every(4),
        )
        .build(two_chain_db())
        .expect("child durable service builds");
    for i in 1..=1_000u64 {
        let applied = svc.apply(batch_for(i)).expect("child apply");
        println!("epoch {}", applied.epoch);
        std::io::stdout().flush().unwrap();
    }
}

#[test]
fn sigkill_mid_load_recovers_the_durable_prefix() {
    let dir = tmp_dir("kill");
    std::fs::create_dir_all(&dir).unwrap();
    let mut child = Command::new(std::env::current_exe().unwrap())
        .args(["--exact", "kill_child_write_load", "--nocapture"])
        .env("MMV_RECOVERY_CHILD_DIR", &dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn child");
    // Read durable-epoch lines until the child is far enough along to
    // have cut a checkpoint (cadence 4) and written WAL past it.
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let mut durable_epoch = 0u64;
    while durable_epoch < 11 {
        let line = lines
            .next()
            .expect("child died before reaching epoch 11")
            .expect("read child stdout");
        if let Some(n) = line.strip_prefix("epoch ") {
            durable_epoch = n.trim().parse().expect("epoch line");
        }
    }
    // SIGKILL: no destructors, no flusher shutdown, no rename
    // completion — whatever is on disk is what recovery gets.
    child.kill().expect("kill child");
    let _ = child.wait();

    let (recovered, report) = ViewService::builder()
        .durability(Durability::durable(&dir))
        .recover(two_chain_db())
        .expect("recovery after SIGKILL");
    assert!(
        report.recovered_epoch >= durable_epoch,
        "acknowledged epoch {durable_epoch} lost: only {} recovered",
        report.recovered_epoch
    );
    // Replay covered exactly the records after the newest checkpoint.
    let base = report.checkpoint_epoch.unwrap_or(0);
    assert_eq!(
        report.replayed_records,
        report.recovered_epoch - base,
        "replay must cover exactly the post-checkpoint tail ({report:?})"
    );
    assert!(
        report.checkpoint_epoch.is_some(),
        "child passed epoch 8, cadence-4 checkpoints must have landed"
    );

    // The recovered view is syntactically identical — supports and
    // external insertion tickets included — to a service that applied
    // the same prefix and was never killed.
    let reference = reference_after(report.recovered_epoch);
    assert!(
        recovered
            .snapshot()
            .merged_view()
            .syntactically_equal(&reference.snapshot().merged_view()),
        "post-crash view diverged at epoch {}:\nrecovered:\n{}\nreference:\n{}",
        report.recovered_epoch,
        recovered.snapshot().merged_view(),
        reference.snapshot().merged_view(),
    );
    let _ = std::fs::remove_dir_all(&dir);
}
