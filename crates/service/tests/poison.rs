//! Panic-injection: a batch that panics mid-application poisons its
//! writer lanes, and the service must *recover* — keep serving reads,
//! keep accepting batches on every lane, and lose exactly the
//! panicking batch. (The pre-sharding service bricked instead: one
//! poisoned writer mutex made every later `apply`/`log` call panic.)

use mmv_constraints::solver::SolverConfig;
use mmv_constraints::{CmpOp, Constraint, NoDomains, Term, Value, Var};
use mmv_core::batch::UpdateBatch;
use mmv_core::tp::{FixpointConfig, Operator};
use mmv_core::{BodyAtom, Clause, ConstrainedAtom, ConstrainedDatabase, SupportMode};
use mmv_service::{ServiceError, ViewService};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn x() -> Term {
    Term::var(Var(0))
}

/// Two independent chains: b0 → a0 and b1 → a1 (two shards).
fn two_chain_db() -> ConstrainedDatabase {
    let mut clauses = Vec::new();
    for k in 0..2 {
        clauses.push(Clause::fact(
            &format!("b{k}"),
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(9),
            )),
        ));
        clauses.push(Clause::new(
            &format!("a{k}"),
            vec![x()],
            Constraint::truth(),
            vec![BodyAtom::new(&format!("b{k}"), vec![x()])],
        ));
    }
    ConstrainedDatabase::from_clauses(clauses)
}

fn point(pred: &str, v: i64) -> ConstrainedAtom {
    ConstrainedAtom::new(pred, vec![x()], Constraint::eq(x(), Term::int(v)))
}

fn poisoned_lanes_recover(mode: SupportMode) {
    let svc = Arc::new(
        ViewService::builder()
            .mode(mode)
            .build(two_chain_db())
            .expect("service builds"),
    );
    assert_eq!(svc.shard_map().num_shards(), 2);
    let cfg = SolverConfig::default();

    // A healthy batch first, so the published state is epoch 1.
    svc.apply(UpdateBatch::deleting(vec![point("b0", 0)]))
        .expect("healthy batch");
    let before = svc.snapshot();
    assert_eq!(before.epoch(), 1);

    // Inject a panic on the *second* lane of a cross-shard batch: the
    // first lane's view is already mutated when the panic fires, so
    // both held lanes end up poisoned with one of them half-applied.
    let calls = Arc::new(AtomicUsize::new(0));
    let hook_calls = calls.clone();
    svc.set_fault_hook(Some(Box::new(move |_shard| {
        if hook_calls.fetch_add(1, Ordering::SeqCst) == 1 {
            panic!("injected writer panic");
        }
    })));
    let poisoned = UpdateBatch::deleting(vec![point("b0", 1), point("b1", 1)]);
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| svc.apply(poisoned)));
    assert!(result.is_err(), "the injected panic must escape apply");
    svc.set_fault_hook(None);
    assert_eq!(calls.load(Ordering::SeqCst), 2, "panicked on the 2nd lane");

    // Readers were never at risk: the published state is untouched.
    let snap = svc.snapshot();
    assert_eq!(snap.epoch(), 1, "a panicked batch publishes nothing");
    for pred in ["b0", "b1", "a0", "a1"] {
        assert!(
            snap.ask(pred, &[Value::int(1)], &NoDomains, &cfg).unwrap(),
            "{pred}(1) must survive the panicked deletion"
        );
    }

    // Every lane accepts batches again: locking a poisoned lane clears
    // the poison and rebuilds the writer view from the last published
    // shard snapshot, dropping the half-applied state.
    let a = svc
        .apply(UpdateBatch::deleting(vec![point("b0", 2)]))
        .expect("lane 0 recovered");
    assert_eq!(a.epoch, 2);
    let b = svc
        .apply(UpdateBatch::deleting(vec![point("b1", 3)]))
        .expect("lane 1 recovered");
    assert_eq!(b.epoch, 3);
    let cross = svc
        .apply(UpdateBatch::deleting(vec![point("b0", 4), point("b1", 4)]))
        .expect("cross-shard batch after recovery");
    assert_eq!(cross.shards_touched, 2);

    // The recoveries were logged, one per poisoned lane, each rebuilt
    // to its lane's last published *shard* epoch (b0's lane saw the
    // healthy batch, b1's lane never advanced).
    {
        // `log()` borrows the live log (guard-scoped: drop it before
        // the next `apply`/`log` call).
        let log = svc.log();
        assert_eq!(log.recoveries().len(), 2);
        let b0_shard = svc.shard_map().shard_of("b0");
        for r in log.recoveries() {
            let expected = if r.shard == b0_shard { 1 } else { 0 };
            assert_eq!(r.epoch, expected, "lane {} published epoch", r.shard);
        }
    }

    // Exactly the panicked batch is lost: the served state equals a
    // service that applied only the successful batches...
    let clean = ViewService::builder()
        .mode(mode)
        .build(two_chain_db())
        .expect("clean service builds");
    for batch in [
        UpdateBatch::deleting(vec![point("b0", 0)]),
        UpdateBatch::deleting(vec![point("b0", 2)]),
        UpdateBatch::deleting(vec![point("b1", 3)]),
        UpdateBatch::deleting(vec![point("b0", 4), point("b1", 4)]),
    ] {
        clean.apply(batch).expect("clean apply");
    }
    let served = svc.snapshot().merged_view();
    assert!(served.syntactically_equal(&clean.snapshot().merged_view()));

    // ...and replaying the log (which never saw the panicked batch)
    // reproduces it too.
    let replayed = svc
        .log()
        .replay(svc.db(), &NoDomains, Operator::Tp, mode, svc.config())
        .expect("replay");
    assert!(replayed.syntactically_equal(&served));
}

#[test]
fn poisoned_lanes_recover_with_supports() {
    poisoned_lanes_recover(SupportMode::WithSupports);
}

#[test]
fn poisoned_lanes_recover_plain() {
    poisoned_lanes_recover(SupportMode::Plain);
}

#[test]
fn unpoisoned_lanes_keep_serving_while_another_lane_is_poisoned() {
    // Poison only lane 0 (single-shard batch) and leave it unrecovered;
    // lane 1 must keep applying batches as if nothing happened.
    let svc = Arc::new(
        ViewService::builder()
            .build(two_chain_db())
            .expect("service builds"),
    );
    let b0_shard = svc.shard_map().shard_of("b0");
    svc.set_fault_hook(Some(Box::new(move |shard| {
        if shard == b0_shard {
            panic!("injected: poison lane b0 only");
        }
    })));
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        svc.apply(UpdateBatch::deleting(vec![point("b0", 5)]))
    }));
    assert!(result.is_err());

    // The b1 lane was never locked by the panicking batch: healthy.
    let cfg = SolverConfig::default();
    for v in [1, 2, 3] {
        svc.apply(UpdateBatch::deleting(vec![point("b1", v)]))
            .expect("healthy lane applies");
    }
    assert_eq!(svc.epoch(), 3);
    assert!(!svc.ask("a1", &[Value::int(2)], &cfg).unwrap());
    assert!(svc.ask("a0", &[Value::int(5)], &cfg).unwrap());
    assert!(svc.log().recoveries().is_empty(), "nothing recovered yet");

    // First touch of the poisoned lane recovers it (the hook now lets
    // the batch through).
    svc.set_fault_hook(None);
    svc.apply(UpdateBatch::deleting(vec![point("b0", 5)]))
        .expect("poisoned lane recovers on next use");
    assert_eq!(svc.log().recoveries().len(), 1);
    assert!(!svc.ask("a0", &[Value::int(5)], &cfg).unwrap());
}

#[test]
fn panicking_insert_batch_does_not_burn_tickets() {
    // A panicked batch must not consume external-insertion tickets:
    // otherwise every later insert's `External(t)` support diverges
    // from what replaying the log (which never saw the panicked batch)
    // would produce, silently breaking the recovery story.
    let svc = Arc::new(
        ViewService::builder()
            .build(two_chain_db())
            .expect("service builds"),
    );
    let interval = |pred: &str, lo: i64| {
        ConstrainedAtom::new(
            pred,
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(lo)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(lo + 2),
            )),
        )
    };
    // Panic mid-application of a batch carrying two insertions.
    svc.set_fault_hook(Some(Box::new(|_| panic!("injected insert-batch panic"))));
    let poisoned =
        UpdateBatch::inserting(vec![interval("b0", 20), interval("b1", 20)]).delete(point("b0", 1));
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| svc.apply(poisoned)));
    assert!(result.is_err());
    svc.set_fault_hook(None);

    // A later insert-carrying batch applies on the recovered lanes and
    // must reuse the un-burned tickets: replaying the log reproduces
    // the served view *syntactically*, External tickets included.
    svc.apply(UpdateBatch::inserting(vec![interval("b0", 30)]).delete(point("b1", 2)))
        .expect("recovered lanes accept inserts");
    svc.apply(UpdateBatch::inserting(vec![interval("b1", 40)]))
        .expect("second insert batch");
    let replayed = svc
        .log()
        .replay(
            svc.db(),
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            svc.config(),
        )
        .expect("replay");
    assert!(
        replayed.syntactically_equal(&svc.snapshot().merged_view()),
        "ticket burn broke replay:\nreplayed:\n{replayed}\nserved:\n{}",
        svc.snapshot().merged_view()
    );
}

#[test]
fn worker_killed_by_panicking_batch_reports_instead_of_repanicking() {
    // The worker thread dies with the panicking batch, but join()
    // reports WorkerGone rather than panicking the supervisor — and
    // the service itself recovers the lane on its next use.
    let svc = Arc::new(
        ViewService::builder()
            .build(two_chain_db())
            .expect("service builds"),
    );
    svc.set_fault_hook(Some(Box::new(|_| panic!("injected worker-batch panic"))));
    let (tx, worker) = mmv_service::ServiceWorker::spawn(svc.clone());
    tx.submit(UpdateBatch::deleting(vec![point("b0", 1)]))
        .expect("submit");
    drop(tx);
    let err = worker.join().unwrap_err();
    let ServiceError::WorkerGone(payload) = err else {
        panic!("expected WorkerGone, got {err}");
    };
    let payload = payload.expect("the panic payload message is carried through");
    assert!(
        payload.contains("injected worker-batch panic"),
        "the hook's panic message survives the join: {payload:?}"
    );
    svc.set_fault_hook(None);
    svc.apply(UpdateBatch::deleting(vec![point("b0", 1)]))
        .expect("lane recovers after the worker's panic");
    assert_eq!(svc.log().recoveries().len(), 1);
}

#[test]
fn worker_surfaces_batch_errors_not_poison() {
    // A worker feeding a service whose batch fails (budget) gets a
    // clean error — unrelated to the poison path, but pins that the
    // error path still rolls back and rejects.
    let svc = Arc::new(
        ViewService::builder()
            .fixpoint(FixpointConfig {
                max_entries: 5,
                ..FixpointConfig::default()
            })
            .build(two_chain_db())
            .expect("4-entry base view fits"),
    );
    let big = UpdateBatch::inserting(vec![
        ConstrainedAtom::new(
            "b0",
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(20)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(25),
            )),
        ),
        ConstrainedAtom::new(
            "b0",
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(30)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(35),
            )),
        ),
    ]);
    let err = svc.apply(big).unwrap_err();
    assert!(matches!(err, ServiceError::Batch(_)));
    assert_eq!(svc.epoch(), 0);
    // The lane still works.
    svc.apply(UpdateBatch::deleting(vec![point("b0", 1)]))
        .expect("lane healthy after rejected batch");
}

#[test]
fn pool_worker_panic_does_not_poison_the_lane() {
    // A panic inside a *pool worker* (mid-round, intra-lane
    // parallelism) must NOT poison the writer lane: the round's merge
    // never runs, the error propagates through the ordinary
    // rollback-on-error path, and the next batch applies without any
    // lane recovery being logged. The event is journaled in the health
    // transition ring instead.
    let svc = Arc::new(
        ViewService::builder()
            .pool_threads(2)
            .build(two_chain_db())
            .expect("service builds"),
    );
    let pool = Arc::clone(svc.pool().expect("pool enabled"));
    let cfg = SolverConfig::default();

    svc.apply(UpdateBatch::deleting(vec![point("b0", 0)]))
        .expect("healthy batch");
    assert_eq!(svc.epoch(), 1);
    let transitions_before = svc.health_transitions_total();

    // Every pool task panics: the first round of the next batch's
    // propagation dies inside a worker thread.
    pool.set_fault_hook(Some(Box::new(|_| panic!("injected pool-worker panic"))));
    let interval = ConstrainedAtom::new(
        "b0",
        vec![x()],
        Constraint::cmp(x(), CmpOp::Ge, Term::int(20)).and(Constraint::cmp(
            x(),
            CmpOp::Le,
            Term::int(23),
        )),
    );
    let err = svc
        .apply(UpdateBatch::inserting(vec![interval.clone()]))
        .expect_err("the worker panic surfaces as an error, not a re-panic");
    assert!(
        err.to_string().contains("pool worker panicked mid-round"),
        "unexpected error: {err}"
    );
    pool.set_fault_hook(None);

    // Nothing published, readers unharmed.
    assert_eq!(svc.epoch(), 1);
    assert!(!svc.ask("a0", &[Value::int(21)], &cfg).unwrap());

    // The containment was journaled as a health event (from == to,
    // state never left Healthy), and counted.
    assert!(svc.health_transitions_total() > transitions_before);
    let journal = svc.health_transitions();
    let event = journal
        .last()
        .expect("the lane event is in the transition ring");
    assert_eq!(event.from, event.to, "containment is not a state change");
    assert!(
        event.reason.contains("pool worker panic"),
        "journal entry names the cause: {:?}",
        event.reason
    );

    // The lane was never poisoned: the same batch applies cleanly with
    // no lane recovery logged, and the pool's workers survived.
    svc.apply(UpdateBatch::inserting(vec![interval]))
        .expect("lane healthy, workers alive");
    assert_eq!(svc.epoch(), 2);
    assert!(svc.ask("a0", &[Value::int(21)], &cfg).unwrap());
    assert!(
        svc.log().recoveries().is_empty(),
        "error-path rollback, not poison recovery"
    );
}
