//! Concurrency smoke tests: reader threads racing the writer.
//!
//! The program is a chain `b → a → c`, and every batch updates `b` and
//! lets maintenance propagate — so in every *published* state the three
//! predicates answer identically. A reader that ever observed a
//! half-applied batch (say, `b` already weakened but `a` not yet) would
//! see the invariant break; a reader that observed a torn publication
//! would see epochs move backwards. Both are asserted on every read.

use mmv_constraints::solver::SolverConfig;
use mmv_constraints::{CmpOp, Constraint, NoDomains, Term, Value, Var};
use mmv_core::batch::UpdateBatch;
use mmv_core::tp::Operator;
use mmv_core::{BodyAtom, Clause, ConstrainedAtom, ConstrainedDatabase, SupportMode};
use mmv_service::{ServiceWorker, ViewService};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn x() -> Term {
    Term::var(Var(0))
}

fn chain_db() -> ConstrainedDatabase {
    ConstrainedDatabase::from_clauses(vec![
        Clause::fact(
            "b",
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(99),
            )),
        ),
        Clause::new(
            "a",
            vec![x()],
            Constraint::truth(),
            vec![BodyAtom::new("b", vec![x()])],
        ),
        Clause::new(
            "c",
            vec![x()],
            Constraint::truth(),
            vec![BodyAtom::new("a", vec![x()])],
        ),
    ])
}

fn point(v: i64) -> ConstrainedAtom {
    ConstrainedAtom::new("b", vec![x()], Constraint::eq(x(), Term::int(v)))
}

fn interval(lo: i64, hi: i64) -> ConstrainedAtom {
    ConstrainedAtom::new(
        "b",
        vec![x()],
        Constraint::cmp(x(), CmpOp::Ge, Term::int(lo)).and(Constraint::cmp(
            x(),
            CmpOp::Le,
            Term::int(hi),
        )),
    )
}

fn service(mode: SupportMode) -> Arc<ViewService> {
    Arc::new(
        ViewService::builder()
            .mode(mode)
            .build(chain_db())
            .expect("base view builds"),
    )
}

/// The batch sequence the writer applies: point deletions walking
/// through the base interval plus periodic fresh-space insertions.
fn batches(n: usize) -> Vec<UpdateBatch> {
    (0..n)
        .map(|k| {
            let mut batch =
                UpdateBatch::deleting(vec![point(2 * k as i64), point(2 * k as i64 + 1)]);
            if k % 3 == 0 {
                let lo = 200 + 10 * k as i64;
                batch = batch.insert(interval(lo, lo + 4));
            }
            batch
        })
        .collect()
}

fn readers_race_writer(mode: SupportMode) {
    let svc = service(mode);
    let n_batches = 12;
    let final_epoch = n_batches as u64;
    let readers: Vec<_> = (0..4)
        .map(|seed| {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let cfg = SolverConfig::default();
                let mut last_epoch = 0u64;
                let mut reads = 0u64;
                // Sample points across the deleted range, the kept
                // range, and the inserted range.
                let probes = [0i64, 5, 11, 42, 97, 203, 214];
                loop {
                    let snap = svc.snapshot();
                    let epoch = snap.epoch();
                    assert!(
                        epoch >= last_epoch,
                        "epoch moved backwards: {last_epoch} -> {epoch}"
                    );
                    last_epoch = epoch;
                    let p = probes[(reads as usize + seed) % probes.len()];
                    let in_b = snap
                        .ask("b", &[Value::int(p)], &NoDomains, &cfg)
                        .expect("b query");
                    // Internal consistency: the chain must agree with
                    // its base inside one snapshot, whatever the epoch.
                    for derived in ["a", "c"] {
                        let hit = snap
                            .ask(derived, &[Value::int(p)], &NoDomains, &cfg)
                            .expect("derived query");
                        assert_eq!(
                            in_b, hit,
                            "snapshot at epoch {epoch} is torn: b({p}) = {in_b} \
                             but {derived}({p}) = {hit}"
                        );
                    }
                    reads += 1;
                    if epoch >= final_epoch {
                        return reads;
                    }
                }
            })
        })
        .collect();

    let (tx, worker) = ServiceWorker::spawn(svc.clone());
    for batch in batches(n_batches) {
        tx.submit(batch).expect("submit");
    }
    drop(tx);
    assert_eq!(worker.join().expect("worker"), n_batches);

    for reader in readers {
        let reads = reader.join().expect("reader thread");
        assert!(reads > 0);
    }

    // Final content: the walked points are gone, the rest intact, the
    // inserted intervals present — all the way up the chain.
    let snap = svc.snapshot();
    assert_eq!(snap.epoch(), final_epoch);
    let cfg = SolverConfig::default();
    for pred in ["a", "b", "c"] {
        assert!(!snap.ask(pred, &[Value::int(5)], &NoDomains, &cfg).unwrap());
        assert!(snap.ask(pred, &[Value::int(42)], &NoDomains, &cfg).unwrap());
        assert!(snap
            .ask(pred, &[Value::int(203)], &NoDomains, &cfg)
            .unwrap());
    }

    // Recovery: replaying the log reproduces the served view exactly.
    let replayed = svc
        .log()
        .replay(svc.db(), &NoDomains, Operator::Tp, mode, svc.config())
        .expect("replay");
    assert!(replayed.syntactically_equal(&snap.merged_view()));
}

#[test]
fn readers_race_writer_with_supports() {
    readers_race_writer(SupportMode::WithSupports);
}

#[test]
fn readers_race_writer_plain() {
    readers_race_writer(SupportMode::Plain);
}

#[test]
fn concurrent_direct_appliers_serialize() {
    // Multiple threads calling `apply` directly: batches serialize on
    // the writer lock, every epoch is distinct, and the log holds all
    // of them in epoch order.
    let svc = service(SupportMode::WithSupports);
    let applied_epochs = Arc::new(AtomicU64::new(0));
    let writers: Vec<_> = (0..4)
        .map(|w| {
            let svc = svc.clone();
            let applied_epochs = applied_epochs.clone();
            std::thread::spawn(move || {
                for k in 0..3 {
                    let v = 10 * w + k; // distinct points per writer
                    svc.apply(UpdateBatch::deleting(vec![point(v)]))
                        .expect("apply");
                    applied_epochs.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer thread");
    }
    assert_eq!(applied_epochs.load(Ordering::Relaxed), 12);
    assert_eq!(svc.epoch(), 12);
    let log = svc.log();
    assert_eq!(log.len(), 12);
    let epochs: Vec<u64> = log.records().iter().map(|r| r.epoch).collect();
    assert_eq!(epochs, (1..=12).collect::<Vec<_>>());
    // All 12 distinct points are gone.
    let cfg = SolverConfig::default();
    for w in 0..4i64 {
        for k in 0..3i64 {
            assert!(!svc.ask("c", &[Value::int(10 * w + k)], &cfg).unwrap());
        }
    }
}
