//! Seeded storage-fault torture: random workloads under random fault
//! schedules, checked against a reference service that never saw a
//! failed batch.
//!
//! The contract under test is the strongest the service makes:
//!
//! * A batch that `apply` ACKs is in the served view, durable, and
//!   identical to the reference's.
//! * A batch that `apply` rejects leaves **no trace** — not in the
//!   served view, not in the log, not on disk.
//! * A persistent fault flips the service read-only; healing the
//!   "disk" lets the background probe restore write service.
//! * After a simulated crash frozen at an arbitrary operation,
//!   `recover()` serves exactly the acked prefix — plus at most the
//!   single in-flight batch whose frame hit the disk before the
//!   crash's ACK could.
//!
//! Every assertion carries the failing seed; re-run one with
//! `MMV_FAULT_SEED=<seed> cargo test -p mmv-service --test
//! fault_torture env_seeded_torture`.

use mmv_constraints::solver::SolverConfig;
use mmv_constraints::{CmpOp, Constraint, Term, Value, Var};
use mmv_core::batch::UpdateBatch;
use mmv_core::{BodyAtom, Clause, ConstrainedAtom, ConstrainedDatabase};
use mmv_service::{
    Durability, Fault, FaultPlan, FaultVfs, FsyncPolicy, OpSel, RetryPolicy, ServiceError,
    ServiceHealth, StdVfs, StorageOp, ViewService,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn x() -> Term {
    Term::var(Var(0))
}

/// `n` independent chains bk → ak, one writer lane each.
fn chain_db(n: usize) -> ConstrainedDatabase {
    let mut clauses = Vec::new();
    for k in 0..n {
        clauses.push(Clause::fact(
            &format!("b{k}"),
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(49),
            )),
        ));
        clauses.push(Clause::new(
            &format!("a{k}"),
            vec![x()],
            Constraint::truth(),
            vec![BodyAtom::new(&format!("b{k}"), vec![x()])],
        ));
    }
    ConstrainedDatabase::from_clauses(clauses)
}

fn point(pred: &str, v: i64) -> ConstrainedAtom {
    ConstrainedAtom::new(pred, vec![x()], Constraint::eq(x(), Term::int(v)))
}

fn interval(pred: &str, lo: i64, hi: i64) -> ConstrainedAtom {
    ConstrainedAtom::new(
        pred,
        vec![x()],
        Constraint::cmp(x(), CmpOp::Ge, Term::int(lo)).and(Constraint::cmp(
            x(),
            CmpOp::Le,
            Term::int(hi),
        )),
    )
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmv-torture-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// splitmix64 — the workload's own deterministic stream, independent
/// of the fault plan's.
fn next(rng: &mut u64) -> u64 {
    *rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *rng;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A random batch: point deletes walking the base intervals, fresh
/// interval insertions (external tickets), occasional cross-shard.
fn random_batch(rng: &mut u64, step: u64) -> UpdateBatch {
    let r = next(rng);
    let comp = (r % 2) as usize;
    let pred = format!("b{comp}");
    let mut batch = if r & 4 == 0 {
        UpdateBatch::deleting(vec![point(&pred, ((r >> 8) % 50) as i64)])
    } else {
        let lo = 100 + 5 * step as i64;
        UpdateBatch::inserting(vec![interval(&pred, lo, lo + 2)])
    };
    if r & 24 == 0 {
        let other = format!("b{}", 1 - comp);
        batch = batch.delete(point(&other, ((r >> 16) % 50) as i64));
    }
    batch
}

fn assert_same(tag: &str, seed: u64, live: &ViewService, reference: &ViewService) {
    let lv = live.snapshot().merged_view();
    let rv = reference.snapshot().merged_view();
    assert!(
        lv.syntactically_equal(&rv),
        "seed {seed}: {tag}: served view diverged from the reference\nlive:\n{lv}\nreference:\n{rv}"
    );
}

/// Heals the fault image and waits for the probe to restore write
/// service. New random faults can re-break storage mid-probe, so keep
/// healing until the service reports healthy.
fn heal_until_healthy(svc: &ViewService, vfs: &FaultVfs, seed: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while svc.health() != ServiceHealth::Healthy {
        vfs.heal();
        assert!(
            Instant::now() < deadline,
            "seed {seed}: the probe never restored write service; health = {}, transitions: {:?}",
            svc.health(),
            svc.health_transitions(),
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn fast_retry() -> RetryPolicy {
    RetryPolicy::default().with_backoff(Duration::ZERO, Duration::ZERO)
}

/// One full torture run: 60 random batches under the seeded fault mix,
/// state checked against the reference after every batch, then a
/// recovery of whatever the faulted VFS let reach the disk.
fn torture_seed(seed: u64) {
    let dir = tmp_dir(&format!("seed-{seed}"));
    let vfs = FaultVfs::new(Arc::new(StdVfs), FaultPlan::seeded(seed));
    let svc = ViewService::builder()
        .durability(
            Durability::durable(&dir)
                .fsync(FsyncPolicy::Always)
                .checkpoint_every(0)
                .vfs(Arc::new(vfs.clone()))
                .probe_interval(Duration::from_millis(2)),
        )
        .retry(fast_retry())
        .build(chain_db(2))
        .expect("segments are created lazily, so the build itself is unfaulted");
    let reference = ViewService::builder()
        .build(chain_db(2))
        .expect("reference builds");

    let mut rng = seed ^ 0x5DEE_CE66_D154_33D5;
    let mut acked = 0u64;
    let mut rejected = 0u64;
    for step in 0..60 {
        let batch = random_batch(&mut rng, step);
        match svc.apply(batch.clone()) {
            Ok(_) => {
                reference
                    .apply(batch)
                    .expect("the reference applies every batch the live service acked");
                acked += 1;
            }
            Err(ServiceError::Storage(_)) | Err(ServiceError::ReadOnly) => {
                rejected += 1;
                if svc.health() == ServiceHealth::ReadOnly {
                    heal_until_healthy(&svc, &vfs, seed);
                }
            }
            Err(e) => panic!("seed {seed}: unexpected apply error: {e}"),
        }
        // Rejected or acked, the served view must equal the
        // reference's — a failed batch leaves no trace.
        assert_same("after batch", seed, &svc, &reference);
    }
    assert!(acked > 0, "seed {seed}: no batch ever landed");
    let live_epoch = svc.epoch();
    let stats = vfs.stats();
    drop(svc);

    // Recovery over the surviving files (unfaulted) serves exactly the
    // acked state: under FsyncPolicy::Always an ACK means durable.
    let (recovered, report) = ViewService::builder()
        .durability(
            Durability::durable(&dir)
                .fsync(FsyncPolicy::Never)
                .checkpoint_every(0),
        )
        .recover(chain_db(2))
        .unwrap_or_else(|e| {
            panic!(
                "seed {seed}: recovery failed after {acked} acked / {rejected} rejected \
                 batches ({} ops, {} faults): {e}",
                stats.ops,
                stats.injected.len()
            )
        });
    assert_eq!(
        recovered.epoch(),
        live_epoch,
        "seed {seed}: recovered epoch diverged (report: {report:?})"
    );
    assert_same("after recovery", seed, &recovered, &reference);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Crash sweep for one seed: freeze the storage image at operation `k`
/// for a spread of `k`, recover each image, and require the recovered
/// state to be the acked prefix — plus at most the in-flight batch
/// whose written-but-unacknowledged frame legitimately survives a
/// crash between the write and its ACK.
fn crash_sweep_seed(seed: u64) {
    for k in [2, 4, 7, 11, 16, 22] {
        let dir = tmp_dir(&format!("crash-{seed}-{k}"));
        let vfs = FaultVfs::new(
            Arc::new(StdVfs),
            FaultPlan::none().script(OpSel::Nth(k), Fault::Crash),
        );
        let svc = ViewService::builder()
            .durability(
                Durability::durable(&dir)
                    .fsync(FsyncPolicy::Always)
                    .checkpoint_every(0)
                    .vfs(Arc::new(vfs.clone()))
                    .probe_interval(Duration::from_secs(3600)),
            )
            .retry(RetryPolicy::none())
            .build(chain_db(2))
            .expect("build");
        let reference = ViewService::builder().build(chain_db(2)).expect("build");
        let mut rng = seed ^ 0x5DEE_CE66_D154_33D5;
        let mut in_flight = None;
        for step in 0..30 {
            let batch = random_batch(&mut rng, step);
            match svc.apply(batch.clone()) {
                Ok(_) => {
                    reference.apply(batch).expect("reference");
                }
                Err(_) => {
                    in_flight = Some(batch);
                    break;
                }
            }
        }
        drop(svc);

        let (recovered, _) = ViewService::builder()
            .durability(
                Durability::durable(&dir)
                    .fsync(FsyncPolicy::Never)
                    .checkpoint_every(0),
            )
            .recover(chain_db(2))
            .unwrap_or_else(|e| panic!("seed {seed} crash@{k}: recovery failed: {e}"));
        let rv = recovered.snapshot().merged_view();
        if rv.syntactically_equal(&reference.snapshot().merged_view()) {
            let _ = std::fs::remove_dir_all(&dir);
            continue;
        }
        // Not the acked prefix — the only other legal image is acked
        // plus the one in-flight batch.
        let batch = in_flight.unwrap_or_else(|| {
            panic!("seed {seed} crash@{k}: recovered state diverged with no batch in flight:\n{rv}")
        });
        reference.apply(batch).expect("reference applies in-flight");
        assert!(
            rv.syntactically_equal(&reference.snapshot().merged_view()),
            "seed {seed} crash@{k}: recovered state is neither the acked prefix nor \
             acked + in-flight:\n{rv}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn pinned_seeds_torture() {
    for seed in 1..=32u64 {
        torture_seed(seed);
    }
}

#[test]
fn pinned_seeds_crash_sweep() {
    for seed in [3, 7, 11, 19, 27, 31] {
        crash_sweep_seed(seed);
    }
}

/// `MMV_FAULT_SEED=<n>` runs one extra seed end to end (torture +
/// crash sweep) — the CI hook for reproducing and for rolling fresh
/// seeds without editing the pinned list.
#[test]
fn env_seeded_torture() {
    let Ok(raw) = std::env::var("MMV_FAULT_SEED") else {
        return;
    };
    let seed: u64 = raw
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("MMV_FAULT_SEED={raw:?} is not a u64: {e}"));
    eprintln!("fault torture: MMV_FAULT_SEED = {seed}");
    torture_seed(seed);
    crash_sweep_seed(seed);
}

/// The acceptance centerpiece: a persistent fault flips the service
/// read-only mid-traffic; concurrent readers never miss a beat and
/// observe monotone epochs throughout; healing the disk restores
/// write service, journaled both ways.
#[test]
fn persistent_fault_flips_read_only_while_readers_keep_serving() {
    let dir = tmp_dir("read-only");
    // The 4th data append hits ENOSPC, persistently.
    let vfs = FaultVfs::new(
        Arc::new(StdVfs),
        FaultPlan::none().script(OpSel::NthOfKind(StorageOp::Append, 4), Fault::Enospc),
    );
    let svc = Arc::new(
        ViewService::builder()
            .durability(
                Durability::durable(&dir)
                    .fsync(FsyncPolicy::Always)
                    .checkpoint_every(0)
                    .vfs(Arc::new(vfs.clone()))
                    .probe_interval(Duration::from_millis(2)),
            )
            .retry(fast_retry())
            .build(chain_db(2))
            .expect("build"),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let cfg = SolverConfig::default();
    std::thread::scope(|s| {
        // Two background readers: every snapshot must answer, and the
        // epochs they observe must be monotone across the flip.
        let mut readers = Vec::new();
        for _ in 0..2 {
            let svc = svc.clone();
            let stop = stop.clone();
            let reads = reads.clone();
            let cfg = cfg.clone();
            readers.push(s.spawn(move || {
                let mut last = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = svc.snapshot();
                    assert!(snap.epoch() >= last, "reader observed a rewound epoch");
                    last = snap.epoch();
                    snap.ask("a0", &[Value::int(1)], &mmv_constraints::NoDomains, &cfg)
                        .expect("reads keep working in every health state");
                    reads.fetch_add(1, Ordering::Relaxed);
                }
                last
            }));
        }

        // Writer: batches 1..=3 land (appends 1-3; append 0 is the
        // segment header), batch 4 hits ENOSPC.
        for i in 1..=3 {
            svc.apply(UpdateBatch::deleting(vec![point("b0", i)]))
                .expect("pre-fault batches apply");
        }
        let err = svc
            .apply(UpdateBatch::deleting(vec![point("b0", 4)]))
            .expect_err("the faulted append must reject the batch");
        assert!(matches!(err, ServiceError::Storage(_)), "{err}");
        assert!(err.to_string().contains("persistent"), "{err}");
        assert_eq!(svc.health(), ServiceHealth::ReadOnly);
        assert_eq!(svc.epoch(), 3, "the rejected batch published nothing");

        // Writes now fail fast, without touching storage.
        let ops_before = vfs.stats().ops;
        let err = svc
            .apply(UpdateBatch::deleting(vec![point("b0", 5)]))
            .expect_err("read-only rejects writes");
        assert!(matches!(err, ServiceError::ReadOnly), "{err}");
        assert_eq!(
            vfs.stats().ops,
            ops_before,
            "a fast-failed write performs no storage I/O"
        );

        // Readers kept serving epoch 3 throughout the outage.
        let reads_during_outage = reads.load(Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(10));
        assert!(
            reads.load(Ordering::Relaxed) > reads_during_outage,
            "readers stalled during the outage"
        );

        // The disk comes back; the probe restores write service.
        vfs.heal();
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.health() != ServiceHealth::Healthy {
            assert!(Instant::now() < deadline, "probe never healed the service");
            std::thread::sleep(Duration::from_millis(1));
        }
        let applied = svc
            .apply(UpdateBatch::deleting(vec![point("b0", 6)]))
            .expect("writes resume after the probe heals");
        assert_eq!(applied.epoch, 4);

        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().expect("reader thread") >= 3);
        }
    });

    // Both flips were journaled, in order, with reasons.
    let transitions = svc.health_transitions();
    assert_eq!(transitions.len(), 2, "{transitions:?}");
    assert_eq!(transitions[0].from, ServiceHealth::Healthy);
    assert_eq!(transitions[0].to, ServiceHealth::ReadOnly);
    assert!(transitions[0].reason.contains("append"), "{transitions:?}");
    assert_eq!(transitions[1].from, ServiceHealth::ReadOnly);
    assert_eq!(transitions[1].to, ServiceHealth::Healthy);

    // The outage is in the WAL too: recovery sees the health frames
    // and serves the full post-heal state.
    drop(svc);
    let (recovered, _) = ViewService::builder()
        .durability(
            Durability::durable(&dir)
                .fsync(FsyncPolicy::Never)
                .checkpoint_every(0),
        )
        .recover(chain_db(2))
        .expect("recovery");
    assert_eq!(recovered.epoch(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A group-commit window shared by several writers: when the window's
/// one fsync fails, *every* writer in the batch gets the error and
/// none of their epochs is ever published.
#[test]
fn group_commit_fsync_failure_fails_every_writer_in_the_window() {
    let dir = tmp_dir("gc-broadcast");
    let vfs = FaultVfs::new(
        Arc::new(StdVfs),
        FaultPlan::none().script(OpSel::NthOfKind(StorageOp::Fsync, 0), Fault::FsyncFail),
    );
    let svc = Arc::new(
        ViewService::builder()
            .durability(
                Durability::durable(&dir)
                    .fsync(FsyncPolicy::GroupCommit(Duration::from_millis(25)))
                    .checkpoint_every(0)
                    .vfs(Arc::new(vfs.clone()))
                    .probe_interval(Duration::from_millis(2)),
            )
            .retry(fast_retry())
            .build(chain_db(4))
            .expect("build"),
    );
    assert_eq!(svc.shard_map().num_shards(), 4);

    // Four writers on four disjoint lanes, all inside one coalescing
    // window, all waiting on the same doomed fsync.
    let errors: Vec<ServiceError> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|k| {
                let svc = svc.clone();
                s.spawn(move || svc.apply(UpdateBatch::deleting(vec![point(&format!("b{k}"), 1)])))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("writer thread")
                    .expect_err("every writer in the failed window gets the error")
            })
            .collect()
    });
    for e in &errors {
        assert!(matches!(e, ServiceError::Storage(_)), "{e}");
    }
    assert_eq!(
        svc.epoch(),
        0,
        "no writer in the failed window observes a published epoch"
    );
    assert!(svc.log().is_empty(), "the failed batches left no records");
    assert_eq!(svc.health(), ServiceHealth::ReadOnly);
    for k in 0..4 {
        assert_eq!(svc.snapshot().shard_epoch(k), 0);
    }

    // Heal; the probe brings writes back and the next window commits.
    vfs.heal();
    let deadline = Instant::now() + Duration::from_secs(10);
    while svc.health() != ServiceHealth::Healthy {
        assert!(Instant::now() < deadline, "probe never healed the service");
        std::thread::sleep(Duration::from_millis(1));
    }
    let applied = svc
        .apply(UpdateBatch::deleting(vec![point("b0", 2)]))
        .expect("post-heal batch commits");
    // Concurrent rolled-back writers may leave epoch gaps (rewind is
    // conditional); what matters is that the post-heal batch is the
    // first and only published one.
    assert!(applied.epoch >= 1);
    assert_eq!(svc.epoch(), applied.epoch);
    assert_eq!(svc.log().len(), 1, "exactly the post-heal batch is logged");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `FsyncPolicy::Never` has no flusher to defer to: an append error
/// surfaces in `apply` itself, cleanly, with full attribution.
#[test]
fn never_policy_append_error_fails_cleanly() {
    let dir = tmp_dir("never");
    // Append 0 is the segment header, append 1 the first batch frame,
    // append 2 the second batch's frame — the one that dies.
    let vfs = FaultVfs::new(
        Arc::new(StdVfs),
        FaultPlan::none().script(OpSel::NthOfKind(StorageOp::Append, 2), Fault::Enospc),
    );
    let svc = ViewService::builder()
        .durability(
            Durability::durable(&dir)
                .fsync(FsyncPolicy::Never)
                .checkpoint_every(0)
                .vfs(Arc::new(vfs.clone()))
                .probe_interval(Duration::from_millis(2)),
        )
        .retry(fast_retry())
        .build(chain_db(2))
        .expect("build");
    svc.apply(UpdateBatch::deleting(vec![point("b0", 1)]))
        .expect("first batch applies");
    let err = svc
        .apply(UpdateBatch::deleting(vec![point("b0", 2)]))
        .expect_err("the faulted append rejects the batch");
    let msg = err.to_string();
    assert!(msg.contains("append"), "op attribution: {msg}");
    assert!(msg.contains("wal-000001.log"), "path attribution: {msg}");
    assert!(msg.contains("persistent"), "classification: {msg}");
    assert_eq!(svc.epoch(), 1, "the rejected batch published nothing");
    assert_eq!(svc.log().len(), 1, "and logged nothing");
    assert_eq!(svc.health(), ServiceHealth::ReadOnly);

    vfs.heal();
    let deadline = Instant::now() + Duration::from_secs(10);
    while svc.health() != ServiceHealth::Healthy {
        assert!(Instant::now() < deadline, "probe never healed the service");
        std::thread::sleep(Duration::from_millis(1));
    }
    let applied = svc
        .apply(UpdateBatch::deleting(vec![point("b0", 2)]))
        .expect("the retried batch lands after heal");
    assert_eq!(applied.epoch, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Checkpoint failures degrade health without ever stopping writes or
/// killing the checkpointer: heal the disk and the held job completes,
/// restoring full health.
#[test]
fn checkpoint_faults_degrade_without_stopping_writes() {
    let dir = tmp_dir("ckpt-degraded");
    // Every path containing "chk-" fails: checkpoints are down, the
    // WAL is untouched.
    let vfs = FaultVfs::new(
        Arc::new(StdVfs),
        FaultPlan::none().script(OpSel::PathContains("chk-".into()), Fault::Eio),
    );
    let svc = ViewService::builder()
        .durability(
            Durability::durable(&dir)
                .fsync(FsyncPolicy::Always)
                .checkpoint_every(2)
                .vfs(Arc::new(vfs.clone()))
                .probe_interval(Duration::from_millis(2)),
        )
        .retry(fast_retry())
        .build(chain_db(2))
        .expect("build");

    svc.apply(UpdateBatch::deleting(vec![point("b0", 1)]))
        .expect("apply");
    svc.apply(UpdateBatch::deleting(vec![point("b0", 2)]))
        .expect("epoch 2 applies and stages a checkpoint");
    let deadline = Instant::now() + Duration::from_secs(10);
    while svc.health() != ServiceHealth::Degraded {
        assert!(
            Instant::now() < deadline,
            "the failing checkpoint never degraded health: {:?}",
            svc.health_transitions()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // Degraded ≠ read-only: writes keep committing.
    let applied = svc
        .apply(UpdateBatch::deleting(vec![point("b0", 3)]))
        .expect("writes continue while degraded");
    assert_eq!(applied.epoch, 3);
    assert_eq!(svc.checkpoint_stats().expect("durable").checkpoints, 0);

    // Heal: the checkpointer's held job re-attempts and completes.
    vfs.heal();
    let deadline = Instant::now() + Duration::from_secs(10);
    while svc.health() != ServiceHealth::Healthy {
        assert!(
            Instant::now() < deadline,
            "the healed checkpointer never restored health: {:?}",
            svc.health_transitions()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    // Health flips before the counters are published; poll briefly.
    let deadline = Instant::now() + Duration::from_secs(10);
    while svc.checkpoint_stats().expect("durable").checkpoints == 0 {
        assert!(Instant::now() < deadline, "no checkpoint landed after heal");
        std::thread::sleep(Duration::from_millis(1));
    }
    let transitions = svc.health_transitions();
    assert!(
        transitions
            .iter()
            .any(|t| t.to == ServiceHealth::Degraded && t.reason.contains("checkpoint")),
        "{transitions:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
