//! Observability surface tests: concurrent scrapes against live
//! writers, full-subsystem coverage of one Prometheus scrape, the
//! batch trace ring, and the disabled-observability path.

use mmv_constraints::{CmpOp, Constraint, Term, Var};
use mmv_core::batch::UpdateBatch;
use mmv_core::{BodyAtom, Clause, ConstrainedAtom, ConstrainedDatabase};
use mmv_service::{
    validate_prometheus, Durability, FaultPlan, FaultVfs, FsyncPolicy, ObsOptions, ServiceWorker,
    Stage, StdVfs, ViewService,
};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn x() -> Term {
    Term::var(Var(0))
}

/// Two independent dependency components (b→a and c), so the service
/// runs two writer lanes.
fn two_lane_db() -> ConstrainedDatabase {
    ConstrainedDatabase::from_clauses(vec![
        Clause::fact(
            "b",
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(9),
            )),
        ),
        Clause::new(
            "a",
            vec![x()],
            Constraint::truth(),
            vec![BodyAtom::new("b", vec![x()])],
        ),
        Clause::fact(
            "c",
            vec![x()],
            Constraint::cmp(x(), CmpOp::Ge, Term::int(100)).and(Constraint::cmp(
                x(),
                CmpOp::Le,
                Term::int(109),
            )),
        ),
    ])
}

fn point(pred: &str, v: i64) -> ConstrainedAtom {
    ConstrainedAtom::new(pred, vec![x()], Constraint::eq(x(), Term::int(v)))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mmv-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reads the value of an unlabeled counter sample from a scrape.
fn sample_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|l| {
        let rest = l.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

/// N writers keep applying batches while M scrapers render and
/// validate the registry: every scrape parses, counters are monotone,
/// and no histogram is ever torn (cumulative buckets + `+Inf == _count`
/// are checked by the validator).
#[test]
fn scrapes_stay_valid_and_monotone_under_write_load() {
    const WRITERS: usize = 4;
    const BATCHES: i64 = 40;
    const SCRAPERS: usize = 2;
    let svc = Arc::new(ViewService::builder().build(two_lane_db()).unwrap());
    let mut handles = Vec::new();
    for w in 0..WRITERS as i64 {
        let svc = svc.clone();
        handles.push(std::thread::spawn(move || {
            // Writers alternate between the two lanes with disjoint
            // value ranges so every batch succeeds.
            for i in 0..BATCHES {
                let v = 1000 * (w + 1) + i;
                let pred = if (w + i) % 2 == 0 { "b" } else { "c" };
                svc.apply(UpdateBatch::inserting(vec![point(pred, v)]))
                    .expect("insert applies");
            }
        }));
    }
    let mut scrapers = Vec::new();
    for _ in 0..SCRAPERS {
        let svc = svc.clone();
        scrapers.push(std::thread::spawn(move || {
            let mut last_applied = 0.0f64;
            for _ in 0..25 {
                let text = svc.metrics().render_prometheus();
                validate_prometheus(&text).expect("scrape parses");
                let applied = sample_value(&text, "mmv_batches_applied_total")
                    .expect("applied counter present");
                assert!(
                    applied >= last_applied,
                    "counter went backwards: {applied} < {last_applied}"
                );
                last_applied = applied;
                std::thread::sleep(Duration::from_micros(200));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    for s in scrapers {
        s.join().unwrap();
    }
    let text = svc.metrics().render_prometheus();
    validate_prometheus(&text).expect("final scrape parses");
    let total = (WRITERS as i64 * BATCHES) as f64;
    assert_eq!(
        sample_value(&text, "mmv_batches_applied_total"),
        Some(total)
    );
    // Both lanes saw work, and the stage histograms filled in.
    assert!(text.contains("mmv_lane_batches_total{lane=\"0\"}"));
    assert!(text.contains("mmv_lane_batches_total{lane=\"1\"}"));
    assert_eq!(
        svc.stage_timings(Stage::Apply).count(),
        WRITERS as u64 * BATCHES as u64
    );
    // The JSON exposition renders the same families.
    let json = svc.metrics().render_json();
    assert!(json.contains("\"mmv_batches_applied_total\""));
    assert!(json.contains("\"mmv_batch_stage_seconds\""));
}

/// ISSUE 8 acceptance: one scrape of a durable service under write
/// load exposes all five subsystems — writer lanes, WAL, checkpoints,
/// health + storage faults, and core fixpoint counters.
#[test]
fn one_scrape_exposes_all_five_subsystems() {
    let dir = tmp_dir("acceptance");
    let vfs = FaultVfs::new(Arc::new(StdVfs), FaultPlan::none());
    let svc = ViewService::builder()
        .durability(
            Durability::durable(&dir)
                .fsync(FsyncPolicy::GroupCommit(Duration::ZERO))
                .checkpoint_every(4)
                .vfs(Arc::new(vfs.clone())),
        )
        .build(two_lane_db())
        .unwrap();
    for v in 0..8 {
        svc.apply(UpdateBatch::inserting(vec![point("b", 1000 + v)]))
            .expect("insert applies");
    }
    // Checkpoints land asynchronously; wait for the cadence-staged one.
    let deadline = Instant::now() + Duration::from_secs(10);
    while svc.checkpoint_stats().unwrap().checkpoints == 0 {
        assert!(Instant::now() < deadline, "checkpoint never landed");
        std::thread::sleep(Duration::from_millis(2));
    }
    let text = svc.metrics().render_prometheus();
    validate_prometheus(&text).expect("scrape parses");
    for family in [
        // Lanes + batch lifecycle.
        "mmv_batches_applied_total",
        "mmv_lane_batches_total",
        "mmv_batch_stage_seconds_bucket",
        // WAL.
        "mmv_wal_records_total",
        "mmv_wal_fsyncs_total",
        // Checkpoints.
        "mmv_checkpoints_total",
        "mmv_checkpoint_seconds_count",
        // Health + storage faults.
        "mmv_health_state",
        "mmv_vfs_fault_ops_total",
        // Core maintenance.
        "mmv_fixpoint_iterations_total",
        "mmv_insert_added_total",
        "mmv_store_entry_pages_copied_total",
        // Sub-page CoW key-copy counters.
        "mmv_store_by_const_keys_copied_total",
        "mmv_store_slot_keys_copied_total",
    ] {
        assert!(text.contains(family), "scrape is missing {family}:\n{text}");
    }
    // The legacy stats structs are views over the same counters. The
    // second cadence checkpoint may still be landing (it appends its
    // own WAL marker frame off the write path), so re-scrape until
    // the two views agree instead of racing the checkpointer.
    let deadline = Instant::now() + Duration::from_secs(10);
    let wal = loop {
        let wal = svc.wal_stats().unwrap();
        let text = svc.metrics().render_prometheus();
        if sample_value(&text, "mmv_wal_records_total") == Some(wal.records as f64) {
            break wal;
        }
        assert!(
            Instant::now() < deadline,
            "mmv_wal_records_total never converged with WalStats::records"
        );
        std::thread::sleep(Duration::from_millis(2));
    };
    assert!(wal.records >= 8);
    let traces = svc.recent_traces();
    assert_eq!(traces.len(), 8, "one trace per applied batch");
    let last = traces.last().unwrap();
    assert_eq!(last.epoch, svc.epoch());
    assert_eq!(last.shards_touched, 1);
    assert!(last.stage(Stage::WalRender) > Duration::ZERO);
    assert!(last.stage(Stage::Apply) > Duration::ZERO);
    assert!(last.total() > Duration::ZERO);
    // Group commit defers publication on the flusher, so the batch
    // waited for durability.
    assert!(last.stage(Stage::FsyncWait) > Duration::ZERO);
    drop(svc);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The shared work-stealing pool registers its instruments like every
/// other subsystem, they move once batches route hot-loop tasks
/// through the pool, and width 1 disables the pool (and its families)
/// entirely.
#[test]
fn pool_instruments_register_and_count_tasks() {
    let svc = ViewService::builder()
        .pool_threads(4)
        .build(two_lane_db())
        .unwrap();
    assert_eq!(svc.pool().expect("pool enabled").threads(), 4);
    for v in 0..6 {
        svc.apply(UpdateBatch::inserting(vec![point("b", 1000 + v)]))
            .expect("insert applies");
    }
    let text = svc.metrics().render_prometheus();
    validate_prometheus(&text).expect("scrape parses");
    for family in [
        "mmv_pool_tasks_total",
        "mmv_pool_steals_total",
        "mmv_pool_workers_busy",
    ] {
        assert!(text.contains(family), "scrape is missing {family}:\n{text}");
    }
    let tasks = sample_value(&text, "mmv_pool_tasks_total").expect("tasks counter present");
    assert!(
        tasks > 0.0,
        "insertion propagation should have routed tasks through the pool"
    );

    let seq = ViewService::builder()
        .pool_threads(1)
        .build(two_lane_db())
        .unwrap();
    assert!(seq.pool().is_none(), "width 1 disables the pool");
    assert!(!seq
        .metrics()
        .render_prometheus()
        .contains("mmv_pool_tasks_total"));
}

/// Traces ring: capacity bounds retention, oldest evicted first.
#[test]
fn trace_ring_is_bounded_and_ordered() {
    let svc = ViewService::builder()
        .observability(ObsOptions::default().trace_capacity(4))
        .build(two_lane_db())
        .unwrap();
    for v in 0..10 {
        svc.apply(UpdateBatch::inserting(vec![point("b", 1000 + v)]))
            .unwrap();
    }
    let traces = svc.recent_traces();
    assert_eq!(traces.len(), 4);
    let epochs: Vec<u64> = traces.iter().map(|t| t.epoch).collect();
    assert_eq!(epochs, vec![7, 8, 9, 10], "oldest evicted, order kept");
}

/// Disabled observability: no traces, batch instruments stay at zero,
/// but the registry still scrapes cleanly and batches still apply.
#[test]
fn disabled_observability_records_nothing() {
    let svc = ViewService::builder()
        .observability(ObsOptions::disabled())
        .build(two_lane_db())
        .unwrap();
    for v in 0..5 {
        svc.apply(UpdateBatch::inserting(vec![point("c", 2000 + v)]))
            .unwrap();
    }
    assert_eq!(svc.epoch(), 5);
    assert!(svc.recent_traces().is_empty());
    assert_eq!(svc.stage_timings(Stage::Apply).count(), 0);
    let text = svc.metrics().render_prometheus();
    validate_prometheus(&text).expect("scrape still parses");
    assert_eq!(sample_value(&text, "mmv_batches_applied_total"), Some(0.0));
}

/// The worker queue-depth gauge returns to zero once the worker
/// drains.
#[test]
fn worker_queue_depth_returns_to_zero() {
    let svc = Arc::new(ViewService::builder().build(two_lane_db()).unwrap());
    let (tx, worker) = ServiceWorker::spawn(svc.clone());
    for v in 0..6 {
        tx.submit(UpdateBatch::inserting(vec![point("b", 3000 + v)]))
            .unwrap();
    }
    drop(tx);
    assert_eq!(worker.join().unwrap(), 6);
    let text = svc.metrics().render_prometheus();
    assert_eq!(sample_value(&text, "mmv_worker_queue_depth"), Some(0.0));
}
