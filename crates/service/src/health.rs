//! Service health: retry policy, the
//! [`Healthy → Degraded → ReadOnly`](ServiceHealth) state machine, and
//! the background probe that walks it back.
//!
//! The rules are few and mechanical:
//!
//! * A **transient** storage fault ([`crate::StorageError::is_transient`])
//!   never reaches this module — the WAL flusher and the checkpointer
//!   retry it under a [`RetryPolicy`] (bounded exponential backoff).
//! * A **persistent WAL failure** (append or fsync that survives
//!   retries) rolls the batch back and flips the service
//!   [`ReadOnly`](ServiceHealth::ReadOnly): writes fail fast with
//!   [`crate::ServiceError::ReadOnly`], readers keep serving the last
//!   published composite snapshot untouched.
//! * A **persistent checkpoint failure** only degrades
//!   ([`Degraded`](ServiceHealth::Degraded)): batches still commit and
//!   publish (the WAL is intact), but recovery will replay a longer
//!   tail until a checkpoint lands again.
//! * A `HealthProbe` thread periodically re-probes read-only storage
//!   ([`crate::wal::Wal::probe`] appends and fsyncs a `health` frame);
//!   the first success restores [`Healthy`](ServiceHealth::Healthy) and
//!   journals the transition in the WAL itself.
//!
//! Every transition is recorded (`Health::transitions`) with the
//! epoch it happened at and a human-readable reason — the audit trail
//! the README's operations section points at.

use mmv_obs::{Counter, Gauge};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum transitions retained by the journal; a flapping disk keeps
/// producing transitions forever, so the journal is a ring — the newest
/// `HEALTH_TRANSITION_CAP` survive and
/// `crate::ViewService::health_transitions_total` keeps the full count.
pub const HEALTH_TRANSITION_CAP: usize = 256;

/// Bounded exponential backoff for transient storage faults, carried
/// by [`crate::ServiceConfig::retry`] into the WAL flusher and the
/// checkpointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct RetryPolicy {
    /// Retries after the first failure (0 disables retrying).
    pub max_retries: u32,
    /// Sleep before the first retry; doubles per attempt.
    pub initial_backoff: Duration,
    /// Cap on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            initial_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// The same policy with a different retry count.
    pub fn with_retries(mut self, retries: u32) -> RetryPolicy {
        self.max_retries = retries;
        self
    }

    /// The same policy with different backoff bounds (tests use
    /// `Duration::ZERO` to retry without sleeping).
    pub fn with_backoff(mut self, initial: Duration, max: Duration) -> RetryPolicy {
        self.initial_backoff = initial;
        self.max_backoff = max;
        self
    }

    /// The sleep before retry number `attempt` (1-based):
    /// `initial_backoff << (attempt-1)`, capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        let raw = self
            .initial_backoff
            .saturating_mul(1u32.checked_shl(shift).unwrap_or(u32::MAX));
        raw.min(self.max_backoff)
    }

    /// Runs `op`, retrying while it fails transiently (per `is_transient`)
    /// with backoff. Returns the first success or the last error.
    pub fn run<T, E>(
        &self,
        mut op: impl FnMut() -> Result<T, E>,
        is_transient: impl Fn(&E) -> bool,
    ) -> Result<T, E> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt < self.max_retries && is_transient(&e) => {
                    attempt += 1;
                    let pause = self.backoff(attempt);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// The service's storage health, coarsest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServiceHealth {
    /// All storage paths working.
    Healthy,
    /// Checkpointing is failing (recovery replays a longer WAL tail),
    /// but batches still commit and publish.
    Degraded,
    /// The WAL cannot accept appends: writes fail fast with
    /// [`crate::ServiceError::ReadOnly`]; reads keep serving the last
    /// published snapshot.
    ReadOnly,
}

impl fmt::Display for ServiceHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ServiceHealth::Healthy => "healthy",
            ServiceHealth::Degraded => "degraded",
            ServiceHealth::ReadOnly => "read-only",
        })
    }
}

/// One recorded health transition.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct HealthTransition {
    /// The state before.
    pub from: ServiceHealth,
    /// The state after.
    pub to: ServiceHealth,
    /// The last published global epoch when it happened.
    pub epoch: u64,
    /// Why (the triggering error, or the probe's success note).
    pub reason: String,
}

#[derive(Default)]
struct HealthInner {
    wal_down: bool,
    checkpoint_down: bool,
    /// Ring of the newest [`HEALTH_TRANSITION_CAP`] transitions.
    transitions: VecDeque<HealthTransition>,
}

impl HealthInner {
    fn state(&self) -> ServiceHealth {
        if self.wal_down {
            ServiceHealth::ReadOnly
        } else if self.checkpoint_down {
            ServiceHealth::Degraded
        } else {
            ServiceHealth::Healthy
        }
    }
}

/// Shared health cell: the WAL path and the checkpoint path each set
/// and clear their own flag; the coarsest failing path wins
/// ([`HealthInner::state`] derivation, ReadOnly > Degraded > Healthy).
#[derive(Default)]
pub(crate) struct Health {
    inner: Mutex<HealthInner>,
    epoch: AtomicU64,
    /// Detached instruments: every transition ever recorded (the ring
    /// above only keeps the newest), and the current state as a gauge
    /// (0 healthy, 1 degraded, 2 read-only).
    transitions_total: Counter,
    state_gauge: Gauge,
}

impl Health {
    fn lock(&self) -> MutexGuard<'_, HealthInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => {
                self.inner.clear_poison();
                p.into_inner()
            }
        }
    }

    fn shift(&self, guard: &mut HealthInner, set: impl FnOnce(&mut HealthInner), reason: &str) {
        let from = guard.state();
        set(guard);
        let to = guard.state();
        if from != to {
            if guard.transitions.len() == HEALTH_TRANSITION_CAP {
                guard.transitions.pop_front();
            }
            guard.transitions.push_back(HealthTransition {
                from,
                to,
                epoch: self.epoch.load(Ordering::Relaxed), // order: advisory epoch stamp on a transition; the state mutex orders the machine
                reason: reason.to_string(),
            });
            self.transitions_total.inc();
            self.state_gauge.set(match to {
                ServiceHealth::Healthy => 0,
                ServiceHealth::Degraded => 1,
                ServiceHealth::ReadOnly => 2,
            });
        }
    }

    /// The current state.
    pub(crate) fn current(&self) -> ServiceHealth {
        self.lock().state()
    }

    /// A copy of the transition journal (the newest
    /// [`HEALTH_TRANSITION_CAP`] transitions, oldest first).
    pub(crate) fn transitions(&self) -> Vec<HealthTransition> {
        self.lock().transitions.iter().cloned().collect()
    }

    /// Every transition ever recorded, including ones the ring evicted.
    pub(crate) fn transitions_total(&self) -> u64 {
        self.transitions_total.get()
    }

    /// Registers the health instruments into `registry`.
    pub(crate) fn register_into(&self, registry: &mmv_obs::MetricsRegistry) {
        registry.register_counter(
            "mmv_health_transitions_total",
            "Health transitions recorded (including ring-evicted ones)",
            &[],
            &self.transitions_total,
        );
        registry.register_gauge(
            "mmv_health_state",
            "Current service health (0 healthy, 1 degraded, 2 read-only)",
            &[],
            &self.state_gauge,
        );
    }

    /// Records the last published epoch (stamped onto transitions).
    pub(crate) fn note_epoch(&self, epoch: u64) {
        self.epoch.fetch_max(epoch, Ordering::Relaxed); // order: monotonic stamp via fetch_max; readers tolerate slight staleness
    }

    /// A writer-lane recovery that did not change the coarse state —
    /// e.g. a pool worker panic whose batch was rolled back with the
    /// service still healthy. Journaled (with `from == to`) and counted
    /// in `mmv_health_transitions_total` so operators see the event in
    /// the same audit trail as storage flips.
    pub(crate) fn lane_event(&self, reason: &str) {
        let mut guard = self.lock();
        let state = guard.state();
        if guard.transitions.len() == HEALTH_TRANSITION_CAP {
            guard.transitions.pop_front();
        }
        guard.transitions.push_back(HealthTransition {
            from: state,
            to: state,
            epoch: self.epoch.load(Ordering::Relaxed), // order: advisory epoch stamp on a transition; the state mutex orders the machine
            reason: reason.to_string(),
        });
        self.transitions_total.inc();
    }

    /// A persistent WAL failure: → ReadOnly.
    pub(crate) fn wal_failed(&self, reason: &str) {
        let mut g = self.lock();
        self.shift(&mut g, |i| i.wal_down = true, reason);
    }

    /// The probe re-proved the WAL: leave ReadOnly.
    pub(crate) fn wal_restored(&self, reason: &str) {
        let mut g = self.lock();
        self.shift(&mut g, |i| i.wal_down = false, reason);
    }

    /// A persistent checkpoint failure: → Degraded (unless ReadOnly).
    pub(crate) fn checkpoint_failed(&self, reason: &str) {
        let mut g = self.lock();
        self.shift(&mut g, |i| i.checkpoint_down = true, reason);
    }

    /// A checkpoint landed: clear the degraded flag.
    pub(crate) fn checkpoint_ok(&self) {
        let mut g = self.lock();
        self.shift(&mut g, |i| i.checkpoint_down = false, "checkpoint written");
    }
}

type StopCell = Arc<(Mutex<bool>, Condvar)>;

/// The background storage probe: wakes every `interval`, and while the
/// service is read-only asks the WAL to prove it can append + fsync
/// again ([`crate::wal::Wal::probe`]). First success restores
/// `Healthy`. Dropping it stops and joins the thread.
pub(crate) struct HealthProbe {
    stop: StopCell,
    handle: Option<JoinHandle<()>>,
}

impl HealthProbe {
    pub(crate) fn spawn(
        health: Arc<Health>,
        wal: Arc<crate::wal::Wal>,
        interval: Duration,
    ) -> HealthProbe {
        let stop: StopCell = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("mmv-health-probe".into())
            .spawn(move || probe_loop(health, wal, interval, stop2))
            .expect("spawn health probe thread");
        HealthProbe {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for HealthProbe {
    fn drop(&mut self) {
        {
            let (lock, cv) = &*self.stop;
            let mut stopped = match lock.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            *stopped = true;
            cv.notify_all();
        }
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn probe_loop(health: Arc<Health>, wal: Arc<crate::wal::Wal>, interval: Duration, stop: StopCell) {
    let (lock, cv) = &*stop;
    loop {
        {
            let guard = match lock.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            // Check before *and* after waiting: a stop signalled
            // before this thread first takes the lock would otherwise
            // be a lost wakeup and the join would stall a full tick.
            if *guard {
                return;
            }
            let (guard, _) = match cv.wait_timeout(guard, interval) {
                Ok(r) => r,
                Err(p) => p.into_inner(),
            };
            if *guard {
                return;
            }
        }
        if health.current() == ServiceHealth::ReadOnly {
            let epoch = health.epoch.load(Ordering::Relaxed); // order: probe reads the stamp opportunistically; retried next tick anyway
                                                              // On Err the storage is still down; try again next tick.
            if wal.probe(epoch).is_ok() {
                health.wal_restored("storage probe succeeded");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(6),
        };
        assert_eq!(p.backoff(1), Duration::from_millis(1));
        assert_eq!(p.backoff(2), Duration::from_millis(2));
        assert_eq!(p.backoff(3), Duration::from_millis(4));
        assert_eq!(p.backoff(4), Duration::from_millis(6), "capped");
        assert_eq!(p.backoff(40), Duration::from_millis(6), "shift clamped");
    }

    #[test]
    fn run_retries_transient_only() {
        let p = RetryPolicy {
            max_retries: 3,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let mut calls = 0;
        let r: Result<u32, &str> = p.run(
            || {
                calls += 1;
                if calls < 3 {
                    Err("transient")
                } else {
                    Ok(7)
                }
            },
            |e| *e == "transient",
        );
        assert_eq!(r, Ok(7));
        assert_eq!(calls, 3);

        let mut calls = 0;
        let r: Result<u32, &str> = p.run(
            || {
                calls += 1;
                Err("fatal")
            },
            |e| *e == "transient",
        );
        assert_eq!(r, Err("fatal"));
        assert_eq!(calls, 1, "persistent errors are not retried");

        let mut calls = 0;
        let r: Result<u32, &str> = p.run(
            || {
                calls += 1;
                Err("transient")
            },
            |e| *e == "transient",
        );
        assert_eq!(r, Err("transient"));
        assert_eq!(calls, 4, "1 try + max_retries");
    }

    #[test]
    fn health_transitions_are_journaled() {
        let h = Health::default();
        assert_eq!(h.current(), ServiceHealth::Healthy);
        h.note_epoch(5);
        h.checkpoint_failed("ckpt EIO");
        assert_eq!(h.current(), ServiceHealth::Degraded);
        h.wal_failed("append ENOSPC");
        assert_eq!(h.current(), ServiceHealth::ReadOnly);
        // Checkpoint healing while the WAL is down stays ReadOnly.
        h.checkpoint_ok();
        assert_eq!(h.current(), ServiceHealth::ReadOnly);
        h.note_epoch(9);
        h.wal_restored("probe ok");
        assert_eq!(h.current(), ServiceHealth::Healthy);

        let t = h.transitions();
        let arcs: Vec<(ServiceHealth, ServiceHealth, u64)> =
            t.iter().map(|t| (t.from, t.to, t.epoch)).collect();
        assert_eq!(
            arcs,
            vec![
                (ServiceHealth::Healthy, ServiceHealth::Degraded, 5),
                (ServiceHealth::Degraded, ServiceHealth::ReadOnly, 5),
                (ServiceHealth::ReadOnly, ServiceHealth::Healthy, 9),
            ],
            "no-op flag changes journal nothing"
        );
        assert!(t[1].reason.contains("ENOSPC"));
        assert_eq!(h.transitions_total(), 3);
    }

    #[test]
    fn transition_journal_is_a_ring() {
        let h = Health::default();
        // A flapping WAL: each flap is two transitions.
        let flaps = HEALTH_TRANSITION_CAP; // 2 * CAP transitions total
        for i in 0..flaps {
            h.note_epoch(i as u64);
            h.wal_failed("flap down");
            h.wal_restored("flap up");
        }
        let t = h.transitions();
        assert_eq!(t.len(), HEALTH_TRANSITION_CAP, "journal stays bounded");
        assert_eq!(
            h.transitions_total(),
            2 * flaps as u64,
            "counter keeps the full tally"
        );
        // The survivors are the newest transitions, oldest first.
        assert_eq!(t.last().unwrap().epoch, (flaps - 1) as u64);
        assert_eq!(
            t.first().unwrap().epoch,
            (flaps - HEALTH_TRANSITION_CAP / 2) as u64
        );
    }
}
