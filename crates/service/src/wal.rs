//! The durable write-ahead log: segmented append-only files of
//! [`WalPayload`] frames, with group-commit fsync batching — all IO
//! routed through a [`Vfs`] ([`crate::vfs`]) so storage faults are
//! injectable and every failure is attributed and classified
//! ([`StorageError`]).
//!
//! # File format
//!
//! A WAL directory holds segments `wal-<seq>.log`. Each segment starts
//! with a header line
//!
//! ```text
//! #mmv-wal v1 seg=<seq> first_epoch=<e>
//! ```
//!
//! (`first_epoch` is a lower bound on the global epoch of every record
//! in the segment — informational: checkpoint pruning decides coverage
//! by reading a segment's actual frames, see [`prune_segments`]).
//! After the header come frames:
//!
//! ```text
//! @<len> <crc32-hex>
//! <payload — len bytes of textual WalPayload>
//! ```
//!
//! The payload is the textual atom format of
//! [`mmv_core::parser::render_wal_payload`]; the CRC-32 (IEEE) covers
//! the payload bytes. Everything is line-oriented and human-readable —
//! `cat` a segment to audit the update history.
//!
//! # Torn-tail contract
//!
//! A crash can tear the *last* frame of the *last* segment (a partial
//! `write`). [`scan_dir`] therefore distinguishes:
//!
//! * **Bad frame in the final segment** (malformed header, short
//!   payload, CRC mismatch): everything from the bad frame on is
//!   dropped — silently recovered, reported via [`WalScan::torn_tail`],
//!   and (in repair mode) truncated away so the next writer appends
//!   after the last good frame.
//! * **Bad frame in a non-final segment**: that is not a torn write —
//!   later segments exist, so the frame was once complete. The scan
//!   fails with an explicit [`StorageError::Corrupt`].
//! * **CRC-valid but unparseable payload**: always
//!   [`StorageError::Corrupt`], even at the tail — the bytes were
//!   written intact, so the log itself is damaged or from a future
//!   format.
//!
//! # Group commit
//!
//! Writers append under the publication lock (so frame order is epoch
//! order) and then wait on a durability watermark. A single flusher
//! thread batches every frame appended since the last fsync into one
//! `fdatasync` — so `n` concurrent writers pay one disk flush, not `n`
//! ([`FsyncPolicy::GroupCommit`]). [`FsyncPolicy::Always`] flushes
//! inline on every append; [`FsyncPolicy::Never`] never flushes
//! (contents still reach the OS page cache on every append, so a
//! process kill loses nothing — only a machine crash can).
//!
//! # Faults, retry, and the sticky error
//!
//! Transient IO failures ([`StorageError::is_transient`]) are retried
//! in place under the WAL's [`RetryPolicy`] — in the appender, the
//! group-commit flusher, and segment opening — with any partial write
//! truncated away between attempts, so a transient blip never surfaces
//! to a writer. A failure that survives retries is attributed
//! ([`StorageError::Io`]) and handled so that *disk state tracks acked
//! state*:
//!
//! * an inline (`Always`) fsync failure truncates the just-written
//!   frame before the error is returned;
//! * a flusher fsync failure truncates every frame past the durable
//!   watermark, delivers the error to **every** waiter in the batch
//!   (none observes its LSN as durable), and parks the WAL behind a
//!   *sticky error*: subsequent appends fail fast until
//!   [`Wal::probe`] — called by the service's health probe — finishes
//!   any pending repairs, clears the error, and proves the log accepts
//!   a durable append again by journaling a
//!   [`WalPayload::Health`] frame.
//!
//! Replay of the logged batches inherits the ticket-permutation caveat
//! documented in [`crate::log`]: concurrently applied insert-carrying
//! batches may permute external tickets relative to replay. The WAL
//! records each batch's reserved ticket base so sequentially applied
//! batches replay bit-identically.

use crate::health::RetryPolicy;
use crate::vfs::{StdVfs, StorageOp, Vfs, VfsFile};
use mmv_core::parser::{parse_wal_payload, render_wal_payload, WalPayload};
use mmv_obs::Counter;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// When the WAL flushes appended frames to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsyncPolicy {
    /// `fdatasync` inline on every append: maximum durability, every
    /// writer pays a disk flush.
    Always,
    /// Group commit: a flusher thread coalesces every frame appended
    /// within the window (and while the previous flush was in flight)
    /// into one `fdatasync`. `Duration::ZERO` flushes as fast as the
    /// disk allows, with the flush latency itself as the natural
    /// batching window.
    GroupCommit(Duration),
    /// Never fsync. Frames still reach the OS page cache on append, so
    /// this survives a process kill — but not a machine crash.
    Never,
}

/// Cumulative WAL I/O counters (see [`Wal::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Frames appended.
    pub records: u64,
    /// Bytes written (headers + frames).
    pub bytes_written: u64,
    /// Group-commit rounds (or inline flushes under `Always`): each
    /// made one batch of appended frames durable.
    pub fsync_batches: u64,
    /// Individual `fdatasync` calls (≥ `fsync_batches`: a round spans
    /// a rotation's old and new segment files).
    pub fsyncs: u64,
    /// Segment files created.
    pub segments_created: u64,
    /// Transient IO failures absorbed by in-place retry.
    pub retries: u64,
}

/// The detached `mmv-obs` counters behind [`WalStats`].
///
/// The WAL owns these from birth and bumps them lock-free on the hot
/// path; [`Wal::stats`] is a view over them, and the service registers
/// the same handles into its metrics registry, so there is no parallel
/// bookkeeping.
#[derive(Clone, Debug, Default)]
pub(crate) struct WalMetrics {
    pub records: Counter,
    pub bytes_written: Counter,
    pub fsync_batches: Counter,
    pub fsyncs: Counter,
    pub segments_created: Counter,
    pub retries: Counter,
}

impl WalMetrics {
    fn snapshot(&self) -> WalStats {
        WalStats {
            records: self.records.get(),
            bytes_written: self.bytes_written.get(),
            fsync_batches: self.fsync_batches.get(),
            fsyncs: self.fsyncs.get(),
            segments_created: self.segments_created.get(),
            retries: self.retries.get(),
        }
    }

    /// Registers every counter under its `mmv_wal_` name.
    pub(crate) fn register_into(&self, registry: &mmv_obs::MetricsRegistry) {
        registry.register_counter(
            "mmv_wal_records_total",
            "WAL frames appended",
            &[],
            &self.records,
        );
        registry.register_counter(
            "mmv_wal_bytes_written_total",
            "WAL bytes written (headers + frames)",
            &[],
            &self.bytes_written,
        );
        registry.register_counter(
            "mmv_wal_fsync_batches_total",
            "Group-commit rounds (or inline flushes) made durable",
            &[],
            &self.fsync_batches,
        );
        registry.register_counter(
            "mmv_wal_fsyncs_total",
            "Individual fdatasync calls",
            &[],
            &self.fsyncs,
        );
        registry.register_counter(
            "mmv_wal_segments_created_total",
            "WAL segment files created",
            &[],
            &self.segments_created,
        );
        registry.register_counter(
            "mmv_wal_retries_total",
            "Transient IO failures absorbed by in-place retry",
            &[],
            &self.retries,
        );
    }
}

/// A durable-storage failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum StorageError {
    /// An I/O operation failed, attributed with what was being done to
    /// which file.
    Io {
        /// The operation that failed.
        op: StorageOp,
        /// The file (or directory) it failed on.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A log segment or checkpoint is damaged beyond the torn-tail
    /// contract (bad frame in a non-final segment, CRC-valid but
    /// unparseable payload, checkpoint with a valid trailer but
    /// inconsistent content).
    Corrupt {
        /// The damaged file.
        file: PathBuf,
        /// Byte offset of the damage (0 if not meaningful).
        offset: u64,
        /// What was wrong.
        detail: String,
    },
}

/// The transient/persistent classification — the one decision point
/// retry logic consults. `Interrupted`, `WouldBlock`, and `TimedOut`
/// are worth retrying; everything else (EIO, ENOSPC, permissions, …)
/// is treated as persistent.
pub(crate) fn is_transient_io(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

impl StorageError {
    /// Attributes an IO failure with the operation and path.
    pub fn io(op: StorageOp, path: impl Into<PathBuf>, source: io::Error) -> StorageError {
        StorageError::Io {
            op,
            path: path.into(),
            source,
        }
    }

    /// Whether retrying could plausibly succeed (a transient
    /// `io::ErrorKind`: interrupted / would-block / timed out);
    /// corruption never is.
    pub fn is_transient(&self) -> bool {
        match self {
            StorageError::Io { source, .. } => is_transient_io(source),
            StorageError::Corrupt { .. } => false,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, path, source } => write!(
                f,
                "storage {op} failed on {}: {source} [{:?}, {}]",
                path.display(),
                source.kind(),
                if is_transient_io(source) {
                    "transient"
                } else {
                    "persistent"
                }
            ),
            StorageError::Corrupt {
                file,
                offset,
                detail,
            } => write!(f, "corrupt {} at byte {offset}: {detail}", file.display()),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            StorageError::Corrupt { .. } => None,
        }
    }
}

/// CRC-32 (IEEE 802.3), table-driven; the frame checksum.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => {
            m.clear_poison();
            p.into_inner()
        }
    }
}

/// An open segment file plus the path it was opened under (for error
/// attribution and give-up repair bookkeeping).
#[derive(Clone)]
struct FileHandle {
    file: Arc<dyn VfsFile>,
    path: PathBuf,
}

/// One appended-but-not-yet-durable frame (GroupCommit only): enough
/// to truncate it away should its fsync batch fail.
struct FrameSpan {
    lsn: u64,
    path: PathBuf,
    start: u64,
}

/// The sticky flusher failure: its attribution, replayed to every
/// fail-fast append and durability wait until the probe clears it.
struct StickyError {
    op: StorageOp,
    path: PathBuf,
    message: String,
}

/// State the appender and the flusher share.
struct SyncShared {
    /// LSN (frame count) of the last appended frame.
    appended: u64,
    /// LSN up to which frames are known durable.
    durable: u64,
    /// Rotated-out segment files with frames possibly not yet synced.
    pending: Vec<FileHandle>,
    /// The current segment file.
    current: Option<FileHandle>,
    /// Frames past the durable watermark (GroupCommit), oldest first.
    frames: Vec<FrameSpan>,
    /// Give-up truncations that themselves failed; [`Wal::probe`]
    /// finishes them before clearing the sticky error.
    repairs: Vec<(FileHandle, u64)>,
    /// The give-up truncation applied to the *current* segment, so the
    /// probe can resynchronize the appender's length bookkeeping.
    truncated_current: Option<(PathBuf, u64)>,
    /// Sticky flusher failure: once set, appends and waits fail fast.
    error: Option<StickyError>,
    shutdown: bool,
}

struct WalShared {
    sync: Mutex<SyncShared>,
    appended_cv: Condvar,
    durable_cv: Condvar,
    /// Lock-free I/O counters — bumped by appender and flusher alike,
    /// read by [`Wal::stats`] and metric scrapes without the mutex.
    metrics: WalMetrics,
}

/// The appender's exclusive state.
struct Appender {
    file: Option<FileHandle>,
    seg_len: u64,
    next_seq: u64,
    rotate: bool,
    /// A failed append whose cleanup truncation also failed: the
    /// length to truncate the current segment back to before anything
    /// else may be appended.
    torn: Option<u64>,
}

/// A handle onto one WAL directory, opened for appending.
pub struct Wal {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    policy: FsyncPolicy,
    segment_bytes: u64,
    retry: RetryPolicy,
    inner: Mutex<Appender>,
    shared: Arc<WalShared>,
    /// Set when a rotation was requested (checkpoint completed) so the
    /// next append opens a fresh segment.
    rotate_requested: AtomicBool,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Wal {
    /// Opens `dir` for appending through the production [`StdVfs`]
    /// with the default [`RetryPolicy`]. `start_seq` is the sequence
    /// number of the next segment to create (recovery passes one past
    /// the last scanned segment; a fresh service passes 1). Segments
    /// are created lazily on first append, so the `first_epoch` header
    /// is always exact.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        segment_bytes: u64,
        start_seq: u64,
    ) -> Result<Arc<Wal>, StorageError> {
        Wal::open_with(
            Arc::new(StdVfs),
            dir,
            policy,
            segment_bytes,
            start_seq,
            RetryPolicy::default(),
        )
    }

    /// [`Wal::open`] with an explicit [`Vfs`] (fault injection) and
    /// retry policy.
    pub fn open_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        policy: FsyncPolicy,
        segment_bytes: u64,
        start_seq: u64,
        retry: RetryPolicy,
    ) -> Result<Arc<Wal>, StorageError> {
        vfs.create_dir_all(dir)
            .map_err(|e| StorageError::io(StorageOp::Create, dir, e))?;
        let shared = Arc::new(WalShared {
            sync: Mutex::new(SyncShared {
                appended: 0,
                durable: 0,
                pending: Vec::new(),
                current: None,
                frames: Vec::new(),
                repairs: Vec::new(),
                truncated_current: None,
                error: None,
                shutdown: false,
            }),
            appended_cv: Condvar::new(),
            durable_cv: Condvar::new(),
            metrics: WalMetrics::default(),
        });
        let flusher = match policy {
            FsyncPolicy::GroupCommit(window) => {
                let shared = shared.clone();
                Some(
                    std::thread::Builder::new()
                        .name("mmv-wal-flusher".into())
                        .spawn(move || flusher_loop(&shared, window, retry))
                        .expect("spawn WAL flusher"),
                )
            }
            FsyncPolicy::Always | FsyncPolicy::Never => None,
        };
        Ok(Arc::new(Wal {
            vfs,
            dir: dir.to_path_buf(),
            policy,
            segment_bytes: segment_bytes.max(1),
            retry,
            inner: Mutex::new(Appender {
                file: None,
                seg_len: 0,
                next_seq: start_seq.max(1),
                rotate: false,
                torn: None,
            }),
            shared,
            rotate_requested: AtomicBool::new(false),
            flusher: Mutex::new(flusher),
        }))
    }

    /// The WAL's fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// A snapshot of the cumulative I/O counters.
    pub fn stats(&self) -> WalStats {
        self.shared.metrics.snapshot()
    }

    /// The detached counter handles, for registry registration.
    pub(crate) fn metrics(&self) -> WalMetrics {
        self.shared.metrics.clone()
    }

    /// Requests that the next append open a fresh segment — called
    /// after a checkpoint completes, so later records land in a new
    /// segment and the older ones become prunable by the *next*
    /// checkpoint once every record they hold is covered.
    pub fn request_rotation(&self) {
        self.rotate_requested.store(true, Ordering::Release); // order: request flag consumed by the flusher's Acquire swap
    }

    /// Appends one payload frame and returns its LSN. `epoch` is a
    /// lower bound on the record's global epoch (the batch's epoch;
    /// the current global epoch for recovery/checkpoint markers) and
    /// only feeds the segment header when this append opens one.
    ///
    /// The write reaches the OS immediately; durability depends on the
    /// policy — callers that need it call [`Wal::wait_durable`] with
    /// the returned LSN. Transient IO failures are retried in place
    /// (partial writes truncated between attempts); surfaced errors
    /// leave the log exactly as if the append never happened (or, if
    /// cleanup itself failed, park the repair for the next append or
    /// probe).
    pub fn append(&self, epoch: u64, payload: &str) -> Result<u64, StorageError> {
        let mut a = lock_clean(&self.inner);
        // Fail fast behind a sticky flusher error: the WAL is
        // read-only until the probe repairs and clears it.
        {
            let s = lock_clean(&self.shared.sync);
            if let Some(err) = &s.error {
                return Err(StorageError::io(
                    err.op,
                    err.path.clone(),
                    io::Error::other(err.message.clone()),
                ));
            }
        }
        // order: pairs with request_rotation's Release store
        if self.rotate_requested.swap(false, Ordering::Acquire) {
            a.rotate = true;
        }
        // Repair a torn frame a previous failed append left behind.
        if let Some(len) = a.torn {
            let h = a
                .file
                .clone()
                .expect("a torn frame implies an open segment");
            self.run_retry(|| h.file.set_len(len))
                .map_err(|e| StorageError::io(StorageOp::Truncate, h.path.clone(), e))?;
            a.seg_len = len;
            a.torn = None;
        }
        if a.file.is_none() || a.rotate || a.seg_len >= self.segment_bytes {
            self.open_segment(&mut a, epoch)?;
        }
        let frame = format!(
            "@{} {:08x}\n{}\n",
            payload.len(),
            crc32(payload.as_bytes()),
            payload
        );
        let h = a.file.clone().expect("segment is open");
        let start = a.seg_len;
        self.write_frame(&h, start, frame.as_bytes(), &mut a.torn)?;
        a.seg_len = start + frame.len() as u64;
        let flen = frame.len() as u64;
        let mut s = lock_clean(&self.shared.sync);
        match self.policy {
            FsyncPolicy::Never => {
                s.appended += 1;
                s.durable = s.appended;
                self.shared.metrics.records.inc();
                self.shared.metrics.bytes_written.add(flen);
                Ok(s.appended)
            }
            FsyncPolicy::Always => {
                let pending: Vec<FileHandle> = s.pending.clone();
                let mut synced = 0u64;
                let mut failed: Option<StorageError> = None;
                for f in pending.iter().chain(std::iter::once(&h)) {
                    match self.run_retry_counted(|| f.file.sync_data()) {
                        Ok(()) => synced += 1,
                        Err(e) => {
                            failed = Some(StorageError::io(StorageOp::Fsync, f.path.clone(), e));
                            break;
                        }
                    }
                }
                match failed {
                    None => {
                        s.pending.clear();
                        s.appended += 1;
                        s.durable = s.appended;
                        self.shared.metrics.records.inc();
                        self.shared.metrics.bytes_written.add(flen);
                        self.shared.metrics.fsyncs.add(synced);
                        self.shared.metrics.fsync_batches.inc();
                        Ok(s.appended)
                    }
                    Some(e) => {
                        drop(s);
                        // The frame is neither durable nor acked:
                        // remove it so disk tracks acked state.
                        match h.file.set_len(start) {
                            Ok(()) => {
                                let _ = h.file.sync_data();
                                a.seg_len = start;
                            }
                            Err(_) => a.torn = Some(start),
                        }
                        Err(e)
                    }
                }
            }
            FsyncPolicy::GroupCommit(_) => {
                s.appended += 1;
                let lsn = s.appended;
                self.shared.metrics.records.inc();
                self.shared.metrics.bytes_written.add(flen);
                s.frames.push(FrameSpan {
                    lsn,
                    path: h.path.clone(),
                    start,
                });
                self.shared.appended_cv.notify_one();
                Ok(lsn)
            }
        }
    }

    /// Blocks until the frame at `lsn` is durable under the policy
    /// (immediate for `Never`, and for `Always` where the append
    /// already flushed). Fails fast — with the flusher's attributed
    /// error — if the fsync batch covering `lsn` failed.
    pub fn wait_durable(&self, lsn: u64) -> Result<(), StorageError> {
        if matches!(self.policy, FsyncPolicy::Never) {
            return Ok(());
        }
        let mut s = lock_clean(&self.shared.sync);
        while s.durable < lsn && s.error.is_none() {
            s = match self.shared.durable_cv.wait(s) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        if s.durable >= lsn {
            return Ok(());
        }
        let err = s
            .error
            .as_ref()
            .expect("undurable wait exits only on error");
        Err(StorageError::io(
            err.op,
            err.path.clone(),
            io::Error::other(err.message.clone()),
        ))
    }

    /// Proves the log accepts durable appends again: finishes any
    /// give-up repairs the flusher could not make, clears the sticky
    /// error, and journals a [`WalPayload::Health`] frame through the
    /// normal append + durability path. The service's background
    /// health probe calls this while read-only; the first success
    /// restores `Healthy`.
    pub fn probe(&self, epoch: u64) -> Result<(), StorageError> {
        {
            let mut a = lock_clean(&self.inner);
            let mut s = lock_clean(&self.shared.sync);
            while let Some((h, len)) = s.repairs.first().cloned() {
                self.run_retry(|| h.file.set_len(len))
                    .map_err(|e| StorageError::io(StorageOp::Truncate, h.path.clone(), e))?;
                let _ = h.file.sync_data();
                if a.file.as_ref().is_some_and(|f| f.path == h.path) {
                    a.seg_len = len;
                    a.torn = None;
                }
                s.repairs.remove(0);
            }
            if s.error.take().is_some() {
                if let Some((path, len)) = s.truncated_current.take() {
                    if a.file.as_ref().is_some_and(|f| f.path == path) {
                        a.seg_len = len;
                        a.torn = None;
                    }
                }
            }
        }
        let lsn = self.append(epoch, &render_wal_payload(&WalPayload::Health { epoch }))?;
        self.wait_durable(lsn)
    }

    /// Runs `op` under the WAL's retry policy (transient failures
    /// only).
    fn run_retry(&self, op: impl FnMut() -> io::Result<()>) -> io::Result<()> {
        self.retry.run(op, is_transient_io)
    }

    /// [`Wal::run_retry`], counting absorbed retries into the metrics.
    fn run_retry_counted(&self, mut op: impl FnMut() -> io::Result<()>) -> io::Result<()> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(()) => return Ok(()),
                Err(e) if attempt < self.retry.max_retries && is_transient_io(&e) => {
                    attempt += 1;
                    self.shared.metrics.retries.inc();
                    let pause = self.retry.backoff(attempt);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Writes `buf` at `start` (the current end of `h`), retrying
    /// transient failures with any partial write truncated away
    /// between attempts. If the cleanup truncation itself fails the
    /// offset is parked in `torn` for the next append (or probe) to
    /// repair before anything else lands.
    fn write_frame(
        &self,
        h: &FileHandle,
        start: u64,
        buf: &[u8],
        torn: &mut Option<u64>,
    ) -> Result<(), StorageError> {
        let mut attempt = 0u32;
        // Whether a failed write may have left a partial frame that
        // must be truncated before the next attempt (or before giving
        // up — disk must track acked state).
        let mut dirty = false;
        let pause_or_fail = |attempt: &mut u32, e: &io::Error| {
            if *attempt < self.retry.max_retries && is_transient_io(e) {
                *attempt += 1;
                self.shared.metrics.retries.inc();
                let pause = self.retry.backoff(*attempt);
                if !pause.is_zero() {
                    std::thread::sleep(pause);
                }
                true
            } else {
                false
            }
        };
        loop {
            if dirty {
                // `dirty` stays set: any later failed attempt needs
                // the same truncation before its retry.
                match h.file.set_len(start) {
                    Ok(()) => {}
                    Err(te) => {
                        // The repair itself can be hit by the same
                        // transient run — it consumes attempts too.
                        if pause_or_fail(&mut attempt, &te) {
                            continue;
                        }
                        *torn = Some(start);
                        return Err(StorageError::io(StorageOp::Truncate, h.path.clone(), te));
                    }
                }
            }
            match h.file.write_all(buf) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    dirty = true;
                    if pause_or_fail(&mut attempt, &e) {
                        continue;
                    }
                    // Giving up: one last cleanup attempt, parking the
                    // offset for later repair if it fails.
                    if h.file.set_len(start).is_err() {
                        *torn = Some(start);
                    }
                    return Err(StorageError::io(StorageOp::Append, h.path.clone(), e));
                }
            }
        }
    }

    fn open_segment(&self, a: &mut Appender, epoch: u64) -> Result<(), StorageError> {
        let seq = a.next_seq;
        let path = self.dir.join(format!("wal-{seq:06}.log"));
        let file = match self
            .retry
            .run(|| self.vfs.create_new_append(&path), is_transient_io)
        {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                // An earlier open failed (or crashed) after creating
                // the file — possibly with a torn header. `next_seq`
                // only advances on success, so reclaim it empty.
                let f = self
                    .vfs
                    .open_append(&path)
                    .map_err(|e| StorageError::io(StorageOp::Create, path.clone(), e))?;
                self.run_retry(|| f.set_len(0))
                    .map_err(|e| StorageError::io(StorageOp::Truncate, path.clone(), e))?;
                f
            }
            Err(e) => return Err(StorageError::io(StorageOp::Create, path.clone(), e)),
        };
        let handle = FileHandle {
            file,
            path: path.clone(),
        };
        let header = format!("#mmv-wal v1 seg={seq} first_epoch={epoch}\n");
        let mut scratch_torn = None;
        // On error, leave the file for the reclaim path above; nothing
        // in the appender state has changed.
        self.write_frame(&handle, 0, header.as_bytes(), &mut scratch_torn)?;
        // Make the file's existence durable before any frame can be —
        // and before the appender adopts the segment, so a failure
        // here retries the whole open.
        if let Err(e) = self.run_retry(|| self.vfs.sync_dir(&self.dir)) {
            let _ = handle.file.set_len(0);
            return Err(StorageError::io(StorageOp::SyncDir, self.dir.clone(), e));
        }
        let old = a.file.replace(handle.clone());
        a.next_seq = seq + 1;
        a.seg_len = header.len() as u64;
        a.rotate = false;
        let mut s = lock_clean(&self.shared.sync);
        if let Some(old) = old {
            // The rotated-out file may still hold unsynced frames; the
            // next flush covers it before the watermark advances.
            s.pending.push(old);
        }
        s.current = Some(handle);
        self.shared.metrics.segments_created.inc();
        self.shared.metrics.bytes_written.add(header.len() as u64);
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        {
            let mut s = lock_clean(&self.shared.sync);
            s.shutdown = true;
        }
        self.shared.appended_cv.notify_all();
        if let Some(h) = lock_clean(&self.flusher).take() {
            let _ = h.join();
        }
    }
}

/// The group-commit loop: wait for appended frames, optionally let the
/// window coalesce more, then one `fdatasync` covers them all.
/// Transient fsync failures are retried in place; a persistent one
/// triggers [`give_up`] — truncate the undurable frames, park behind a
/// sticky error, keep the thread alive for after the probe heals it.
fn flusher_loop(shared: &WalShared, window: Duration, retry: RetryPolicy) {
    let mut s = lock_clean(&shared.sync);
    loop {
        while !s.shutdown && (s.appended == s.durable || s.error.is_some()) {
            s = match shared.appended_cv.wait(s) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        if s.shutdown && (s.appended == s.durable || s.error.is_some()) {
            return;
        }
        if !window.is_zero() {
            drop(s);
            std::thread::sleep(window);
            s = lock_clean(&shared.sync);
        }
        let target = s.appended;
        let mut files: Vec<FileHandle> = s.pending.drain(..).collect();
        if let Some(cur) = s.current.clone() {
            files.push(cur);
        }
        drop(s);
        let mut retried = 0u64;
        let mut failed: Option<(PathBuf, io::Error)> = None;
        for h in &files {
            let mut attempt = 0u32;
            let r = loop {
                match h.file.sync_data() {
                    Ok(()) => break Ok(()),
                    Err(e) if attempt < retry.max_retries && is_transient_io(&e) => {
                        attempt += 1;
                        retried += 1;
                        let pause = retry.backoff(attempt);
                        if !pause.is_zero() {
                            std::thread::sleep(pause);
                        }
                    }
                    Err(e) => break Err(e),
                }
            };
            if let Err(e) = r {
                failed = Some((h.path.clone(), e));
                break;
            }
        }
        s = lock_clean(&shared.sync);
        shared.metrics.retries.add(retried);
        match failed {
            None => {
                s.durable = s.durable.max(target);
                let target = s.durable;
                s.frames.retain(|f| f.lsn > target);
                shared.metrics.fsync_batches.inc();
                shared.metrics.fsyncs.add(files.len() as u64);
            }
            Some((path, e)) => give_up(&mut s, &files, &path, &e),
        }
        shared.durable_cv.notify_all();
    }
}

/// The flusher's persistent-failure path: every frame past the durable
/// watermark is truncated away (so no NACKed frame survives on disk),
/// the watermarks are re-converged, and a sticky error is recorded —
/// every waiter in the failed batch sees it, and appends fail fast
/// until [`Wal::probe`] clears it. Truncations that themselves fail
/// are parked for the probe to finish.
fn give_up(s: &mut SyncShared, files: &[FileHandle], path: &Path, e: &io::Error) {
    use std::collections::BTreeMap;
    let mut wanted: BTreeMap<PathBuf, u64> = BTreeMap::new();
    for f in &s.frames {
        wanted
            .entry(f.path.clone())
            .and_modify(|m| *m = (*m).min(f.start))
            .or_insert(f.start);
    }
    s.frames.clear();
    for (p, len) in wanted {
        let handle = s
            .current
            .iter()
            .chain(s.pending.iter())
            .chain(files.iter())
            .find(|h| h.path == p)
            .cloned();
        let Some(h) = handle else { continue };
        match h.file.set_len(len) {
            Ok(()) => {
                let _ = h.file.sync_data();
                if s.current.as_ref().is_some_and(|c| c.path == p) {
                    s.truncated_current = Some((p, len));
                }
            }
            Err(_) => s.repairs.push((h, len)),
        }
    }
    s.appended = s.durable;
    s.error = Some(StickyError {
        op: StorageOp::Fsync,
        path: path.to_path_buf(),
        message: e.to_string(),
    });
}

// ---------------------------------------------------------------------
// Reading a WAL directory back.

/// The result of scanning a WAL directory (see [`scan_dir`]).
#[derive(Debug)]
pub struct WalScan {
    /// Every decoded payload, in append order.
    pub payloads: Vec<WalPayload>,
    /// Segments visited.
    pub segments: u64,
    /// Whether the final segment ended in a torn frame (dropped, and
    /// truncated away in repair mode).
    pub torn_tail: bool,
    /// One past the highest segment sequence seen (the `start_seq` a
    /// recovering writer should reopen with).
    pub next_seq: u64,
}

fn segment_files(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    // mmv-lint: allow(vfs-confine) recovery-read allowlist: segment discovery precedes the Vfs-fronted writer
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|r| r.strip_suffix(".log"))
            .and_then(|d| d.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Parses one frame at `bytes[offset..]`. `Ok(None)` means clean end
/// of segment; `Err(detail)` a bad frame at `offset`.
fn parse_frame(bytes: &[u8], offset: usize) -> Result<Option<(String, usize)>, String> {
    if offset == bytes.len() {
        return Ok(None);
    }
    let rest = &bytes[offset..];
    if rest[0] != b'@' {
        return Err("expected '@' frame header".into());
    }
    let Some(nl) = rest.iter().take(80).position(|&b| b == b'\n') else {
        return Err("unterminated frame header".into());
    };
    let header = std::str::from_utf8(&rest[1..nl]).map_err(|_| "non-UTF-8 frame header")?;
    let (len, crc) = header
        .split_once(' ')
        .and_then(|(l, c)| Some((l.parse::<usize>().ok()?, u32::from_str_radix(c, 16).ok()?)))
        .ok_or("malformed frame header")?;
    let body_start = nl + 1;
    let body_end = body_start
        .checked_add(len)
        .filter(|&e| e < rest.len())
        .ok_or("frame shorter than its declared length")?;
    if rest[body_end] != b'\n' {
        return Err("missing frame terminator".into());
    }
    let payload = &rest[body_start..body_end];
    if crc32(payload) != crc {
        return Err(format!(
            "CRC mismatch (stored {crc:08x}, computed {:08x})",
            crc32(payload)
        ));
    }
    // From here on the frame was written intact: failures are
    // corruption, not a torn tail — the caller treats them as fatal
    // via the second error slot.
    let payload = std::str::from_utf8(payload).map_err(|_| "non-UTF-8 payload")?;
    Ok(Some((payload.to_string(), offset + body_end + 1)))
}

/// Scans every segment of `dir` in order and decodes the payloads,
/// applying the torn-tail contract (see the module docs). With
/// `repair` set, a torn tail is also truncated off the final segment
/// (and the truncation fsynced) so the next writer starts clean.
/// Always reads through `std::fs` — recovery-time reads are not
/// fault-injection targets.
pub fn scan_dir(dir: &Path, repair: bool) -> Result<WalScan, StorageError> {
    let files = segment_files(dir).map_err(|e| StorageError::io(StorageOp::ReadDir, dir, e))?;
    let mut scan = WalScan {
        payloads: Vec::new(),
        segments: files.len() as u64,
        torn_tail: false,
        next_seq: files.last().map_or(1, |(seq, _)| seq + 1),
    };
    let last = files.len().wrapping_sub(1);
    for (i, (_seq, path)) in files.iter().enumerate() {
        let bytes =
            std::fs::read(path).map_err(|e| StorageError::io(StorageOp::Read, path.clone(), e))?; // mmv-lint: allow(vfs-confine) recovery-read allowlist: recovery-time reads are not fault-injection targets (module docs)
        let is_last = i == last;
        let corrupt = |offset: usize, detail: String| StorageError::Corrupt {
            file: path.clone(),
            offset: offset as u64,
            detail,
        };
        // The header line. A zero-length file is an empty segment
        // (creation crashed before the header reached disk).
        let mut offset = match bytes.iter().position(|&b| b == b'\n') {
            _ if bytes.is_empty() => continue,
            Some(nl) if bytes.starts_with(b"#mmv-wal v1 ") => nl + 1,
            _ if is_last => {
                // Torn header write: nothing recoverable here.
                scan.torn_tail = true;
                if repair {
                    truncate_to(path, 0)?;
                }
                continue;
            }
            _ => return Err(corrupt(0, "bad segment header".into())),
        };
        loop {
            match parse_frame(&bytes, offset) {
                Ok(None) => break,
                Ok(Some((payload, next))) => {
                    let decoded = parse_wal_payload(&payload)
                        .map_err(|e| corrupt(offset, format!("unparseable payload: {e}")))?;
                    scan.payloads.push(decoded);
                    offset = next;
                }
                Err(_) if is_last => {
                    scan.torn_tail = true;
                    if repair {
                        truncate_to(path, offset as u64)?;
                    }
                    break;
                }
                Err(detail) => return Err(corrupt(offset, detail)),
            }
        }
    }
    Ok(scan)
}

fn truncate_to(path: &Path, len: u64) -> Result<(), StorageError> {
    let attr = |e| StorageError::io(StorageOp::Truncate, path, e);
    let f = std::fs::OpenOptions::new() // mmv-lint: allow(vfs-confine) recovery-time torn-tail truncation, before the Vfs-fronted writer reopens
        .write(true)
        .open(path)
        .map_err(attr)?;
    f.set_len(len).map_err(attr)?;
    f.sync_data().map_err(attr)
}

/// Deletes segments made redundant by a checkpoint covering every
/// epoch `<= chk_epoch`, through [`StdVfs`]. See
/// [`prune_segments_with`].
pub fn prune_segments(dir: &Path, chk_epoch: u64) -> Result<u64, StorageError> {
    prune_segments_with(&StdVfs, dir, chk_epoch)
}

/// Deletes segments made redundant by a checkpoint covering every
/// epoch `<= chk_epoch`: a non-newest segment is prunable when *every*
/// frame in it parses cleanly and carries an epoch `<= chk_epoch` —
/// decided by reading the segment, never inferred from another
/// segment's header. (The `first_epoch` header is only a lower bound:
/// a checkpoint/recovery *marker* appended concurrently with batch
/// writers can open a rotated segment with an epoch older than batch
/// frames already sitting in the previous segment, so header-based
/// coverage inference would delete un-checkpointed batches.) The
/// newest segment is never deleted; a segment that fails to read or
/// parse is conservatively kept. Returns how many were removed.
pub fn prune_segments_with(vfs: &dyn Vfs, dir: &Path, chk_epoch: u64) -> Result<u64, StorageError> {
    let files = segment_files(dir).map_err(|e| StorageError::io(StorageOp::ReadDir, dir, e))?;
    let mut deleted = 0;
    for (_, path) in files.iter().rev().skip(1) {
        if segment_covered_by(path, chk_epoch) {
            vfs.remove_file(path)
                .map_err(|e| StorageError::io(StorageOp::Remove, path.clone(), e))?;
            deleted += 1;
        }
    }
    if deleted > 0 {
        vfs.sync_dir(dir)
            .map_err(|e| StorageError::io(StorageOp::SyncDir, dir, e))?;
    }
    Ok(deleted)
}

/// Whether every record in the segment at `path` is at an epoch the
/// checkpoint covers (`<= chk_epoch`). Any read, frame, or payload
/// failure answers `false` — pruning keeps what it cannot prove.
fn segment_covered_by(path: &Path, chk_epoch: u64) -> bool {
    // mmv-lint: allow(vfs-confine) recovery-read allowlist: pruning proof reads, not fault-injection targets
    let Ok(bytes) = std::fs::read(path) else {
        return false;
    };
    if bytes.is_empty() {
        // An empty segment (creation crashed pre-header) holds nothing.
        return true;
    }
    if !bytes.starts_with(b"#mmv-wal v1 ") {
        return false;
    }
    let Some(nl) = bytes.iter().position(|&b| b == b'\n') else {
        return false;
    };
    let mut offset = nl + 1;
    loop {
        match parse_frame(&bytes, offset) {
            Ok(None) => return true,
            Ok(Some((payload, next))) => {
                match parse_wal_payload(&payload) {
                    Ok(p) => {
                        let epoch = match p {
                            WalPayload::Batch { epoch, .. }
                            | WalPayload::Recovery { epoch, .. }
                            | WalPayload::Checkpoint { epoch }
                            | WalPayload::Health { epoch } => epoch,
                            _ => return false,
                        };
                        if epoch > chk_epoch {
                            return false;
                        }
                    }
                    Err(_) => return false,
                }
                offset = next;
            }
            Err(_) => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{Fault, FaultPlan, FaultVfs, OpSel};
    use mmv_core::batch::UpdateBatch;
    use mmv_core::parser::render_wal_payload;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmv-wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch_payload(epoch: u64) -> WalPayload {
        WalPayload::Batch {
            epoch,
            ticket_base: epoch * 3,
            batch: UpdateBatch::new(),
        }
    }

    fn append_all(wal: &Wal, payloads: &[WalPayload]) {
        for p in payloads {
            let epoch = match p {
                WalPayload::Batch { epoch, .. }
                | WalPayload::Recovery { epoch, .. }
                | WalPayload::Checkpoint { epoch } => *epoch,
                _ => 0,
            };
            let lsn = wal.append(epoch, &render_wal_payload(p)).unwrap();
            wal.wait_durable(lsn).unwrap();
        }
    }

    fn fast_retry() -> RetryPolicy {
        RetryPolicy {
            max_retries: 4,
            initial_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    #[test]
    fn appended_frames_scan_back_in_order() {
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::GroupCommit(Duration::ZERO),
            FsyncPolicy::Never,
        ] {
            let dir = tmpdir(&format!("roundtrip-{policy:?}").replace(['(', ')', ' ', '.'], ""));
            let payloads: Vec<WalPayload> = (1..=5).map(batch_payload).collect();
            {
                let wal = Wal::open(&dir, policy, 1 << 20, 1).unwrap();
                append_all(&wal, &payloads);
                let stats = wal.stats();
                assert_eq!(stats.records, 5);
                assert_eq!(stats.segments_created, 1);
                if policy != FsyncPolicy::Never {
                    assert!(stats.fsync_batches >= 1, "{stats:?}");
                }
            }
            let scan = scan_dir(&dir, false).unwrap();
            assert_eq!(scan.payloads, payloads);
            assert!(!scan.torn_tail);
            assert_eq!(scan.next_seq, 2);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn segments_rotate_by_size_and_on_request() {
        let dir = tmpdir("rotate");
        let payloads: Vec<WalPayload> = (1..=4).map(batch_payload).collect();
        {
            // Tiny cap: every frame exceeds it, so each lands in its
            // own segment.
            let wal = Wal::open(&dir, FsyncPolicy::Never, 8, 1).unwrap();
            append_all(&wal, &payloads[..3]);
            wal.request_rotation();
            append_all(&wal, &payloads[3..]);
            assert_eq!(wal.stats().segments_created, 4);
        }
        let scan = scan_dir(&dir, false).unwrap();
        assert_eq!(scan.payloads, payloads);
        assert_eq!(scan.segments, 4);
        // A checkpoint covering epoch 3 can prune the first three
        // segments (every record in them is at an epoch <= 3); the
        // newest segment survives regardless.
        let deleted = prune_segments(&dir, 3).unwrap();
        assert_eq!(deleted, 3);
        let scan = scan_dir(&dir, false).unwrap();
        assert_eq!(scan.payloads, payloads[3..]);
        assert_eq!(scan.next_seq, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruning_keeps_batches_past_the_checkpoint() {
        // The checkpoint-marker race: a marker carrying the checkpoint
        // epoch opens a rotated segment *after* batch frames for later
        // epochs already landed in the previous one. Pruning must keep
        // that previous segment — its epoch-3 batch is not covered by
        // the epoch-2 checkpoint, whatever any header claims.
        let dir = tmpdir("prune-race");
        let wal = Wal::open(&dir, FsyncPolicy::Never, 1 << 20, 1).unwrap();
        append_all(
            &wal,
            &[batch_payload(1), batch_payload(2), batch_payload(3)],
        );
        wal.request_rotation();
        // Stale lower-bound marker (epoch 2) opens segment 2.
        wal.append(2, &render_wal_payload(&WalPayload::Checkpoint { epoch: 2 }))
            .unwrap();
        assert_eq!(prune_segments(&dir, 2).unwrap(), 0);
        let scan = scan_dir(&dir, false).unwrap();
        assert_eq!(scan.payloads.len(), 4, "nothing was deleted");
        // Once a checkpoint actually covers epoch 3, segment 1 goes.
        assert_eq!(prune_segments(&dir, 3).unwrap(), 1);
        let scan = scan_dir(&dir, false).unwrap();
        assert_eq!(scan.payloads.len(), 1, "only the marker remains");
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_but_middle_corruption_is_fatal() {
        let dir = tmpdir("torn");
        let payloads: Vec<WalPayload> = (1..=3).map(batch_payload).collect();
        {
            let wal = Wal::open(&dir, FsyncPolicy::Never, 1 << 20, 1).unwrap();
            append_all(&wal, &payloads);
        }
        let path = dir.join("wal-000001.log");
        let clean = std::fs::read(&path).unwrap();
        // Torn tail: append half a frame.
        let mut torn = clean.clone();
        torn.extend_from_slice(b"@57 deadbeef\nbatch epo");
        std::fs::write(&path, &torn).unwrap();
        let scan = scan_dir(&dir, true).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.payloads, payloads);
        // Repair truncated the tail: a second scan is clean.
        let scan = scan_dir(&dir, false).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(std::fs::read(&path).unwrap(), clean);

        // Flip a payload byte mid-file: CRC failure in the (single,
        // hence final) segment → torn tail there too; but with a
        // *later* segment present it is corruption.
        let mut flipped = clean.clone();
        let pos = clean.len() / 2;
        flipped[pos] ^= 0x20;
        std::fs::write(&path, &flipped).unwrap();
        std::fs::write(
            dir.join("wal-000002.log"),
            "#mmv-wal v1 seg=2 first_epoch=4\n",
        )
        .unwrap();
        let err = scan_dir(&dir, false).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_valid_garbage_is_corrupt_even_at_the_tail() {
        let dir = tmpdir("garbage");
        {
            let wal = Wal::open(&dir, FsyncPolicy::Never, 1 << 20, 1).unwrap();
            append_all(&wal, &[batch_payload(1)]);
        }
        let path = dir.join("wal-000001.log");
        let payload = "mystery kind=7\n";
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(
            format!(
                "@{} {:08x}\n{payload}\n",
                payload.len(),
                crc32(payload.as_bytes())
            )
            .as_bytes(),
        );
        std::fs::write(&path, &bytes).unwrap();
        let err = scan_dir(&dir, true).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_batches_fsyncs_across_writers() {
        let dir = tmpdir("group");
        let wal = Wal::open(&dir, FsyncPolicy::GroupCommit(Duration::ZERO), 1 << 20, 1).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let wal = wal.clone();
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let epoch = t * 50 + i + 1;
                        let lsn = wal
                            .append(epoch, &render_wal_payload(&batch_payload(epoch)))
                            .unwrap();
                        wal.wait_durable(lsn).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.records, 200);
        assert!(
            stats.fsync_batches < 200,
            "group commit must coalesce: {stats:?}"
        );
        drop(wal);
        assert_eq!(scan_dir(&dir, false).unwrap().payloads.len(), 200);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_faults_are_absorbed_by_retry() {
        // A transient blip on an append and on an fsync: both retried
        // invisibly, nothing surfaces, the log scans back clean.
        let dir = tmpdir("transient");
        let plan = FaultPlan::none()
            .script(
                OpSel::NthOfKind(StorageOp::Append, 2),
                Fault::Transient { run: 2 },
            )
            .script(
                OpSel::NthOfKind(StorageOp::Fsync, 1),
                Fault::Transient { run: 1 },
            );
        let fault = FaultVfs::new(Arc::new(StdVfs), plan);
        let payloads: Vec<WalPayload> = (1..=3).map(batch_payload).collect();
        {
            let wal = Wal::open_with(
                Arc::new(fault.clone()),
                &dir,
                FsyncPolicy::Always,
                1 << 20,
                1,
                fast_retry(),
            )
            .unwrap();
            append_all(&wal, &payloads);
            let stats = wal.stats();
            assert!(stats.retries >= 3, "{stats:?}");
        }
        assert!(!fault.stats().injected.is_empty());
        let scan = scan_dir(&dir, false).unwrap();
        assert_eq!(scan.payloads, payloads);
        assert!(!scan.torn_tail, "partial writes were truncated away");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_write_is_repaired_and_retried() {
        let dir = tmpdir("short");
        let plan =
            FaultPlan::none().script(OpSel::NthOfKind(StorageOp::Append, 1), Fault::ShortWrite);
        let fault = FaultVfs::new(Arc::new(StdVfs), plan);
        let payloads: Vec<WalPayload> = (1..=2).map(batch_payload).collect();
        {
            let wal = Wal::open_with(
                Arc::new(fault),
                &dir,
                FsyncPolicy::Always,
                1 << 20,
                1,
                fast_retry(),
            )
            .unwrap();
            append_all(&wal, &payloads);
        }
        let scan = scan_dir(&dir, false).unwrap();
        assert_eq!(scan.payloads, payloads, "the torn half-frame never lands");
        assert!(!scan.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn inline_fsync_failure_truncates_the_unacked_frame_and_probe_recovers() {
        let dir = tmpdir("fsync-fail");
        // The first data fsync (Fsync op 0) brings the sync path down
        // persistently until heal().
        let plan =
            FaultPlan::none().script(OpSel::NthOfKind(StorageOp::Fsync, 0), Fault::FsyncFail);
        let fault = FaultVfs::new(Arc::new(StdVfs), plan);
        let wal = Wal::open_with(
            Arc::new(fault.clone()),
            &dir,
            FsyncPolicy::Always,
            1 << 20,
            1,
            fast_retry(),
        )
        .unwrap();
        let err = wal
            .append(1, &render_wal_payload(&batch_payload(1)))
            .unwrap_err();
        assert!(
            matches!(
                &err,
                StorageError::Io {
                    op: StorageOp::Fsync,
                    ..
                }
            ),
            "{err}"
        );
        assert!(!err.is_transient());
        assert!(err.to_string().contains("fsync"), "{err}");
        // The NACKed frame was truncated away: header-only segment.
        let scan = scan_dir(&dir, false).unwrap();
        assert!(scan.payloads.is_empty());
        assert!(!scan.torn_tail);
        // Storage heals; the probe journals a Health frame and appends
        // flow again.
        fault.heal();
        wal.probe(7).unwrap();
        append_all(&wal, &[batch_payload(2)]);
        drop(wal);
        let scan = scan_dir(&dir, false).unwrap();
        assert_eq!(
            scan.payloads,
            vec![WalPayload::Health { epoch: 7 }, batch_payload(2)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flusher_give_up_fails_every_waiter_and_leaves_no_nacked_frames() {
        let dir = tmpdir("give-up");
        let plan =
            FaultPlan::none().script(OpSel::NthOfKind(StorageOp::Fsync, 0), Fault::FsyncFail);
        let fault = FaultVfs::new(Arc::new(StdVfs), plan);
        let wal = Wal::open_with(
            Arc::new(fault.clone()),
            &dir,
            FsyncPolicy::GroupCommit(Duration::from_millis(20)),
            1 << 20,
            1,
            fast_retry(),
        )
        .unwrap();
        // Two frames appended into the same (failing) fsync window.
        let lsn1 = wal
            .append(1, &render_wal_payload(&batch_payload(1)))
            .unwrap();
        let lsn2 = wal
            .append(2, &render_wal_payload(&batch_payload(2)))
            .unwrap();
        assert!(wal.wait_durable(lsn1).is_err(), "waiter 1 sees the failure");
        assert!(wal.wait_durable(lsn2).is_err(), "waiter 2 sees the failure");
        // Sticky: further appends fail fast without touching the disk.
        let err = wal
            .append(3, &render_wal_payload(&batch_payload(3)))
            .unwrap_err();
        assert!(err.to_string().contains("fsync"), "{err}");
        // Neither NACKed frame survived on disk.
        let scan = scan_dir(&dir, false).unwrap();
        assert!(scan.payloads.is_empty(), "{:?}", scan.payloads);
        // Heal, probe, and the WAL serves appends again.
        fault.heal();
        wal.probe(2).unwrap();
        let lsn = wal
            .append(3, &render_wal_payload(&batch_payload(3)))
            .unwrap();
        wal.wait_durable(lsn).unwrap();
        drop(wal);
        let scan = scan_dir(&dir, false).unwrap();
        assert_eq!(
            scan.payloads,
            vec![WalPayload::Health { epoch: 2 }, batch_payload(3)]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn enospc_on_append_fails_cleanly_under_never_policy() {
        let dir = tmpdir("never-enospc");
        // Append op 1 is the first frame (op 0 is the segment header).
        let plan = FaultPlan::none().script(OpSel::NthOfKind(StorageOp::Append, 1), Fault::Enospc);
        let fault = FaultVfs::new(Arc::new(StdVfs), plan);
        let wal = Wal::open_with(
            Arc::new(fault.clone()),
            &dir,
            FsyncPolicy::Never,
            1 << 20,
            1,
            fast_retry(),
        )
        .unwrap();
        let err = wal
            .append(1, &render_wal_payload(&batch_payload(1)))
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            matches!(
                &err,
                StorageError::Io {
                    op: StorageOp::Append,
                    ..
                }
            ) && msg.contains("wal-000001.log")
                && msg.contains("persistent"),
            "{msg}"
        );
        fault.heal();
        append_all(&wal, &[batch_payload(2)]);
        drop(wal);
        let scan = scan_dir(&dir, false).unwrap();
        assert_eq!(scan.payloads, vec![batch_payload(2)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
