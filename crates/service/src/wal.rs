//! The durable write-ahead log: segmented append-only files of
//! [`WalPayload`] frames, with group-commit fsync batching.
//!
//! # File format
//!
//! A WAL directory holds segments `wal-<seq>.log`. Each segment starts
//! with a header line
//!
//! ```text
//! #mmv-wal v1 seg=<seq> first_epoch=<e>
//! ```
//!
//! (`first_epoch` is a lower bound on the global epoch of every record
//! in the segment — informational: checkpoint pruning decides coverage
//! by reading a segment's actual frames, see [`prune_segments`]).
//! After the header come frames:
//!
//! ```text
//! @<len> <crc32-hex>
//! <payload — len bytes of textual WalPayload>
//! ```
//!
//! The payload is the textual atom format of
//! [`mmv_core::parser::render_wal_payload`]; the CRC-32 (IEEE) covers
//! the payload bytes. Everything is line-oriented and human-readable —
//! `cat` a segment to audit the update history.
//!
//! # Torn-tail contract
//!
//! A crash can tear the *last* frame of the *last* segment (a partial
//! `write`). [`scan_dir`] therefore distinguishes:
//!
//! * **Bad frame in the final segment** (malformed header, short
//!   payload, CRC mismatch): everything from the bad frame on is
//!   dropped — silently recovered, reported via [`WalScan::torn_tail`],
//!   and (in repair mode) truncated away so the next writer appends
//!   after the last good frame.
//! * **Bad frame in a non-final segment**: that is not a torn write —
//!   later segments exist, so the frame was once complete. The scan
//!   fails with an explicit [`StorageError::Corrupt`].
//! * **CRC-valid but unparseable payload**: always
//!   [`StorageError::Corrupt`], even at the tail — the bytes were
//!   written intact, so the log itself is damaged or from a future
//!   format.
//!
//! # Group commit
//!
//! Writers append under the publication lock (so frame order is epoch
//! order) and then, *after* releasing their lanes, wait on a
//! durability watermark. A single flusher thread batches every frame
//! appended since the last fsync into one `fdatasync` — so `n`
//! concurrent writers pay one disk flush, not `n`
//! ([`FsyncPolicy::GroupCommit`]). [`FsyncPolicy::Always`] flushes
//! inline on every append; [`FsyncPolicy::Never`] never flushes
//! (contents still reach the OS page cache on every append, so a
//! process kill loses nothing — only a machine crash can).
//!
//! Replay of the logged batches inherits the ticket-permutation caveat
//! documented in [`crate::log`]: concurrently applied insert-carrying
//! batches may permute external tickets relative to replay. The WAL
//! records each batch's reserved ticket base so sequentially applied
//! batches replay bit-identically.

use mmv_core::parser::{parse_wal_payload, WalPayload};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// When the WAL flushes appended frames to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FsyncPolicy {
    /// `fdatasync` inline on every append: maximum durability, every
    /// writer pays a disk flush.
    Always,
    /// Group commit: a flusher thread coalesces every frame appended
    /// within the window (and while the previous flush was in flight)
    /// into one `fdatasync`. `Duration::ZERO` flushes as fast as the
    /// disk allows, with the flush latency itself as the natural
    /// batching window.
    GroupCommit(Duration),
    /// Never fsync. Frames still reach the OS page cache on append, so
    /// this survives a process kill — but not a machine crash.
    Never,
}

/// Cumulative WAL I/O counters (see [`Wal::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Frames appended.
    pub records: u64,
    /// Bytes written (headers + frames).
    pub bytes_written: u64,
    /// Group-commit rounds (or inline flushes under `Always`): each
    /// made one batch of appended frames durable.
    pub fsync_batches: u64,
    /// Individual `fdatasync` calls (≥ `fsync_batches`: a round spans
    /// a rotation's old and new segment files).
    pub fsyncs: u64,
    /// Segment files created.
    pub segments_created: u64,
}

/// A durable-storage failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum StorageError {
    /// An I/O operation failed.
    Io(io::Error),
    /// A log segment or checkpoint is damaged beyond the torn-tail
    /// contract (bad frame in a non-final segment, CRC-valid but
    /// unparseable payload, checkpoint with a valid trailer but
    /// inconsistent content).
    Corrupt {
        /// The damaged file.
        file: PathBuf,
        /// Byte offset of the damage (0 if not meaningful).
        offset: u64,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage i/o: {e}"),
            StorageError::Corrupt {
                file,
                offset,
                detail,
            } => write!(f, "corrupt {} at byte {offset}: {detail}", file.display()),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Corrupt { .. } => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// CRC-32 (IEEE 802.3), table-driven; the frame checksum.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => {
            m.clear_poison();
            p.into_inner()
        }
    }
}

/// State the appender and the flusher share.
struct SyncShared {
    /// LSN (frame count) of the last appended frame.
    appended: u64,
    /// LSN up to which frames are known durable.
    durable: u64,
    /// Rotated-out segment files with frames possibly not yet synced.
    pending: Vec<Arc<File>>,
    /// The current segment file.
    current: Option<Arc<File>>,
    /// Sticky flusher failure: once set, waits fail fast.
    error: Option<String>,
    shutdown: bool,
    stats: WalStats,
}

struct WalShared {
    sync: Mutex<SyncShared>,
    appended_cv: Condvar,
    durable_cv: Condvar,
}

/// The appender's exclusive state.
struct Appender {
    file: Option<Arc<File>>,
    seg_len: u64,
    next_seq: u64,
    rotate: bool,
}

/// A handle onto one WAL directory, opened for appending.
pub struct Wal {
    dir: PathBuf,
    policy: FsyncPolicy,
    segment_bytes: u64,
    inner: Mutex<Appender>,
    shared: Arc<WalShared>,
    /// Set when a rotation was requested (checkpoint completed) so the
    /// next append opens a fresh segment.
    rotate_requested: AtomicBool,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("dir", &self.dir)
            .field("policy", &self.policy)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Wal {
    /// Opens `dir` for appending, creating it if missing. `start_seq`
    /// is the sequence number of the next segment to create (recovery
    /// passes one past the last scanned segment; a fresh service
    /// passes 1). Segments are created lazily on first append, so the
    /// `first_epoch` header is always exact.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        segment_bytes: u64,
        start_seq: u64,
    ) -> io::Result<Arc<Wal>> {
        std::fs::create_dir_all(dir)?;
        let shared = Arc::new(WalShared {
            sync: Mutex::new(SyncShared {
                appended: 0,
                durable: 0,
                pending: Vec::new(),
                current: None,
                error: None,
                shutdown: false,
                stats: WalStats::default(),
            }),
            appended_cv: Condvar::new(),
            durable_cv: Condvar::new(),
        });
        let flusher = match policy {
            FsyncPolicy::GroupCommit(window) => {
                let shared = shared.clone();
                Some(
                    std::thread::Builder::new()
                        .name("mmv-wal-flusher".into())
                        .spawn(move || flusher_loop(&shared, window))
                        .expect("spawn WAL flusher"),
                )
            }
            FsyncPolicy::Always | FsyncPolicy::Never => None,
        };
        Ok(Arc::new(Wal {
            dir: dir.to_path_buf(),
            policy,
            segment_bytes: segment_bytes.max(1),
            inner: Mutex::new(Appender {
                file: None,
                seg_len: 0,
                next_seq: start_seq.max(1),
                rotate: false,
            }),
            shared,
            rotate_requested: AtomicBool::new(false),
            flusher: Mutex::new(flusher),
        }))
    }

    /// The WAL's fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// A snapshot of the cumulative I/O counters.
    pub fn stats(&self) -> WalStats {
        lock_clean(&self.shared.sync).stats
    }

    /// Requests that the next append open a fresh segment — called
    /// after a checkpoint completes, so later records land in a new
    /// segment and the older ones become prunable by the *next*
    /// checkpoint once every record they hold is covered.
    pub fn request_rotation(&self) {
        self.rotate_requested.store(true, Ordering::Release);
    }

    /// Appends one payload frame and returns its LSN. `epoch` is a
    /// lower bound on the record's global epoch (the batch's epoch;
    /// the current global epoch for recovery/checkpoint markers) and
    /// only feeds the segment header when this append opens one.
    ///
    /// The write reaches the OS immediately; durability depends on the
    /// policy — callers that need it call [`Wal::wait_durable`] with
    /// the returned LSN *after* releasing their lane locks.
    pub fn append(&self, epoch: u64, payload: &str) -> io::Result<u64> {
        let mut a = lock_clean(&self.inner);
        if self.rotate_requested.swap(false, Ordering::Acquire) {
            a.rotate = true;
        }
        if a.file.is_none() || a.rotate || a.seg_len >= self.segment_bytes {
            self.open_segment(&mut a, epoch)?;
        }
        let frame = format!(
            "@{} {:08x}\n{}\n",
            payload.len(),
            crc32(payload.as_bytes()),
            payload
        );
        let file = a.file.as_ref().expect("segment is open").clone();
        (&*file).write_all(frame.as_bytes())?;
        a.seg_len += frame.len() as u64;
        let mut s = lock_clean(&self.shared.sync);
        s.appended += 1;
        let lsn = s.appended;
        s.stats.records += 1;
        s.stats.bytes_written += frame.len() as u64;
        match self.policy {
            FsyncPolicy::Never => s.durable = s.appended,
            FsyncPolicy::Always => {
                let pending: Vec<Arc<File>> = s.pending.drain(..).collect();
                for f in &pending {
                    f.sync_data()?;
                    s.stats.fsyncs += 1;
                }
                file.sync_data()?;
                s.stats.fsyncs += 1;
                s.stats.fsync_batches += 1;
                s.durable = s.appended;
            }
            FsyncPolicy::GroupCommit(_) => {
                self.shared.appended_cv.notify_one();
            }
        }
        Ok(lsn)
    }

    /// Blocks until the frame at `lsn` is durable under the policy
    /// (immediate for `Never`, and for `Always` where the append
    /// already flushed). Fails fast if the flusher hit an I/O error.
    pub fn wait_durable(&self, lsn: u64) -> Result<(), StorageError> {
        if matches!(self.policy, FsyncPolicy::Never) {
            return Ok(());
        }
        let mut s = lock_clean(&self.shared.sync);
        while s.durable < lsn && s.error.is_none() {
            s = match self.shared.durable_cv.wait(s) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        match &s.error {
            Some(e) => Err(StorageError::Io(io::Error::other(e.clone()))),
            None => Ok(()),
        }
    }

    fn open_segment(&self, a: &mut Appender, epoch: u64) -> io::Result<()> {
        let seq = a.next_seq;
        let path = self.dir.join(format!("wal-{seq:06}.log"));
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        let header = format!("#mmv-wal v1 seg={seq} first_epoch={epoch}\n");
        (&file).write_all(header.as_bytes())?;
        // Make the file's existence durable before any frame can be.
        File::open(&self.dir)?.sync_all()?;
        let file = Arc::new(file);
        let old = a.file.replace(file.clone());
        a.next_seq = seq + 1;
        a.seg_len = header.len() as u64;
        a.rotate = false;
        let mut s = lock_clean(&self.shared.sync);
        if let Some(old) = old {
            // The rotated-out file may still hold unsynced frames; the
            // next flush covers it before the watermark advances.
            s.pending.push(old);
        }
        s.current = Some(file);
        s.stats.segments_created += 1;
        s.stats.bytes_written += header.len() as u64;
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        {
            let mut s = lock_clean(&self.shared.sync);
            s.shutdown = true;
        }
        self.shared.appended_cv.notify_all();
        if let Some(h) = lock_clean(&self.flusher).take() {
            let _ = h.join();
        }
    }
}

/// The group-commit loop: wait for appended frames, optionally let the
/// window coalesce more, then one `fdatasync` covers them all.
fn flusher_loop(shared: &WalShared, window: Duration) {
    let mut s = lock_clean(&shared.sync);
    loop {
        while s.error.is_none() && !s.shutdown && s.appended == s.durable {
            s = match shared.appended_cv.wait(s) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        if s.error.is_some() || (s.shutdown && s.appended == s.durable) {
            return;
        }
        if !window.is_zero() {
            drop(s);
            std::thread::sleep(window);
            s = lock_clean(&shared.sync);
        }
        let target = s.appended;
        let mut files: Vec<Arc<File>> = s.pending.drain(..).collect();
        if let Some(cur) = s.current.clone() {
            files.push(cur);
        }
        drop(s);
        let mut failed = None;
        for f in &files {
            if let Err(e) = f.sync_data() {
                failed = Some(e.to_string());
                break;
            }
        }
        s = lock_clean(&shared.sync);
        match failed {
            None => {
                s.durable = s.durable.max(target);
                s.stats.fsync_batches += 1;
                s.stats.fsyncs += files.len() as u64;
            }
            Some(e) => s.error = Some(e),
        }
        shared.durable_cv.notify_all();
    }
}

// ---------------------------------------------------------------------
// Reading a WAL directory back.

/// The result of scanning a WAL directory (see [`scan_dir`]).
#[derive(Debug)]
pub struct WalScan {
    /// Every decoded payload, in append order.
    pub payloads: Vec<WalPayload>,
    /// Segments visited.
    pub segments: u64,
    /// Whether the final segment ended in a torn frame (dropped, and
    /// truncated away in repair mode).
    pub torn_tail: bool,
    /// One past the highest segment sequence seen (the `start_seq` a
    /// recovering writer should reopen with).
    pub next_seq: u64,
}

fn segment_files(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|r| r.strip_suffix(".log"))
            .and_then(|d| d.parse::<u64>().ok())
        {
            out.push((seq, entry.path()));
        }
    }
    out.sort();
    Ok(out)
}

/// Parses one frame at `bytes[offset..]`. `Ok(None)` means clean end
/// of segment; `Err(detail)` a bad frame at `offset`.
fn parse_frame(bytes: &[u8], offset: usize) -> Result<Option<(String, usize)>, String> {
    if offset == bytes.len() {
        return Ok(None);
    }
    let rest = &bytes[offset..];
    if rest[0] != b'@' {
        return Err("expected '@' frame header".into());
    }
    let Some(nl) = rest.iter().take(80).position(|&b| b == b'\n') else {
        return Err("unterminated frame header".into());
    };
    let header = std::str::from_utf8(&rest[1..nl]).map_err(|_| "non-UTF-8 frame header")?;
    let (len, crc) = header
        .split_once(' ')
        .and_then(|(l, c)| Some((l.parse::<usize>().ok()?, u32::from_str_radix(c, 16).ok()?)))
        .ok_or("malformed frame header")?;
    let body_start = nl + 1;
    let body_end = body_start
        .checked_add(len)
        .filter(|&e| e < rest.len())
        .ok_or("frame shorter than its declared length")?;
    if rest[body_end] != b'\n' {
        return Err("missing frame terminator".into());
    }
    let payload = &rest[body_start..body_end];
    if crc32(payload) != crc {
        return Err(format!(
            "CRC mismatch (stored {crc:08x}, computed {:08x})",
            crc32(payload)
        ));
    }
    // From here on the frame was written intact: failures are
    // corruption, not a torn tail — the caller treats them as fatal
    // via the second error slot.
    let payload = std::str::from_utf8(payload).map_err(|_| "non-UTF-8 payload")?;
    Ok(Some((payload.to_string(), offset + body_end + 1)))
}

/// Scans every segment of `dir` in order and decodes the payloads,
/// applying the torn-tail contract (see the module docs). With
/// `repair` set, a torn tail is also truncated off the final segment
/// (and the truncation fsynced) so the next writer starts clean.
pub fn scan_dir(dir: &Path, repair: bool) -> Result<WalScan, StorageError> {
    let files = segment_files(dir)?;
    let mut scan = WalScan {
        payloads: Vec::new(),
        segments: files.len() as u64,
        torn_tail: false,
        next_seq: files.last().map_or(1, |(seq, _)| seq + 1),
    };
    let last = files.len().wrapping_sub(1);
    for (i, (_seq, path)) in files.iter().enumerate() {
        let bytes = std::fs::read(path)?;
        let is_last = i == last;
        let corrupt = |offset: usize, detail: String| StorageError::Corrupt {
            file: path.clone(),
            offset: offset as u64,
            detail,
        };
        // The header line. A zero-length file is an empty segment
        // (creation crashed before the header reached disk).
        let mut offset = match bytes.iter().position(|&b| b == b'\n') {
            _ if bytes.is_empty() => continue,
            Some(nl) if bytes.starts_with(b"#mmv-wal v1 ") => nl + 1,
            _ if is_last => {
                // Torn header write: nothing recoverable here.
                scan.torn_tail = true;
                if repair {
                    truncate_to(path, 0)?;
                }
                continue;
            }
            _ => return Err(corrupt(0, "bad segment header".into())),
        };
        loop {
            match parse_frame(&bytes, offset) {
                Ok(None) => break,
                Ok(Some((payload, next))) => {
                    let decoded = parse_wal_payload(&payload)
                        .map_err(|e| corrupt(offset, format!("unparseable payload: {e}")))?;
                    scan.payloads.push(decoded);
                    offset = next;
                }
                Err(_) if is_last => {
                    scan.torn_tail = true;
                    if repair {
                        truncate_to(path, offset as u64)?;
                    }
                    break;
                }
                Err(detail) => return Err(corrupt(offset, detail)),
            }
        }
    }
    Ok(scan)
}

fn truncate_to(path: &Path, len: u64) -> io::Result<()> {
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    f.sync_data()
}

/// Deletes segments made redundant by a checkpoint covering every
/// epoch `<= chk_epoch`: a non-newest segment is prunable when *every*
/// frame in it parses cleanly and carries an epoch `<= chk_epoch` —
/// decided by reading the segment, never inferred from another
/// segment's header. (The `first_epoch` header is only a lower bound:
/// a checkpoint/recovery *marker* appended concurrently with batch
/// writers can open a rotated segment with an epoch older than batch
/// frames already sitting in the previous segment, so header-based
/// coverage inference would delete un-checkpointed batches.) The
/// newest segment is never deleted; a segment that fails to read or
/// parse is conservatively kept. Returns how many were removed.
pub fn prune_segments(dir: &Path, chk_epoch: u64) -> io::Result<u64> {
    let files = segment_files(dir)?;
    let mut deleted = 0;
    for (_, path) in files.iter().rev().skip(1) {
        if segment_covered_by(path, chk_epoch) {
            std::fs::remove_file(path)?;
            deleted += 1;
        }
    }
    if deleted > 0 {
        File::open(dir)?.sync_all()?;
    }
    Ok(deleted)
}

/// Whether every record in the segment at `path` is at an epoch the
/// checkpoint covers (`<= chk_epoch`). Any read, frame, or payload
/// failure answers `false` — pruning keeps what it cannot prove.
fn segment_covered_by(path: &Path, chk_epoch: u64) -> bool {
    let Ok(bytes) = std::fs::read(path) else {
        return false;
    };
    if bytes.is_empty() {
        // An empty segment (creation crashed pre-header) holds nothing.
        return true;
    }
    if !bytes.starts_with(b"#mmv-wal v1 ") {
        return false;
    }
    let Some(nl) = bytes.iter().position(|&b| b == b'\n') else {
        return false;
    };
    let mut offset = nl + 1;
    loop {
        match parse_frame(&bytes, offset) {
            Ok(None) => return true,
            Ok(Some((payload, next))) => {
                match parse_wal_payload(&payload) {
                    Ok(p) => {
                        let epoch = match p {
                            WalPayload::Batch { epoch, .. }
                            | WalPayload::Recovery { epoch, .. }
                            | WalPayload::Checkpoint { epoch } => epoch,
                            _ => return false,
                        };
                        if epoch > chk_epoch {
                            return false;
                        }
                    }
                    Err(_) => return false,
                }
                offset = next;
            }
            Err(_) => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmv_core::batch::UpdateBatch;
    use mmv_core::parser::render_wal_payload;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmv-wal-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch_payload(epoch: u64) -> WalPayload {
        WalPayload::Batch {
            epoch,
            ticket_base: epoch * 3,
            batch: UpdateBatch::new(),
        }
    }

    fn append_all(wal: &Wal, payloads: &[WalPayload]) {
        for p in payloads {
            let epoch = match p {
                WalPayload::Batch { epoch, .. }
                | WalPayload::Recovery { epoch, .. }
                | WalPayload::Checkpoint { epoch } => *epoch,
                _ => 0,
            };
            let lsn = wal.append(epoch, &render_wal_payload(p)).unwrap();
            wal.wait_durable(lsn).unwrap();
        }
    }

    #[test]
    fn appended_frames_scan_back_in_order() {
        for policy in [
            FsyncPolicy::Always,
            FsyncPolicy::GroupCommit(Duration::ZERO),
            FsyncPolicy::Never,
        ] {
            let dir = tmpdir(&format!("roundtrip-{policy:?}").replace(['(', ')', ' ', '.'], ""));
            let payloads: Vec<WalPayload> = (1..=5).map(batch_payload).collect();
            {
                let wal = Wal::open(&dir, policy, 1 << 20, 1).unwrap();
                append_all(&wal, &payloads);
                let stats = wal.stats();
                assert_eq!(stats.records, 5);
                assert_eq!(stats.segments_created, 1);
                if policy != FsyncPolicy::Never {
                    assert!(stats.fsync_batches >= 1, "{stats:?}");
                }
            }
            let scan = scan_dir(&dir, false).unwrap();
            assert_eq!(scan.payloads, payloads);
            assert!(!scan.torn_tail);
            assert_eq!(scan.next_seq, 2);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn segments_rotate_by_size_and_on_request() {
        let dir = tmpdir("rotate");
        let payloads: Vec<WalPayload> = (1..=4).map(batch_payload).collect();
        {
            // Tiny cap: every frame exceeds it, so each lands in its
            // own segment.
            let wal = Wal::open(&dir, FsyncPolicy::Never, 8, 1).unwrap();
            append_all(&wal, &payloads[..3]);
            wal.request_rotation();
            append_all(&wal, &payloads[3..]);
            assert_eq!(wal.stats().segments_created, 4);
        }
        let scan = scan_dir(&dir, false).unwrap();
        assert_eq!(scan.payloads, payloads);
        assert_eq!(scan.segments, 4);
        // A checkpoint covering epoch 3 can prune the first three
        // segments (every record in them is at an epoch <= 3); the
        // newest segment survives regardless.
        let deleted = prune_segments(&dir, 3).unwrap();
        assert_eq!(deleted, 3);
        let scan = scan_dir(&dir, false).unwrap();
        assert_eq!(scan.payloads, payloads[3..]);
        assert_eq!(scan.next_seq, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruning_keeps_batches_past_the_checkpoint() {
        // The checkpoint-marker race: a marker carrying the checkpoint
        // epoch opens a rotated segment *after* batch frames for later
        // epochs already landed in the previous one. Pruning must keep
        // that previous segment — its epoch-3 batch is not covered by
        // the epoch-2 checkpoint, whatever any header claims.
        let dir = tmpdir("prune-race");
        let wal = Wal::open(&dir, FsyncPolicy::Never, 1 << 20, 1).unwrap();
        append_all(
            &wal,
            &[batch_payload(1), batch_payload(2), batch_payload(3)],
        );
        wal.request_rotation();
        // Stale lower-bound marker (epoch 2) opens segment 2.
        wal.append(2, &render_wal_payload(&WalPayload::Checkpoint { epoch: 2 }))
            .unwrap();
        assert_eq!(prune_segments(&dir, 2).unwrap(), 0);
        let scan = scan_dir(&dir, false).unwrap();
        assert_eq!(scan.payloads.len(), 4, "nothing was deleted");
        // Once a checkpoint actually covers epoch 3, segment 1 goes.
        assert_eq!(prune_segments(&dir, 3).unwrap(), 1);
        let scan = scan_dir(&dir, false).unwrap();
        assert_eq!(scan.payloads.len(), 1, "only the marker remains");
        drop(wal);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_but_middle_corruption_is_fatal() {
        let dir = tmpdir("torn");
        let payloads: Vec<WalPayload> = (1..=3).map(batch_payload).collect();
        {
            let wal = Wal::open(&dir, FsyncPolicy::Never, 1 << 20, 1).unwrap();
            append_all(&wal, &payloads);
        }
        let path = dir.join("wal-000001.log");
        let clean = std::fs::read(&path).unwrap();
        // Torn tail: append half a frame.
        let mut torn = clean.clone();
        torn.extend_from_slice(b"@57 deadbeef\nbatch epo");
        std::fs::write(&path, &torn).unwrap();
        let scan = scan_dir(&dir, true).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.payloads, payloads);
        // Repair truncated the tail: a second scan is clean.
        let scan = scan_dir(&dir, false).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(std::fs::read(&path).unwrap(), clean);

        // Flip a payload byte mid-file: CRC failure in the (single,
        // hence final) segment → torn tail there too; but with a
        // *later* segment present it is corruption.
        let mut flipped = clean.clone();
        let pos = clean.len() / 2;
        flipped[pos] ^= 0x20;
        std::fs::write(&path, &flipped).unwrap();
        std::fs::write(
            dir.join("wal-000002.log"),
            "#mmv-wal v1 seg=2 first_epoch=4\n",
        )
        .unwrap();
        let err = scan_dir(&dir, false).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc_valid_garbage_is_corrupt_even_at_the_tail() {
        let dir = tmpdir("garbage");
        {
            let wal = Wal::open(&dir, FsyncPolicy::Never, 1 << 20, 1).unwrap();
            append_all(&wal, &[batch_payload(1)]);
        }
        let path = dir.join("wal-000001.log");
        let payload = "mystery kind=7\n";
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(
            format!(
                "@{} {:08x}\n{payload}\n",
                payload.len(),
                crc32(payload.as_bytes())
            )
            .as_bytes(),
        );
        std::fs::write(&path, &bytes).unwrap();
        let err = scan_dir(&dir, true).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_batches_fsyncs_across_writers() {
        let dir = tmpdir("group");
        let wal = Wal::open(&dir, FsyncPolicy::GroupCommit(Duration::ZERO), 1 << 20, 1).unwrap();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let wal = wal.clone();
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let epoch = t * 50 + i + 1;
                        let lsn = wal
                            .append(epoch, &render_wal_payload(&batch_payload(epoch)))
                            .unwrap();
                        wal.wait_durable(lsn).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let stats = wal.stats();
        assert_eq!(stats.records, 200);
        assert!(
            stats.fsync_batches < 200,
            "group commit must coalesce: {stats:?}"
        );
        drop(wal);
        assert_eq!(scan_dir(&dir, false).unwrap().payloads.len(), 200);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
