//! The dedicated writer thread: submission-ordered batch application.
//!
//! A [`ServiceWorker`] serializes batches from any number of
//! [`BatchSender`] clones into one application order. With a sharded
//! [`ViewService`] the worker is one convenient writer among possibly
//! many — callers that want independent shards maintained in parallel
//! call [`ViewService::apply`] from their own threads instead (single-
//! shard batches only contend on their own lane), or run one worker per
//! workload stream.

use crate::service::{ServiceError, ViewService};
use mmv_core::batch::UpdateBatch;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// A dedicated writer thread: callers submit batches through a channel
/// and continue immediately; the worker applies them in submission
/// order against the shared service.
///
/// Dropping the last [`BatchSender`] shuts the worker down;
/// [`ServiceWorker::join`] then returns how many batches were applied,
/// or the first error (the worker stops at the first failed batch —
/// submission order is the transaction order, so skipping a failed
/// transaction silently would reorder history).
pub struct ServiceWorker {
    handle: JoinHandle<Result<usize, ServiceError>>,
}

/// The submission side of a [`ServiceWorker`]. Cloneable; all clones
/// feed the same worker.
#[derive(Clone)]
pub struct BatchSender {
    tx: mpsc::Sender<UpdateBatch>,
    /// The service's `mmv_worker_queue_depth` gauge: up on submit,
    /// down when the worker picks the batch up.
    depth: mmv_obs::Gauge,
}

impl BatchSender {
    /// Enqueues a batch for the worker. Fails only if the worker has
    /// already shut down.
    pub fn submit(&self, batch: UpdateBatch) -> Result<(), ServiceError> {
        self.depth.inc();
        self.tx.send(batch).map_err(|_| {
            self.depth.dec();
            ServiceError::WorkerGone(None)
        })
    }
}

impl ServiceWorker {
    /// Spawns the writer thread for `service`.
    pub fn spawn(service: Arc<ViewService>) -> (BatchSender, ServiceWorker) {
        let (tx, rx) = mpsc::channel::<UpdateBatch>();
        let depth = service.obs.queue_depth.clone();
        let worker_depth = depth.clone();
        let handle = std::thread::spawn(move || {
            let mut applied = 0usize;
            for batch in rx {
                worker_depth.dec();
                service.apply(batch)?;
                applied += 1;
            }
            Ok(applied)
        });
        (BatchSender { tx, depth }, ServiceWorker { handle })
    }

    /// Waits for the worker to drain and shut down (drop every
    /// [`BatchSender`] first, or this blocks forever). Returns the
    /// number of batches applied. A worker killed by a panicking batch
    /// reports [`ServiceError::WorkerGone`] — carrying the panic
    /// message when the payload was a string, as `panic!` payloads
    /// almost always are — rather than re-panicking the supervisor;
    /// the service itself recovers the poisoned lanes on their next
    /// use (see [`crate::service`]).
    pub fn join(self) -> Result<usize, ServiceError> {
        self.handle.join().unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()));
            Err(ServiceError::WorkerGone(msg))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmv_constraints::solver::SolverConfig;
    use mmv_constraints::{CmpOp, Constraint, Term, Value, Var};
    use mmv_core::{BodyAtom, Clause, ConstrainedAtom, ConstrainedDatabase};

    fn x() -> Term {
        Term::var(Var(0))
    }

    #[test]
    fn worker_applies_in_submission_order() {
        let db = ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "b",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(9),
                )),
            ),
            Clause::new(
                "a",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("b", vec![x()])],
            ),
        ]);
        let svc = Arc::new(ViewService::builder().build(db).unwrap());
        let point =
            |v: i64| ConstrainedAtom::new("b", vec![x()], Constraint::eq(x(), Term::int(v)));
        let (tx, worker) = ServiceWorker::spawn(svc.clone());
        for v in [2, 4, 6] {
            tx.submit(mmv_core::UpdateBatch::deleting(vec![point(v)]))
                .unwrap();
        }
        drop(tx);
        assert_eq!(worker.join().unwrap(), 3);
        assert_eq!(svc.epoch(), 3);
        let cfg = SolverConfig::default();
        for v in [2, 4, 6] {
            assert!(!svc.ask("b", &[Value::int(v)], &cfg).unwrap());
        }
        assert!(svc.ask("b", &[Value::int(5)], &cfg).unwrap());
        let log = svc.log();
        assert_eq!(log.len(), 3);
        let epochs: Vec<_> = log.records().iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![1, 2, 3]);
    }
}
