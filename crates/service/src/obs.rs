//! Service-wide observability: the unified metrics registry and the
//! batch-lifecycle trace ring.
//!
//! Every [`ViewService`][crate::ViewService] owns one [`ServiceObs`]:
//! a [`MetricsRegistry`] that every subsystem's detached counters are
//! registered into (writer lanes, WAL, checkpointer, health machine,
//! fault-injecting Vfs, core maintenance), a [`TraceRing`] of the last
//! N [`BatchTrace`]s, and the batch-level instruments the apply
//! pipeline feeds directly. Scrapers call
//! [`ViewService::metrics`][crate::ViewService::metrics] and render
//! concurrently with writers at zero coordination cost — every
//! instrument is a relaxed atomic, never a lock the write path takes.
//!
//! Instrumentation is gated by
//! [`ObsOptions::enabled`][crate::config::ObsOptions]: when disabled,
//! the apply path takes no stage clocks and records no traces or batch
//! counters (the registry still exists and scrapes cleanly — the
//! batch-lifecycle families just stay at zero).

use crate::config::ObsOptions;
use mmv_core::batch::BatchStats;
use mmv_core::obs::CoreMetrics;
use mmv_obs::{
    BatchTrace, Counter, Gauge, Histogram, MetricsRegistry, Stage, TraceRing, Unit, STAGE_COUNT,
};
use std::sync::Arc;
use std::time::Instant;

/// The service's observability state: one registry, one trace ring,
/// and the batch-level instruments the apply pipeline records into.
#[derive(Debug)]
pub(crate) struct ServiceObs {
    /// Whether the apply path records stage timings, traces, and batch
    /// counters. Component-owned metrics (WAL, checkpointer, health,
    /// Vfs) are always live regardless.
    pub(crate) enabled: bool,
    pub(crate) registry: Arc<MetricsRegistry>,
    pub(crate) traces: TraceRing,
    batches_applied: Counter,
    pub(crate) batches_failed: Counter,
    /// Per-stage latency histograms, indexed in [`Stage::ALL`] order.
    stage_hist: Vec<Histogram>,
    /// Batches applied per writer lane (`lane` label).
    lane_batches: Vec<Counter>,
    /// Threads currently waiting for (or holding into) each lane's
    /// writer lock — the per-lane queue-depth gauge.
    pub(crate) lane_waiters: Vec<Gauge>,
    /// Batches sitting in [`ServiceWorker`][crate::ServiceWorker]
    /// channels, submitted but not yet picked up.
    pub(crate) queue_depth: Gauge,
    publish_epoch: Gauge,
    view_entries: Gauge,
    /// Core maintenance counters (fixpoint, DRed, StDel, CoW copies),
    /// fed from each applied batch's [`BatchStats`].
    pub(crate) core: CoreMetrics,
}

impl ServiceObs {
    /// Builds the registry and registers every batch-level instrument,
    /// with one labeled series per writer lane.
    pub(crate) fn new(opts: &ObsOptions, num_lanes: usize) -> ServiceObs {
        let registry = Arc::new(MetricsRegistry::new());
        let batches_applied = registry.counter(
            "mmv_batches_applied_total",
            "Update batches applied and published",
        );
        let batches_failed = registry.counter(
            "mmv_batches_failed_total",
            "Update batches rejected (batch error, storage failure, or read-only)",
        );
        let stage_hist: Vec<Histogram> = Stage::ALL
            .iter()
            .map(|s| {
                let h = Histogram::new();
                registry.register_histogram(
                    "mmv_batch_stage_seconds",
                    "Wall-clock per batch-pipeline stage",
                    Unit::Seconds,
                    &[("stage", s.name())],
                    &h,
                );
                h
            })
            .collect();
        let mut lane_batches = Vec::with_capacity(num_lanes);
        let mut lane_waiters = Vec::with_capacity(num_lanes);
        for lane in 0..num_lanes {
            let label = lane.to_string();
            let c = Counter::new();
            registry.register_counter(
                "mmv_lane_batches_total",
                "Batches that touched this writer lane",
                &[("lane", &label)],
                &c,
            );
            lane_batches.push(c);
            let g = Gauge::new();
            registry.register_gauge(
                "mmv_lane_lock_waiters",
                "Threads currently queued on this lane's writer lock",
                &[("lane", &label)],
                &g,
            );
            lane_waiters.push(g);
        }
        let queue_depth = registry.gauge(
            "mmv_worker_queue_depth",
            "Batches submitted to service workers and not yet applied",
        );
        let publish_epoch = registry.gauge(
            "mmv_publish_epoch",
            "Global epoch of the last published snapshot",
        );
        let view_entries = registry.gauge(
            "mmv_view_entries",
            "Entries in the published composite view after the last batch",
        );
        let core = CoreMetrics::default();
        core.register_into(&registry);
        ServiceObs {
            enabled: opts.enabled,
            registry,
            traces: TraceRing::new(if opts.enabled { opts.trace_capacity } else { 0 }),
            batches_applied,
            batches_failed,
            stage_hist,
            lane_batches,
            lane_waiters,
            queue_depth,
            publish_epoch,
            view_entries,
            core,
        }
    }

    /// Seeds the published-epoch gauge at construction or recovery,
    /// where an epoch is published without any batch being applied.
    pub(crate) fn publish_epoch_hint(&self, epoch: u64) {
        self.publish_epoch.set_max(epoch as i64);
    }

    /// The per-stage latency histogram (registered as
    /// `mmv_batch_stage_seconds{stage=...}`).
    pub(crate) fn stage_histogram(&self, stage: Stage) -> &Histogram {
        let i = Stage::ALL
            .iter()
            .position(|s| *s == stage)
            .expect("Stage::ALL covers every stage");
        &self.stage_hist[i]
    }

    /// Records one published batch: the trace (ring + per-stage
    /// histograms, skipping stages that did not run), the batch and
    /// per-lane counters, the epoch/view-size gauges, and the core
    /// maintenance counters. Only called when `enabled`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn record_applied(
        &self,
        trace: BatchTrace,
        touched: impl Iterator<Item = usize>,
        stats: &BatchStats,
        copied_pages: u64,
        copied_indexes: u64,
        copied_by_const_keys: u64,
        copied_slot_keys: u64,
    ) {
        self.batches_applied.inc();
        for i in 0..STAGE_COUNT {
            let nanos = trace.stage_nanos[i];
            if nanos != 0 {
                self.stage_hist[i].observe(nanos);
            }
        }
        for lane in touched {
            self.lane_batches[lane].inc();
        }
        self.publish_epoch.set_max(trace.epoch as i64);
        self.view_entries.set(stats.view_entries as i64);
        self.core.record_batch(stats);
        self.core.record_copies(copied_pages, copied_indexes);
        self.core
            .record_key_copies(copied_by_const_keys, copied_slot_keys);
        self.traces.push(trace);
    }
}

/// A per-batch stopwatch over the apply pipeline: laps record the time
/// since the previous mark into a [`BatchTrace`] stage. Disabled, it
/// is inert — no `Instant::now` calls at all, so the uninstrumented
/// path pays nothing.
pub(crate) struct StageClock {
    pub(crate) trace: BatchTrace,
    last: Option<Instant>,
}

impl StageClock {
    pub(crate) fn new(enabled: bool) -> StageClock {
        StageClock {
            trace: BatchTrace::default(),
            last: enabled.then(Instant::now),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.last.is_some()
    }

    /// Records the time since the last mark into `stage` and re-marks.
    pub(crate) fn lap(&mut self, stage: Stage) {
        if let Some(last) = &mut self.last {
            let now = Instant::now();
            self.trace.record(stage, now.duration_since(*last));
            *last = now;
        }
    }

    /// Re-marks without recording: excludes untimed work from the next
    /// lap.
    pub(crate) fn mark(&mut self) {
        if let Some(last) = &mut self.last {
            *last = Instant::now();
        }
    }

    /// An obs-gated clock read: `Some(now)` when the clock is enabled,
    /// `None` (no clock read at all) when it is not. Pair with
    /// [`StageClock::since`] to measure spans the apply path reports
    /// (batch latency, publish latency) without putting `Instant::now`
    /// on the uninstrumented write path — the `time-gate` lint keeps
    /// raw clock reads out of write-path modules, and this helper is
    /// the sanctioned alternative.
    pub(crate) fn now(&self) -> Option<Instant> {
        self.last.map(|_| Instant::now())
    }

    /// Elapsed time since a [`StageClock::now`] mark, zero when the
    /// clock was disabled (the span was never measured).
    pub(crate) fn since(&self, mark: Option<Instant>) -> std::time::Duration {
        mark.map(|t| t.elapsed()).unwrap_or_default()
    }

    /// The finished trace, `None` when the clock was disabled.
    pub(crate) fn finish(self) -> Option<BatchTrace> {
        self.last.map(|_| self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ObsOptions;

    #[test]
    fn disabled_clock_records_nothing() {
        let mut clock = StageClock::new(false);
        clock.lap(Stage::Apply);
        clock.mark();
        assert!(!clock.enabled());
        assert!(clock.finish().is_none());
    }

    #[test]
    fn enabled_clock_laps_into_stages() {
        let mut clock = StageClock::new(true);
        std::thread::sleep(std::time::Duration::from_millis(1));
        clock.lap(Stage::Apply);
        let trace = clock.finish().expect("enabled");
        assert!(trace.stage(Stage::Apply) >= std::time::Duration::from_millis(1));
        assert_eq!(trace.stage(Stage::Publish), std::time::Duration::ZERO);
    }

    #[test]
    fn record_applied_feeds_registry_and_ring() {
        let obs = ServiceObs::new(&ObsOptions::default(), 2);
        let mut trace = BatchTrace {
            epoch: 7,
            shards_touched: 1,
            ..BatchTrace::default()
        };
        trace.record(Stage::Apply, std::time::Duration::from_micros(10));
        let stats = BatchStats::empty();
        obs.record_applied(trace, [1usize].into_iter(), &stats, 3, 1, 5, 2);
        assert_eq!(obs.traces.recent().len(), 1);
        assert_eq!(obs.stage_histogram(Stage::Apply).snapshot().count(), 1);
        assert_eq!(obs.stage_histogram(Stage::Split).snapshot().count(), 0);
        let text = obs.registry.render_prometheus();
        assert!(text.contains("mmv_batches_applied_total 1"));
        assert!(text.contains("mmv_lane_batches_total{lane=\"1\"} 1"));
        assert!(text.contains("mmv_publish_epoch 7"));
        mmv_obs::validate_prometheus(&text).expect("scrape parses");
    }

    #[test]
    fn disabled_obs_keeps_trace_ring_empty() {
        let obs = ServiceObs::new(&ObsOptions::disabled(), 1);
        assert!(!obs.enabled);
        assert_eq!(obs.traces.capacity(), 0);
    }
}
