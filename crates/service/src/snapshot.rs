//! Epoch-tagged immutable view snapshots.
//!
//! A [`ViewSnapshot`] is a frozen [`MaterializedView`] plus the epoch at
//! which the writer published it. Snapshots are shared as
//! `Arc<ViewSnapshot>`: any number of reader threads can hold and query
//! one concurrently while the writer materializes the next epoch —
//! reads never block maintenance and maintenance never blocks reads
//! (the "stale view" serving discipline: readers observe the most
//! recently *published* consistent state, never a half-maintained one).
//!
//! Since the view is a handle onto a persistent, structurally-shared
//! store (see [`mmv_core::view`]), freezing one here is a handful of
//! `Arc` bumps: the snapshot holds the shared store directly, entries
//! and index pages physically shared with the writer and with every
//! other epoch that hasn't diverged from them. Entry immutability (the
//! writer replaces entries instead of mutating them, and copies any
//! still-shared page before writing) is what makes that sharing safe
//! under concurrent readers. [`PublishStats`] records what one epoch's
//! publication actually cost.

use mmv_constraints::solver::SolverConfig;
use mmv_constraints::{DomainResolver, Value};
use mmv_core::view::GroundFact;
use mmv_core::{InstanceError, MaterializedView, SupportMode};
use std::collections::BTreeSet;
use std::fmt;
use std::time::Duration;

/// The cost of publishing one epoch: how long the freeze-and-swap took,
/// and how much of the store the batch's maintenance had to copy
/// (copy-on-write) versus leave shared with previous epochs.
///
/// `*_copied` counts are per-epoch deltas; `*_total` are the store's
/// current totals, so `total - copied` pages stayed physically shared.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// Wall-clock time to freeze the view into a snapshot and swap it
    /// in — pointer bumps under the shared store, never a deep copy.
    pub publish_latency: Duration,
    /// Entry-slab pages the batch copied because they were still
    /// shared with an older epoch.
    pub entry_pages_copied: u64,
    /// Entry-slab pages currently allocated.
    pub entry_pages_total: usize,
    /// Per-predicate index pages the batch copied.
    pub pred_indexes_copied: u64,
    /// Per-predicate index pages currently allocated.
    pub pred_indexes_total: usize,
}

/// A monotonically increasing snapshot version. Epoch 0 is the freshly
/// built view; every applied batch publishes the next epoch.
pub type Epoch = u64;

/// An immutable materialized view frozen at one epoch.
#[derive(Debug, Clone)]
pub struct ViewSnapshot {
    epoch: Epoch,
    view: MaterializedView,
}

impl ViewSnapshot {
    /// Freezes `view` at `epoch`.
    pub fn new(epoch: Epoch, view: MaterializedView) -> Self {
        ViewSnapshot { epoch, view }
    }

    /// The epoch at which this snapshot was published.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The frozen view (for APIs not mirrored below).
    pub fn view(&self) -> &MaterializedView {
        &self.view
    }

    /// The snapshot's support mode.
    pub fn mode(&self) -> SupportMode {
        self.view.mode()
    }

    /// Number of live entries in the snapshot.
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// Whether the snapshot has no live entries.
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }

    /// Answers `pred(pattern)` against the snapshot (`None` positions
    /// are free); see [`MaterializedView::query`].
    pub fn query(
        &self,
        pred: &str,
        pattern: &[Option<Value>],
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Result<BTreeSet<Vec<Value>>, InstanceError> {
        self.view.query(pred, pattern, resolver, config)
    }

    /// Boolean query against the snapshot; see [`MaterializedView::ask`].
    pub fn ask(
        &self,
        pred: &str,
        args: &[Value],
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Result<bool, InstanceError> {
        self.view.ask(pred, args, resolver, config)
    }

    /// The snapshot's full instance set `[M]`; see
    /// [`MaterializedView::instances`].
    pub fn instances(
        &self,
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Result<BTreeSet<GroundFact>, InstanceError> {
        self.view.instances(resolver, config)
    }
}

impl fmt::Display for ViewSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "epoch {}", self.epoch)?;
        self.view.fmt(f)
    }
}
