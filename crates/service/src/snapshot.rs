//! Epoch-tagged immutable view snapshots.
//!
//! A [`ViewSnapshot`] is a frozen [`MaterializedView`] plus the epoch at
//! which the writer published it. Snapshots are shared as
//! `Arc<ViewSnapshot>`: any number of reader threads can hold and query
//! one concurrently while the writer materializes the next epoch —
//! reads never block maintenance and maintenance never blocks reads
//! (the "stale view" serving discipline: readers observe the most
//! recently *published* consistent state, never a half-maintained one).
//!
//! Since the view is a handle onto a persistent, structurally-shared
//! store (see [`mmv_core::view`]), freezing one here is a handful of
//! `Arc` bumps: the snapshot holds the shared store directly, entries
//! and index pages physically shared with the writer and with every
//! other epoch that hasn't diverged from them. Entry immutability (the
//! writer replaces entries instead of mutating them, and copies any
//! still-shared page before writing) is what makes that sharing safe
//! under concurrent readers. [`PublishStats`] records what one epoch's
//! publication actually cost.

use mmv_constraints::solver::SolverConfig;
use mmv_constraints::{DomainResolver, Value, VarGen};
use mmv_core::shard::{ShardId, ShardMap};
use mmv_core::view::GroundFact;
use mmv_core::{InstanceError, MaterializedView, SupportMode};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// The cost of publishing one epoch: how long the freeze-and-swap took,
/// and how much of the store the batch's maintenance had to copy
/// (copy-on-write) versus leave shared with previous epochs.
///
/// `*_copied` counts are per-epoch deltas; `*_total` are the store's
/// current totals, so `total - copied` pages stayed physically shared.
/// Under a sharded writer the counts aggregate over the shards the
/// batch touched (lanes it never locked copied nothing by
/// construction, and their pages are not counted in the totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// Wall-clock time to freeze the view into a snapshot and swap it
    /// in — pointer bumps under the shared store, never a deep copy.
    /// For a cross-shard batch this covers the whole two-phase publish:
    /// freezing every touched lane and the single atomic multi-shard
    /// swap.
    pub publish_latency: Duration,
    /// Entry-slab pages the batch copied because they were still
    /// shared with an older epoch.
    pub entry_pages_copied: u64,
    /// Entry-slab pages currently allocated (touched shards).
    pub entry_pages_total: usize,
    /// Per-predicate index pages the batch copied.
    pub pred_indexes_copied: u64,
    /// Per-predicate index pages currently allocated (touched shards).
    pub pred_indexes_total: usize,
    /// Sub-page CoW: `by_const` key/value pairs the batch physically
    /// cloned while un-sharing trie leaves — O(touched keys), to be
    /// compared against `by_const_keys_total` (what whole-index copying
    /// would have paid).
    pub by_const_keys_copied: u64,
    /// `by_const` keys currently held across the touched shards'
    /// indexes.
    pub by_const_keys_total: usize,
    /// Sub-page CoW: live-slot pairs the batch cloned while un-sharing
    /// trie leaves.
    pub slot_keys_copied: u64,
}

/// A monotonically increasing snapshot version. Epoch 0 is the freshly
/// built view; every applied batch publishes the next epoch. Under a
/// sharded writer there are two epoch counters: the service-wide
/// *global* epoch (one tick per applied batch) and each shard's own
/// epoch (one tick per batch that touched the shard) — both monotone.
pub type Epoch = u64;

/// An immutable materialized view frozen at one epoch. Under a sharded
/// writer this is *one shard's* slice of the view, tagged with the
/// shard's own epoch; [`ServiceSnapshot`] composes all shards.
#[derive(Debug, Clone)]
pub struct ViewSnapshot {
    epoch: Epoch,
    view: MaterializedView,
}

impl ViewSnapshot {
    /// Freezes `view` at `epoch`.
    pub fn new(epoch: Epoch, view: MaterializedView) -> Self {
        ViewSnapshot { epoch, view }
    }

    /// The epoch at which this snapshot was published.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// The frozen view (for APIs not mirrored below).
    pub fn view(&self) -> &MaterializedView {
        &self.view
    }

    /// The snapshot's support mode.
    pub fn mode(&self) -> SupportMode {
        self.view.mode()
    }

    /// Number of live entries in the snapshot.
    pub fn len(&self) -> usize {
        self.view.len()
    }

    /// Whether the snapshot has no live entries.
    pub fn is_empty(&self) -> bool {
        self.view.is_empty()
    }

    /// Answers `pred(pattern)` against the snapshot (`None` positions
    /// are free); see [`MaterializedView::query`].
    pub fn query(
        &self,
        pred: &str,
        pattern: &[Option<Value>],
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Result<BTreeSet<Vec<Value>>, InstanceError> {
        self.view.query(pred, pattern, resolver, config)
    }

    /// Boolean query against the snapshot; see [`MaterializedView::ask`].
    pub fn ask(
        &self,
        pred: &str,
        args: &[Value],
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Result<bool, InstanceError> {
        self.view.ask(pred, args, resolver, config)
    }

    /// The snapshot's full instance set `[M]`; see
    /// [`MaterializedView::instances`].
    pub fn instances(
        &self,
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Result<BTreeSet<GroundFact>, InstanceError> {
        self.view.instances(resolver, config)
    }
}

impl fmt::Display for ViewSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "epoch {}", self.epoch)?;
        self.view.fmt(f)
    }
}

/// A consistent composite snapshot of every shard of a sharded
/// [`ViewService`][crate::ViewService]: one frozen per-shard
/// [`ViewSnapshot`] per writer lane, the predicate → shard routing
/// table, and the global epoch at which the composite was taken.
///
/// The service assembles it under the publication lock, so the
/// composite can never be *torn*: a cross-shard batch's two-phase
/// publish swaps all of its shards' snapshots inside one critical
/// section, and a snapshot taken before or after sees either none or
/// all of them. Cloning is a handful of `Arc` bumps; queries route by
/// predicate and run without any synchronization with the writer lanes.
#[derive(Debug, Clone)]
pub struct ServiceSnapshot {
    epoch: Epoch,
    shards: Vec<Arc<ViewSnapshot>>,
    map: Arc<ShardMap>,
}

impl ServiceSnapshot {
    pub(crate) fn new(epoch: Epoch, shards: Vec<Arc<ViewSnapshot>>, map: Arc<ShardMap>) -> Self {
        debug_assert_eq!(shards.len(), map.num_shards());
        ServiceSnapshot { epoch, shards, map }
    }

    /// The global epoch at which this composite was published (one tick
    /// per applied batch, monotone service-wide).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Number of writer lanes (shards).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's frozen slice of the view.
    pub fn shard(&self, shard: ShardId) -> &Arc<ViewSnapshot> {
        &self.shards[shard]
    }

    /// One shard's epoch (ticks only when a batch touches the shard).
    pub fn shard_epoch(&self, shard: ShardId) -> Epoch {
        self.shards[shard].epoch()
    }

    /// The predicate → shard routing table the snapshot was taken under.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The snapshot's support mode.
    pub fn mode(&self) -> SupportMode {
        self.shards[0].mode()
    }

    /// Total live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether no shard has a live entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.is_empty())
    }

    /// Answers `pred(pattern)` against the shard owning `pred` (`None`
    /// positions are free); see [`MaterializedView::query`].
    pub fn query(
        &self,
        pred: &str,
        pattern: &[Option<Value>],
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Result<BTreeSet<Vec<Value>>, InstanceError> {
        self.shards[self.map.shard_of(pred)].query(pred, pattern, resolver, config)
    }

    /// Boolean query against the shard owning `pred`; see
    /// [`MaterializedView::ask`].
    pub fn ask(
        &self,
        pred: &str,
        args: &[Value],
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Result<bool, InstanceError> {
        self.shards[self.map.shard_of(pred)].ask(pred, args, resolver, config)
    }

    /// The full instance set `[M]`: the union over all shards.
    pub fn instances(
        &self,
        resolver: &dyn DomainResolver,
        config: &SolverConfig,
    ) -> Result<BTreeSet<GroundFact>, InstanceError> {
        let mut out = BTreeSet::new();
        for s in &self.shards {
            out.extend(s.instances(resolver, config)?);
        }
        Ok(out)
    }

    /// Deep-merges every shard's live entries into one standalone
    /// [`MaterializedView`] — the single-view rendering of the sharded
    /// state, O(view). For equality checks (log replay, the
    /// sharded-vs-single-lane tests) and offline inspection, not the
    /// serving path; the merged view is not set up for further
    /// maintenance (its variable generator is fresh).
    pub fn merged_view(&self) -> MaterializedView {
        let mut out = MaterializedView::new(self.mode(), VarGen::starting_at(0));
        for s in &self.shards {
            for (_, e) in s.view().live_entries() {
                out.insert(e.atom.clone(), e.support.clone(), e.children_args.clone());
            }
        }
        out
    }
}

impl fmt::Display for ServiceSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "global epoch {}", self.epoch)?;
        for (s, shard) in self.shards.iter().enumerate() {
            writeln!(f, "-- shard {s} (epoch {})", shard.epoch())?;
            shard.view().fmt(f)?;
        }
        Ok(())
    }
}
