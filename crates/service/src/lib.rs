//! # mmv-service — a concurrent materialized-view service
//!
//! The paper's maintenance algorithms (Extended DRed, StDel, insertion)
//! are defined over *sets* of updates; `mmv-core` exposes them as
//! set-oriented batch entry points ([`mmv_core::batch`]). This crate
//! turns those into a long-lived concurrent server with four pillars:
//!
//! * **Batched update transactions** — writers group updates into an
//!   [`UpdateBatch`]; one maintenance pass applies the whole batch,
//!   amortizing the per-pass frontier/rederivation work that per-update
//!   maintenance repeats.
//! * **Per-predicate writer lanes** — the clause dependency graph
//!   partitions predicates into provably independent shards
//!   ([`mmv_core::shard`]); each gets its own writer lane (view, epoch,
//!   lock, sub-database), so batches against independent predicates
//!   maintain concurrently, each lane seeing only its own clauses and
//!   entries. Cross-shard batches lock lanes in canonical order and
//!   publish through an atomic two-phase swap. A lane poisoned by a
//!   panicking batch recovers from its last published shard snapshot —
//!   the other lanes never stop serving.
//! * **Snapshot-isolated reads** — the service publishes immutable,
//!   epoch-tagged per-shard [`ViewSnapshot`]s composed into a
//!   [`ServiceSnapshot`] after every batch. Readers clone `Arc` handles
//!   and query from any thread without synchronizing with the writers:
//!   they observe the last *published* consistent state, never a
//!   half-maintained view or a torn multi-shard epoch.
//! * **An update log** — an append-only [`UpdateLog`] of applied
//!   batches (epoch, batch, stats, latency) and lane recoveries that
//!   can be replayed onto a freshly built view to reproduce the served
//!   state (recovery), and that the equivalence tests use to pin batch
//!   determinism.
//! * **Durability** — opt-in via [`Durability::durable`]: every batch
//!   is appended to a segmented write-ahead log *before* it is
//!   published, with group-commit fsync batching ([`wal`]); a
//!   background thread periodically checkpoints the served view
//!   ([`checkpoint`]); and [`ViewService::recover`] rebuilds the
//!   service after a crash from the newest valid checkpoint plus the
//!   WAL tail, tolerating a torn final frame.
//! * **Observability** — every subsystem registers its counters into
//!   one lock-free [`MetricsRegistry`] ([`ViewService::metrics`]),
//!   scrapeable as Prometheus text or JSON concurrently with writers
//!   at zero coordination cost; each applied batch leaves a
//!   per-stage wall-clock [`BatchTrace`]
//!   ([`ViewService::recent_traces`]). Gated by [`ObsOptions`].
//! * **Fault tolerance** — all storage I/O goes through a [`Vfs`]
//!   (swappable for the deterministic, seed-driven [`FaultVfs`] in
//!   tests); transient faults are absorbed by bounded-backoff retry
//!   ([`RetryPolicy`]); a persistent WAL failure flips the service
//!   [`ServiceHealth::ReadOnly`] — writes fail fast, readers keep
//!   serving the last published snapshot — and a background probe
//!   restores write service when storage recovers ([`health`]).
//!
//! ```
//! use mmv_service::{ServiceWorker, ViewService};
//! use mmv_core::batch::UpdateBatch;
//! use mmv_core::parser::{parse_atom, parse_program};
//! use mmv_constraints::{NoDomains, SolverConfig, Value};
//! use std::sync::Arc;
//!
//! let parsed = parse_program("b(X) <- X >= 5.  a(X) <- || b(X).").unwrap();
//! let service = Arc::new(ViewService::builder().build(parsed.db).unwrap());
//!
//! // Readers hold epoch-tagged snapshots...
//! let before = service.snapshot();
//! assert_eq!(before.epoch(), 0);
//!
//! // ...while a batch of updates is applied in one maintenance pass.
//! let batch = UpdateBatch::deleting(vec![parse_atom("b(X) <- X = 6").unwrap()]);
//! let applied = service.apply(batch).unwrap();
//! assert_eq!(applied.epoch, 1);
//!
//! // The old snapshot is isolated; the new one reflects the batch.
//! let cfg = SolverConfig::default();
//! assert!(before.ask("a", &[Value::int(6)], &NoDomains, &cfg).unwrap());
//! assert!(!service.ask("a", &[Value::int(6)], &cfg).unwrap());
//! # drop(ServiceWorker::spawn(service.clone()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checkpoint;
pub mod config;
pub mod health;
pub mod log;
mod obs;
pub mod service;
pub mod snapshot;
pub mod vfs;
pub mod wal;
pub mod worker;

pub use checkpoint::CheckpointStats;
pub use config::{Durability, ObsOptions, RecoveryReport, ServiceConfig, ViewServiceBuilder};
pub use health::{HealthTransition, RetryPolicy, ServiceHealth, HEALTH_TRANSITION_CAP};
pub use log::{DurableLog, LogRecord, LogSink, Recovery, ReplayError, UpdateLog};
pub use service::{Applied, FaultHook, LogRead, ServiceError, SharedResolver, ViewService};
pub use snapshot::{Epoch, PublishStats, ServiceSnapshot, ViewSnapshot};
pub use vfs::{
    Fault, FaultPlan, FaultStats, FaultVfs, OpSel, ScriptedFault, StdVfs, StorageOp, Vfs,
};
pub use wal::{FsyncPolicy, StorageError, WalStats};
pub use worker::{BatchSender, ServiceWorker};

// Re-export the batch and shard vocabulary so service users need not
// depend on mmv-core directly for the common path.
pub use mmv_core::batch::{BatchError, BatchStats, DeleteStats, UpdateBatch};
pub use mmv_core::shard::{ShardId, ShardMap, ShardSpec};

// Re-export the observability vocabulary the service's own API speaks
// ([`ViewService::metrics`], [`ViewService::recent_traces`]) so
// scraping a service needs no direct mmv-obs dependency.
pub use mmv_obs::{
    validate_prometheus, BatchTrace, HistogramSnapshot, MetricsRegistry, Stage, TraceRing,
};

/// Send/Sync audit: the service shares these across reader and writer
/// threads, so a regression (an `Rc`, a `RefCell`, a raw pointer
/// slipping into the view or its substrate) must fail to compile here
/// rather than at some distant use site.
const _SEND_SYNC_AUDIT: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<mmv_core::MaterializedView>();
    assert_send_sync::<mmv_core::ConstrainedDatabase>();
    assert_send_sync::<mmv_core::ConstrainedAtom>();
    assert_send_sync::<mmv_core::Support>();
    assert_send_sync::<mmv_constraints::VarGen>();
    assert_send_sync::<mmv_constraints::Constraint>();
    assert_send_sync::<mmv_constraints::Value>();
    assert_send_sync::<UpdateBatch>();
    assert_send_sync::<ViewSnapshot>();
    assert_send_sync::<ServiceSnapshot>();
    assert_send_sync::<mmv_core::ShardMap>();
    assert_send_sync::<UpdateLog>();
    assert_send_sync::<ViewService>();
    assert_send_sync::<BatchSender>();
    // The persistent shared-store types: snapshots physically share
    // entry pages, predicate indexes and trie nodes with the writer
    // across threads, so these must stay Send + Sync (no Rc, RefCell,
    // Cell, or raw-pointer sharing may slip into the store).
    assert_send_sync::<mmv_core::view::Entry>();
    assert_send_sync::<mmv_core::SharedVec<std::sync::Arc<mmv_core::view::Entry>>>();
    assert_send_sync::<mmv_core::SharedMap<mmv_core::Support, mmv_core::EntryId>>();
    assert_send_sync::<mmv_core::SharedMap<u64, Vec<mmv_core::EntryId>>>();
    assert_send_sync::<mmv_core::ShareStats>();
    assert_send_sync::<PublishStats>();
    // Observability: scrapers render and writers bump from arbitrary
    // threads, so the registry and its handles must stay Send + Sync.
    assert_send_sync::<MetricsRegistry>();
    assert_send_sync::<TraceRing>();
    assert_send_sync::<BatchTrace>();
    assert_send_sync::<mmv_obs::Counter>();
    assert_send_sync::<mmv_obs::Gauge>();
    assert_send_sync::<mmv_obs::Histogram>();
};
