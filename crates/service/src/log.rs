//! The append-only update log: every applied batch, in epoch order.
//!
//! The log is the service's recovery and audit story: replaying it onto
//! a freshly built view reproduces the writer's final state, because
//! batch application is deterministic (same database, same batches,
//! same order ⇒ syntactically equal view). The service tests pin
//! exactly that property, and the batch-vs-sequential equivalence
//! suite leans on it to compare maintenance strategies. Under a sharded
//! writer the guarantee covers sequentially applied batches (and
//! concurrent delete-only loads); insert-carrying batches applied
//! *concurrently* — whether racing on different lanes or on the same
//! one — may reserve their external tickets in a different order than
//! they publish, in which case the replayed view is instance-identical
//! but the opaque `External(t)` support tickets can be permuted.
//!
//! Besides applied batches, the log records writer-lane *recoveries*
//! ([`Recovery`]): a lane whose mutex was poisoned by a panicking batch
//! and was rebuilt from its last published shard snapshot.
//!
//! Durable sinks surface storage failures as [`StorageError`] —
//! attributed with the failing path and operation and classified
//! transient/persistent — and support *retraction*
//! ([`LogSink::retract`]): under group commit a record is mirrored
//! when its frame is appended, but the batch only publishes once the
//! frame is durable, so a failed durability wait rolls the mirror
//! back too (the WAL frame itself is truncated by the flusher).

use crate::snapshot::{Epoch, PublishStats};
use crate::wal::{StorageError, Wal};
use mmv_constraints::DomainResolver;
use mmv_core::batch::{apply_batch, BatchError, BatchStats, UpdateBatch};
use mmv_core::parser::{render_wal_batch, render_wal_payload, WalPayload};
use mmv_core::tp::{fixpoint, FixpointConfig, Operator};
use mmv_core::{ConstrainedDatabase, FixpointError, MaterializedView, SupportMode};
use std::sync::Arc;
use std::time::Duration;

/// One applied batch: what was applied, when (epoch), and what it cost.
#[derive(Debug, Clone)]
pub struct LogRecord {
    /// The epoch the batch produced (the snapshot published after it).
    pub epoch: Epoch,
    /// The batch itself.
    pub batch: UpdateBatch,
    /// Maintenance statistics of the application.
    pub stats: BatchStats,
    /// Wall-clock maintenance latency of the application.
    pub latency: Duration,
    /// Publication cost of the epoch (snapshot swap time, copied-vs-
    /// shared page counts).
    pub publish: PublishStats,
    /// How many writer lanes the batch touched (0 for an empty batch;
    /// ≥ 2 means a cross-shard two-phase publish).
    pub shards_touched: usize,
}

/// One writer-lane recovery: the lane's mutex was found poisoned (a
/// previous batch panicked mid-application), the poison was cleared,
/// and the lane's writer view was rebuilt from its last published
/// shard snapshot — so only the panicking batch was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// The recovered lane.
    pub shard: mmv_core::shard::ShardId,
    /// The shard epoch the lane was rebuilt to (its last published).
    pub epoch: Epoch,
}

/// Replay failure: rebuilding the base view or re-applying a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ReplayError {
    /// The base fixpoint could not be rebuilt.
    Fixpoint(FixpointError),
    /// A logged batch failed to re-apply at the given epoch.
    Batch(Epoch, BatchError),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Fixpoint(e) => write!(f, "replay base fixpoint: {e}"),
            ReplayError::Batch(epoch, e) => write!(f, "replay batch at epoch {epoch}: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplayError::Fixpoint(e) => Some(e),
            ReplayError::Batch(_, e) => Some(e),
        }
    }
}

/// Where the service's applied batches go: the in-memory [`UpdateLog`]
/// and the durable [`DurableLog`] share this interface, so the write
/// path is identical either way. The sink is called inside the
/// publication critical section — frames (for durable sinks) and
/// records append in global epoch order.
pub trait LogSink: Send {
    /// Appends one applied-batch record. `ticket_base` is the batch's
    /// reserved external-insertion ticket base, recorded so replay
    /// issues the same tickets. Durable sinks write the WAL frame
    /// *first* (write-ahead: an error leaves the in-memory mirror
    /// untouched and the batch unpublished) and return its LSN; the
    /// in-memory sink returns `None`.
    fn append(&mut self, record: LogRecord, ticket_base: u64) -> Result<Option<u64>, StorageError>;

    /// [`LogSink::append`] with batch-lifecycle tracing: a durable sink
    /// records the WAL-render and WAL-append stage times into `trace`;
    /// the in-memory sink just delegates (its append has no WAL stages).
    fn append_traced(
        &mut self,
        record: LogRecord,
        ticket_base: u64,
        trace: &mut mmv_obs::BatchTrace,
    ) -> Result<Option<u64>, StorageError> {
        let _ = &trace;
        self.append(record, ticket_base)
    }

    /// Removes the record appended at `epoch` again: the deferred
    /// group-commit durability wait failed after the record was
    /// already mirrored, and the batch is being rolled back. (The WAL
    /// frame itself is truncated by the flusher's give-up path; this
    /// only un-mirrors.)
    fn retract(&mut self, epoch: Epoch);

    /// Records a writer-lane recovery. `global_epoch` is the current
    /// global epoch (durable sinks use it as the WAL frame's epoch
    /// lower bound).
    fn record_recovery(&mut self, recovery: Recovery, global_epoch: Epoch);

    /// The in-memory mirror every sink maintains (what
    /// [`ViewService::log`][crate::ViewService::log] exposes).
    fn memory(&self) -> &UpdateLog;

    /// Detaches the in-memory mirror, leaving the sink empty — used
    /// when recovery upgrades the replay-time in-memory sink to a
    /// durable one without losing the replayed records.
    fn take_memory(&mut self) -> UpdateLog;
}

impl LogSink for UpdateLog {
    fn append(
        &mut self,
        record: LogRecord,
        _ticket_base: u64,
    ) -> Result<Option<u64>, StorageError> {
        UpdateLog::append(self, record);
        Ok(None)
    }

    fn retract(&mut self, epoch: Epoch) {
        UpdateLog::retract(self, epoch);
    }

    fn record_recovery(&mut self, recovery: Recovery, _global_epoch: Epoch) {
        UpdateLog::record_recovery(self, recovery);
    }

    fn memory(&self) -> &UpdateLog {
        self
    }

    fn take_memory(&mut self) -> UpdateLog {
        std::mem::take(self)
    }
}

/// The durable sink: every appended record is first written as a
/// [`WalPayload::Batch`] frame to the write-ahead log, then mirrored
/// in memory. Lane recoveries are journaled best-effort (the in-memory
/// record always lands; a WAL append failure only costs the audit
/// trail, never the lane recovery itself).
pub struct DurableLog {
    mem: UpdateLog,
    wal: Arc<Wal>,
}

impl DurableLog {
    /// A durable sink over `wal` with an empty in-memory mirror.
    pub(crate) fn new(wal: Arc<Wal>) -> Self {
        DurableLog {
            mem: UpdateLog::new(),
            wal,
        }
    }

    /// A durable sink adopting an existing in-memory mirror (the
    /// records recovery just replayed).
    pub(crate) fn with_memory(wal: Arc<Wal>, mem: UpdateLog) -> Self {
        DurableLog { mem, wal }
    }
}

impl std::fmt::Debug for DurableLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableLog")
            .field("records", &self.mem.len())
            .field("recoveries", &self.mem.recoveries().len())
            .finish()
    }
}

impl LogSink for DurableLog {
    fn append(&mut self, record: LogRecord, ticket_base: u64) -> Result<Option<u64>, StorageError> {
        let frame = render_wal_batch(record.epoch, ticket_base, &record.batch);
        let lsn = self.wal.append(record.epoch, &frame)?;
        self.mem.append(record);
        Ok(Some(lsn))
    }

    fn append_traced(
        &mut self,
        record: LogRecord,
        ticket_base: u64,
        trace: &mut mmv_obs::BatchTrace,
    ) -> Result<Option<u64>, StorageError> {
        let frame = trace.time(mmv_obs::Stage::WalRender, || {
            render_wal_batch(record.epoch, ticket_base, &record.batch)
        });
        let lsn = trace.time(mmv_obs::Stage::WalAppend, || {
            self.wal.append(record.epoch, &frame)
        })?;
        self.mem.append(record);
        Ok(Some(lsn))
    }

    fn retract(&mut self, epoch: Epoch) {
        self.mem.retract(epoch);
    }

    fn record_recovery(&mut self, recovery: Recovery, global_epoch: Epoch) {
        let payload = WalPayload::Recovery {
            shard: recovery.shard,
            epoch: recovery.epoch,
        };
        let _ = self.wal.append(global_epoch, &render_wal_payload(&payload));
        self.mem.record_recovery(recovery);
    }

    fn memory(&self) -> &UpdateLog {
        &self.mem
    }

    fn take_memory(&mut self) -> UpdateLog {
        std::mem::take(&mut self.mem)
    }
}

/// An append-only, in-memory log of applied batches and lane
/// recoveries.
#[derive(Debug, Clone, Default)]
pub struct UpdateLog {
    records: Vec<LogRecord>,
    recoveries: Vec<Recovery>,
}

impl UpdateLog {
    /// An empty log.
    pub fn new() -> Self {
        UpdateLog::default()
    }

    /// Appends a record. Records must arrive in ascending epoch order
    /// (the writer appends inside the publication critical section, so
    /// this is structural, not racy).
    pub fn append(&mut self, record: LogRecord) {
        debug_assert!(
            self.records.last().is_none_or(|r| r.epoch < record.epoch),
            "log epochs must ascend"
        );
        self.records.push(record);
    }

    /// Removes the record at `epoch`, if present — the rollback of a
    /// mirrored-but-never-durable batch. Searches from the back:
    /// retractions always target a recent epoch.
    pub fn retract(&mut self, epoch: Epoch) {
        if let Some(i) = self.records.iter().rposition(|r| r.epoch == epoch) {
            self.records.remove(i);
        }
    }

    /// Records a writer-lane recovery.
    pub fn record_recovery(&mut self, recovery: Recovery) {
        self.recoveries.push(recovery);
    }

    /// Lane recoveries, in occurrence order.
    pub fn recoveries(&self) -> &[Recovery] {
        &self.recoveries
    }

    /// Number of applied batches.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no batch has been applied yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in epoch order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Total updates (deletes + inserts) across all logged batches.
    pub fn total_updates(&self) -> usize {
        self.records.iter().map(|r| r.batch.len()).sum()
    }

    /// Replays the log onto a freshly built view: builds `op ↑ ω (∅)`
    /// of `db` in `mode`, then re-applies every logged batch in order.
    /// The result is syntactically equal to the writer's view at the
    /// last logged epoch — the recovery path after losing the
    /// materialized state.
    pub fn replay(
        &self,
        db: &ConstrainedDatabase,
        resolver: &dyn DomainResolver,
        op: Operator,
        mode: SupportMode,
        config: &FixpointConfig,
    ) -> Result<MaterializedView, ReplayError> {
        let (mut view, _) =
            fixpoint(db, resolver, op, mode, config).map_err(ReplayError::Fixpoint)?;
        for record in &self.records {
            apply_batch(db, &mut view, &record.batch, resolver, op, config)
                .map_err(|e| ReplayError::Batch(record.epoch, e))?;
        }
        Ok(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmv_constraints::{CmpOp, Constraint, NoDomains, Term, Var};
    use mmv_core::{BodyAtom, Clause, ConstrainedAtom};

    fn x() -> Term {
        Term::var(Var(0))
    }

    fn db() -> ConstrainedDatabase {
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "b",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(9),
                )),
            ),
            Clause::new(
                "a",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("b", vec![x()])],
            ),
        ])
    }

    fn point(v: i64) -> ConstrainedAtom {
        ConstrainedAtom::new("b", vec![x()], Constraint::eq(x(), Term::int(v)))
    }

    #[test]
    fn replay_reproduces_the_applied_sequence() {
        let db = db();
        let cfg = FixpointConfig::default();
        let (mut view, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &cfg,
        )
        .unwrap();
        let mut log = UpdateLog::new();
        for (epoch, batch) in [
            UpdateBatch::deleting(vec![point(3)]),
            UpdateBatch::deleting(vec![point(5)]).insert(point(12)),
        ]
        .into_iter()
        .enumerate()
        {
            let stats =
                apply_batch(&db, &mut view, &batch, &NoDomains, Operator::Tp, &cfg).unwrap();
            log.append(LogRecord {
                epoch: epoch as Epoch + 1,
                batch,
                stats,
                latency: Duration::ZERO,
                publish: PublishStats::default(),
                shards_touched: 1,
            });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.total_updates(), 3);
        let replayed = log
            .replay(
                &db,
                &NoDomains,
                Operator::Tp,
                SupportMode::WithSupports,
                &cfg,
            )
            .unwrap();
        assert!(replayed.syntactically_equal(&view));
    }
}
