//! The append-only update log: every applied batch, in epoch order.
//!
//! The log is the service's recovery and audit story: replaying it onto
//! a freshly built view reproduces the writer's final state, because
//! batch application is deterministic (same database, same batches,
//! same order ⇒ syntactically equal view). The service tests pin
//! exactly that property, and the batch-vs-sequential equivalence
//! suite leans on it to compare maintenance strategies. Under a sharded
//! writer the guarantee covers sequentially applied batches (and
//! concurrent delete-only loads); insert-carrying batches applied
//! *concurrently* — whether racing on different lanes or on the same
//! one — may reserve their external tickets in a different order than
//! they publish, in which case the replayed view is instance-identical
//! but the opaque `External(t)` support tickets can be permuted.
//!
//! Besides applied batches, the log records writer-lane *recoveries*
//! ([`Recovery`]): a lane whose mutex was poisoned by a panicking batch
//! and was rebuilt from its last published shard snapshot.

use crate::snapshot::{Epoch, PublishStats};
use mmv_constraints::DomainResolver;
use mmv_core::batch::{apply_batch, BatchError, BatchStats, UpdateBatch};
use mmv_core::tp::{fixpoint, FixpointConfig, Operator};
use mmv_core::{ConstrainedDatabase, FixpointError, MaterializedView, SupportMode};
use std::time::Duration;

/// One applied batch: what was applied, when (epoch), and what it cost.
#[derive(Debug, Clone)]
pub struct LogRecord {
    /// The epoch the batch produced (the snapshot published after it).
    pub epoch: Epoch,
    /// The batch itself.
    pub batch: UpdateBatch,
    /// Maintenance statistics of the application.
    pub stats: BatchStats,
    /// Wall-clock maintenance latency of the application.
    pub latency: Duration,
    /// Publication cost of the epoch (snapshot swap time, copied-vs-
    /// shared page counts).
    pub publish: PublishStats,
    /// How many writer lanes the batch touched (0 for an empty batch;
    /// ≥ 2 means a cross-shard two-phase publish).
    pub shards_touched: usize,
}

/// One writer-lane recovery: the lane's mutex was found poisoned (a
/// previous batch panicked mid-application), the poison was cleared,
/// and the lane's writer view was rebuilt from its last published
/// shard snapshot — so only the panicking batch was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// The recovered lane.
    pub shard: mmv_core::shard::ShardId,
    /// The shard epoch the lane was rebuilt to (its last published).
    pub epoch: Epoch,
}

/// Replay failure: rebuilding the base view or re-applying a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The base fixpoint could not be rebuilt.
    Fixpoint(FixpointError),
    /// A logged batch failed to re-apply at the given epoch.
    Batch(Epoch, BatchError),
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Fixpoint(e) => write!(f, "replay base fixpoint: {e}"),
            ReplayError::Batch(epoch, e) => write!(f, "replay batch at epoch {epoch}: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

/// An append-only, in-memory log of applied batches and lane
/// recoveries.
#[derive(Debug, Clone, Default)]
pub struct UpdateLog {
    records: Vec<LogRecord>,
    recoveries: Vec<Recovery>,
}

impl UpdateLog {
    /// An empty log.
    pub fn new() -> Self {
        UpdateLog::default()
    }

    /// Appends a record. Records must arrive in ascending epoch order
    /// (the writer appends inside the publication critical section, so
    /// this is structural, not racy).
    pub fn append(&mut self, record: LogRecord) {
        debug_assert!(
            self.records.last().is_none_or(|r| r.epoch < record.epoch),
            "log epochs must ascend"
        );
        self.records.push(record);
    }

    /// Records a writer-lane recovery.
    pub fn record_recovery(&mut self, recovery: Recovery) {
        self.recoveries.push(recovery);
    }

    /// Lane recoveries, in occurrence order.
    pub fn recoveries(&self) -> &[Recovery] {
        &self.recoveries
    }

    /// Number of applied batches.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no batch has been applied yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in epoch order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Total updates (deletes + inserts) across all logged batches.
    pub fn total_updates(&self) -> usize {
        self.records.iter().map(|r| r.batch.len()).sum()
    }

    /// Replays the log onto a freshly built view: builds `op ↑ ω (∅)`
    /// of `db` in `mode`, then re-applies every logged batch in order.
    /// The result is syntactically equal to the writer's view at the
    /// last logged epoch — the recovery path after losing the
    /// materialized state.
    pub fn replay(
        &self,
        db: &ConstrainedDatabase,
        resolver: &dyn DomainResolver,
        op: Operator,
        mode: SupportMode,
        config: &FixpointConfig,
    ) -> Result<MaterializedView, ReplayError> {
        let (mut view, _) =
            fixpoint(db, resolver, op, mode, config).map_err(ReplayError::Fixpoint)?;
        for record in &self.records {
            apply_batch(db, &mut view, &record.batch, resolver, op, config)
                .map_err(|e| ReplayError::Batch(record.epoch, e))?;
        }
        Ok(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmv_constraints::{CmpOp, Constraint, NoDomains, Term, Var};
    use mmv_core::{BodyAtom, Clause, ConstrainedAtom};

    fn x() -> Term {
        Term::var(Var(0))
    }

    fn db() -> ConstrainedDatabase {
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "b",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(9),
                )),
            ),
            Clause::new(
                "a",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("b", vec![x()])],
            ),
        ])
    }

    fn point(v: i64) -> ConstrainedAtom {
        ConstrainedAtom::new("b", vec![x()], Constraint::eq(x(), Term::int(v)))
    }

    #[test]
    fn replay_reproduces_the_applied_sequence() {
        let db = db();
        let cfg = FixpointConfig::default();
        let (mut view, _) = fixpoint(
            &db,
            &NoDomains,
            Operator::Tp,
            SupportMode::WithSupports,
            &cfg,
        )
        .unwrap();
        let mut log = UpdateLog::new();
        for (epoch, batch) in [
            UpdateBatch::deleting(vec![point(3)]),
            UpdateBatch::deleting(vec![point(5)]).insert(point(12)),
        ]
        .into_iter()
        .enumerate()
        {
            let stats =
                apply_batch(&db, &mut view, &batch, &NoDomains, Operator::Tp, &cfg).unwrap();
            log.append(LogRecord {
                epoch: epoch as Epoch + 1,
                batch,
                stats,
                latency: Duration::ZERO,
                publish: PublishStats::default(),
                shards_touched: 1,
            });
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.total_updates(), 3);
        let replayed = log
            .replay(
                &db,
                &NoDomains,
                Operator::Tp,
                SupportMode::WithSupports,
                &cfg,
            )
            .unwrap();
        assert!(replayed.syntactically_equal(&view));
    }
}
