//! The virtual filesystem under all durable storage: every byte the
//! WAL ([`crate::wal`]) or the checkpointer ([`crate::checkpoint`])
//! moves goes through a [`Vfs`], so storage failure modes are testable
//! without root, loop devices, or luck.
//!
//! [`StdVfs`] is the production implementation (thin delegation to
//! `std::fs`). [`FaultVfs`] wraps any inner `Vfs` and injects faults —
//! transient EIO, persistent EIO/ENOSPC, fsync failures, short (torn)
//! writes, and a full crash after the n-th operation — deterministically
//! from a seeded [`FaultPlan`], so every torture-suite failure replays
//! from its seed. Only *mutating* operations draw faults; reads are
//! left alone (recovery reads with [`StdVfs`] anyway).
//!
//! The injected error classes mirror the retry contract of
//! [`crate::wal::StorageError::is_transient`]: transient faults are
//! `ErrorKind::Interrupted` (absorbed by [`crate::RetryPolicy`]),
//! persistent ones are raw `EIO`/`ENOSPC` (surfaced, flipping the
//! service read-only until the fault heals).

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

/// The storage operation being attempted — attribution for
/// [`crate::wal::StorageError`] and the selector vocabulary for
/// scripted faults ([`OpSel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum StorageOp {
    /// Creating a file (WAL segment, checkpoint temp file).
    Create,
    /// Appending bytes to an open file.
    Append,
    /// `fdatasync` of a file.
    Fsync,
    /// fsync of a directory (making renames/creates durable).
    SyncDir,
    /// Renaming a file into place.
    Rename,
    /// Deleting a file (pruning).
    Remove,
    /// Truncating a file (torn-tail repair, rollback).
    Truncate,
    /// Reading a file.
    Read,
    /// Listing a directory.
    ReadDir,
}

impl fmt::Display for StorageOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StorageOp::Create => "create",
            StorageOp::Append => "append",
            StorageOp::Fsync => "fsync",
            StorageOp::SyncDir => "sync-dir",
            StorageOp::Rename => "rename",
            StorageOp::Remove => "remove",
            StorageOp::Truncate => "truncate",
            StorageOp::Read => "read",
            StorageOp::ReadDir => "read-dir",
        };
        f.write_str(name)
    }
}

/// An open file handle under a [`Vfs`]. Writes go to the end (all
/// mutable WAL/checkpoint files are append-shaped); `set_len` is the
/// torn-frame repair path.
pub trait VfsFile: Send + Sync {
    /// Appends all of `buf`.
    fn write_all(&self, buf: &[u8]) -> io::Result<()>;
    /// `fdatasync`.
    fn sync_data(&self) -> io::Result<()>;
    /// Truncates (or extends) to `len` bytes.
    fn set_len(&self, len: u64) -> io::Result<()>;
}

/// Every filesystem operation durable storage performs. Implementations
/// must be shareable across the writer, flusher, checkpointer, and
/// probe threads.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Creates `path`, failing with `AlreadyExists` if present, opened
    /// for appending.
    fn create_new_append(&self, path: &Path) -> io::Result<Arc<dyn VfsFile>>;
    /// Opens an existing `path` for appending (and truncation).
    fn open_append(&self, path: &Path) -> io::Result<Arc<dyn VfsFile>>;
    /// Creates or truncates `path` for writing (checkpoint temp files).
    fn create(&self, path: &Path) -> io::Result<Arc<dyn VfsFile>>;
    /// Reads the whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// The file names (not paths) inside `dir`.
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Deletes `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// fsyncs the directory itself, making entry changes durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Registers any counters this Vfs keeps into `registry`. The
    /// production [`StdVfs`] keeps none (default no-op); [`FaultVfs`]
    /// exposes its operation and injected-fault counters, so a durable
    /// service built over fault injection reports them in every scrape.
    fn register_metrics(&self, registry: &mmv_obs::MetricsRegistry) {
        let _ = registry;
    }
}

// ---------------------------------------------------------------------
// StdVfs

/// The production [`Vfs`]: `std::fs`, nothing else.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdVfs;

struct StdFile(File);

impl VfsFile for StdFile {
    fn write_all(&self, buf: &[u8]) -> io::Result<()> {
        (&self.0).write_all(buf)
    }

    fn sync_data(&self) -> io::Result<()> {
        self.0.sync_data()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.0.set_len(len)
    }
}

impl Vfs for StdVfs {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn create_new_append(&self, path: &Path) -> io::Result<Arc<dyn VfsFile>> {
        let f = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(path)?;
        Ok(Arc::new(StdFile(f)))
    }

    fn open_append(&self, path: &Path) -> io::Result<Arc<dyn VfsFile>> {
        let f = OpenOptions::new().append(true).open(path)?;
        Ok(Arc::new(StdFile(f)))
    }

    fn create(&self, path: &Path) -> io::Result<Arc<dyn VfsFile>> {
        Ok(Arc::new(StdFile(File::create(path)?)))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        Ok(names)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        File::open(dir)?.sync_all()
    }
}

// ---------------------------------------------------------------------
// FaultVfs

/// What a scripted or randomly drawn fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// A run of transient `EINTR`-class failures: the next `run`
    /// eligible operations (including the faulted one) fail with
    /// `ErrorKind::Interrupted` — the class [`crate::RetryPolicy`]
    /// absorbs.
    Transient {
        /// How many consecutive eligible operations fail.
        run: u32,
    },
    /// Persistent `EIO`: every mutating operation fails until
    /// [`FaultVfs::heal`].
    Eio,
    /// Persistent `ENOSPC`: every mutating operation fails until
    /// [`FaultVfs::heal`].
    Enospc,
    /// Persistent fsync failure: `sync_data`/`sync_dir` fail with `EIO`
    /// until [`FaultVfs::heal`]; other operations succeed. The classic
    /// "writes land, durability doesn't" device.
    FsyncFail,
    /// A short (torn) write: half the buffer reaches the file, then the
    /// write reports `ErrorKind::Interrupted`. One-shot.
    ShortWrite,
    /// Simulated crash: this and every later operation fail with `EIO`,
    /// freezing the directory as the crash image. Not healable.
    Crash,
}

/// Selects which operation a [`ScriptedFault`] fires on.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OpSel {
    /// The n-th fault-eligible operation overall (0-based).
    Nth(u64),
    /// The n-th operation of the given kind (0-based).
    NthOfKind(StorageOp, u64),
    /// Every operation whose path contains the substring, until
    /// [`FaultVfs::heal`].
    PathContains(String),
}

/// One scripted fault: fire `fault` at the operations `sel` selects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptedFault {
    /// Which operation(s) to fault.
    pub sel: OpSel,
    /// What happens there.
    pub fault: Fault,
}

/// A deterministic fault schedule: scripted faults checked first, then
/// a seeded random draw per eligible operation. All rates are per
/// mille (‰) of eligible operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The PRNG seed (splitmix64); the whole schedule is a pure
    /// function of the seed and the operation sequence.
    pub seed: u64,
    /// Rate of transient-run faults.
    pub transient_per_mille: u16,
    /// Longest transient run a draw can start (runs are 1..=this).
    pub max_transient_run: u32,
    /// Rate of one-shot short writes (write operations only).
    pub short_write_per_mille: u16,
    /// Rate of persistent faults (alternating EIO / ENOSPC).
    pub persistent_per_mille: u16,
    /// Rate of simulated crashes.
    pub crash_per_mille: u16,
    /// Scripted faults, checked before any random draw.
    pub scripted: Vec<ScriptedFault>,
}

impl FaultPlan {
    /// No faults at all (a transparent wrapper — useful to count ops).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            transient_per_mille: 0,
            max_transient_run: 1,
            short_write_per_mille: 0,
            persistent_per_mille: 0,
            crash_per_mille: 0,
            scripted: Vec::new(),
        }
    }

    /// The torture-suite default mix for `seed`: frequent transient
    /// runs (absorbed by retry), occasional short writes and persistent
    /// faults, no random crashes (the crash sweep scripts those
    /// explicitly via [`FaultPlan::script`]).
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            transient_per_mille: 40,
            max_transient_run: 2,
            short_write_per_mille: 15,
            persistent_per_mille: 8,
            crash_per_mille: 0,
            scripted: Vec::new(),
        }
    }

    /// Adds a scripted fault.
    pub fn script(mut self, sel: OpSel, fault: Fault) -> FaultPlan {
        self.scripted.push(ScriptedFault { sel, fault });
        self
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Counters a [`FaultVfs`] keeps (see [`FaultVfs::stats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Fault-eligible (mutating) operations seen.
    pub ops: u64,
    /// Operation indices at which a fault first fired (the crash sweep
    /// re-runs with a scripted crash at each of these).
    pub injected: Vec<u64>,
}

struct FaultState {
    rng: u64,
    ops: u64,
    /// Detached mirrors of `ops` / `injected.len()` for the metrics
    /// registry (readable without this mutex).
    m_ops: mmv_obs::Counter,
    m_injected: mmv_obs::Counter,
    kind_ops: [u64; 9],
    transient_left: u32,
    persistent: Option<Fault>,
    sync_down: bool,
    crashed: bool,
    flip: bool,
    injected: Vec<u64>,
    plan: FaultPlan,
}

/// A deterministic fault-injecting [`Vfs`] wrapper. See the module
/// docs; construct with [`FaultVfs::new`], script via [`FaultPlan`],
/// clear persistent faults with [`FaultVfs::heal`].
pub struct FaultVfs {
    inner: Arc<dyn Vfs>,
    state: Mutex<FaultState>,
}

impl fmt::Debug for FaultVfs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.lock();
        f.debug_struct("FaultVfs")
            .field("seed", &s.plan.seed)
            .field("ops", &s.ops)
            .field("injected", &s.injected.len())
            .field("crashed", &s.crashed)
            .finish()
    }
}

/// splitmix64: the one-liner PRNG behind the deterministic draws.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn op_index(op: StorageOp) -> usize {
    match op {
        StorageOp::Create => 0,
        StorageOp::Append => 1,
        StorageOp::Fsync => 2,
        StorageOp::SyncDir => 3,
        StorageOp::Rename => 4,
        StorageOp::Remove => 5,
        StorageOp::Truncate => 6,
        StorageOp::Read => 7,
        StorageOp::ReadDir => 8,
    }
}

fn eio() -> io::Error {
    io::Error::from_raw_os_error(5) // EIO
}

fn enospc() -> io::Error {
    io::Error::from_raw_os_error(28) // ENOSPC
}

fn transient_err() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "injected transient fault")
}

/// The decision for one eligible operation.
enum Verdict {
    Ok,
    Fail(io::Error),
    /// Write a prefix of the buffer, then fail.
    Short,
}

impl FaultVfs {
    /// Wraps `inner` with the fault schedule of `plan`.
    pub fn new(inner: Arc<dyn Vfs>, plan: FaultPlan) -> Arc<FaultVfs> {
        Arc::new(FaultVfs {
            inner,
            state: Mutex::new(FaultState {
                rng: plan.seed ^ 0xA076_1D64_78BD_642F,
                ops: 0,
                m_ops: mmv_obs::Counter::new(),
                m_injected: mmv_obs::Counter::new(),
                kind_ops: [0; 9],
                transient_left: 0,
                persistent: None,
                sync_down: false,
                crashed: false,
                flip: false,
                injected: Vec::new(),
                plan,
            }),
        })
    }

    fn lock(&self) -> MutexGuard<'_, FaultState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => {
                self.state.clear_poison();
                p.into_inner()
            }
        }
    }

    /// Clears persistent faults (EIO, ENOSPC, fsync-down, and
    /// `PathContains` scripts) — "the disk came back". A simulated
    /// crash is not healable.
    pub fn heal(&self) {
        let mut s = self.lock();
        s.persistent = None;
        s.sync_down = false;
        s.transient_left = 0;
        s.plan
            .scripted
            .retain(|f| !matches!(f.sel, OpSel::PathContains(_)));
    }

    /// Whether a simulated crash has fired (every later op fails; the
    /// directory is frozen as the crash image).
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Operation counters and the indices where faults fired.
    pub fn stats(&self) -> FaultStats {
        let s = self.lock();
        FaultStats {
            ops: s.ops,
            injected: s.injected.clone(),
        }
    }

    fn apply_fault(s: &mut FaultState, idx: u64, fault: Fault, is_write: bool) -> Verdict {
        s.injected.push(idx);
        s.m_injected.inc();
        match fault {
            Fault::Transient { run } => {
                s.transient_left = run.saturating_sub(1);
                Verdict::Fail(transient_err())
            }
            Fault::Eio => {
                s.persistent = Some(Fault::Eio);
                Verdict::Fail(eio())
            }
            Fault::Enospc => {
                s.persistent = Some(Fault::Enospc);
                Verdict::Fail(enospc())
            }
            Fault::FsyncFail => {
                s.sync_down = true;
                Verdict::Fail(eio())
            }
            Fault::ShortWrite if is_write => Verdict::Short,
            Fault::ShortWrite => Verdict::Fail(transient_err()),
            Fault::Crash => {
                s.crashed = true;
                Verdict::Fail(eio())
            }
        }
    }

    /// One eligible operation: advance the counters, consult the
    /// scripts, then the random bands.
    fn decide(&self, op: StorageOp, path: &Path) -> Verdict {
        let s = &mut *self.lock();
        let idx = s.ops;
        s.ops += 1;
        s.m_ops.inc();
        let kidx = op_index(op);
        let kop = s.kind_ops[kidx];
        s.kind_ops[kidx] += 1;
        if s.crashed {
            return Verdict::Fail(io::Error::new(
                eio().kind(),
                format!("simulated crash: {op} {}", path.display()),
            ));
        }
        let is_write = matches!(op, StorageOp::Append);
        let is_sync = matches!(op, StorageOp::Fsync | StorageOp::SyncDir);
        // Scripted faults outrank everything (they exist to pin a test
        // to an exact op).
        let scripted = s.plan.scripted.iter().find_map(|f| {
            let (hit, path_scoped) = match &f.sel {
                OpSel::Nth(n) => (*n == idx, false),
                OpSel::NthOfKind(k, n) => (*k == op && *n == kop, false),
                OpSel::PathContains(sub) => (path.to_string_lossy().contains(sub.as_str()), true),
            };
            hit.then_some((f.fault, path_scoped))
        });
        if let Some((fault, path_scoped)) = scripted {
            if !path_scoped {
                return Self::apply_fault(s, idx, fault, is_write);
            }
            // A path-scoped script faults only matching paths: the
            // script entry itself persists until heal(), so it must
            // not poison the global sticky state.
            s.injected.push(idx);
            s.m_injected.inc();
            return match fault {
                Fault::Enospc => Verdict::Fail(enospc()),
                Fault::Transient { .. } => Verdict::Fail(transient_err()),
                Fault::ShortWrite if is_write => Verdict::Short,
                Fault::ShortWrite => Verdict::Fail(transient_err()),
                Fault::Crash => {
                    s.crashed = true;
                    Verdict::Fail(eio())
                }
                Fault::Eio | Fault::FsyncFail => Verdict::Fail(eio()),
            };
        }
        if let Some(p) = s.persistent {
            return Verdict::Fail(match p {
                Fault::Enospc => enospc(),
                _ => eio(),
            });
        }
        if s.sync_down && is_sync {
            return Verdict::Fail(eio());
        }
        if s.transient_left > 0 {
            s.transient_left -= 1;
            return Verdict::Fail(transient_err());
        }
        let plan = s.plan.clone();
        let draw = (splitmix64(&mut s.rng) % 1000) as u16;
        let mut band = 0u16;
        let mut in_band = |rate: u16| {
            band += rate;
            draw < band
        };
        if in_band(plan.crash_per_mille) {
            return Self::apply_fault(s, idx, Fault::Crash, is_write);
        }
        if in_band(plan.persistent_per_mille) {
            // Alternate the two persistent classes deterministically.
            s.flip = !s.flip;
            let fault = if s.flip { Fault::Eio } else { Fault::Enospc };
            return Self::apply_fault(s, idx, fault, is_write);
        }
        if in_band(plan.short_write_per_mille) && is_write {
            return Self::apply_fault(s, idx, Fault::ShortWrite, is_write);
        }
        if in_band(plan.transient_per_mille) {
            let run =
                1 + (splitmix64(&mut s.rng) % u64::from(plan.max_transient_run.max(1))) as u32;
            return Self::apply_fault(s, idx, Fault::Transient { run }, is_write);
        }
        Verdict::Ok
    }

    fn gate(&self, op: StorageOp, path: &Path) -> io::Result<()> {
        match self.decide(op, path) {
            Verdict::Ok => Ok(()),
            Verdict::Fail(e) => Err(e),
            // Short writes only make sense on writes; elsewhere they
            // degrade to a plain transient failure.
            Verdict::Short => Err(transient_err()),
        }
    }
}

struct FaultFile {
    vfs: Arc<FaultVfs>,
    inner: Arc<dyn VfsFile>,
    path: PathBuf,
}

impl VfsFile for FaultFile {
    fn write_all(&self, buf: &[u8]) -> io::Result<()> {
        match self.vfs.decide(StorageOp::Append, &self.path) {
            Verdict::Ok => self.inner.write_all(buf),
            Verdict::Fail(e) => Err(e),
            Verdict::Short => {
                // Half the frame lands — the torn write the repair
                // path (truncate-to-start) must clean up.
                self.inner.write_all(&buf[..buf.len() / 2])?;
                Err(transient_err())
            }
        }
    }

    fn sync_data(&self) -> io::Result<()> {
        self.vfs.gate(StorageOp::Fsync, &self.path)?;
        self.inner.sync_data()
    }

    fn set_len(&self, len: u64) -> io::Result<()> {
        self.vfs.gate(StorageOp::Truncate, &self.path)?;
        self.inner.set_len(len)
    }
}

/// `Vfs` for `Arc<FaultVfs>` so the wrapper can hand clones of itself
/// to the files it opens.
impl Vfs for Arc<FaultVfs> {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        // Directory creation happens once at open; not fault-eligible.
        self.inner.create_dir_all(dir)
    }

    fn create_new_append(&self, path: &Path) -> io::Result<Arc<dyn VfsFile>> {
        self.gate(StorageOp::Create, path)?;
        let f = self.inner.create_new_append(path)?;
        Ok(Arc::new(FaultFile {
            vfs: self.clone(),
            inner: f,
            path: path.to_path_buf(),
        }))
    }

    fn open_append(&self, path: &Path) -> io::Result<Arc<dyn VfsFile>> {
        self.gate(StorageOp::Create, path)?;
        let f = self.inner.open_append(path)?;
        Ok(Arc::new(FaultFile {
            vfs: self.clone(),
            inner: f,
            path: path.to_path_buf(),
        }))
    }

    fn create(&self, path: &Path) -> io::Result<Arc<dyn VfsFile>> {
        self.gate(StorageOp::Create, path)?;
        let f = self.inner.create(path)?;
        Ok(Arc::new(FaultFile {
            vfs: self.clone(),
            inner: f,
            path: path.to_path_buf(),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.read_dir_names(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate(StorageOp::Rename, to)?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.gate(StorageOp::Remove, path)?;
        self.inner.remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.gate(StorageOp::SyncDir, dir)?;
        self.inner.sync_dir(dir)
    }

    fn register_metrics(&self, registry: &mmv_obs::MetricsRegistry) {
        let s = self.lock();
        registry.register_counter(
            "mmv_vfs_fault_ops_total",
            "Fault-eligible storage operations seen by the FaultVfs",
            &[],
            &s.m_ops,
        );
        registry.register_counter(
            "mmv_vfs_faults_injected_total",
            "Storage faults the FaultVfs injected",
            &[],
            &s.m_injected,
        );
        self.inner.register_metrics(registry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mmv-vfs-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn std_vfs_round_trips() {
        let dir = tmpdir("std");
        let vfs = StdVfs;
        let f = vfs.create_new_append(&dir.join("a")).unwrap();
        f.write_all(b"hello ").unwrap();
        f.write_all(b"world").unwrap();
        f.sync_data().unwrap();
        vfs.sync_dir(&dir).unwrap();
        assert_eq!(vfs.read(&dir.join("a")).unwrap(), b"hello world");
        f.set_len(5).unwrap();
        assert_eq!(vfs.read(&dir.join("a")).unwrap(), b"hello");
        vfs.rename(&dir.join("a"), &dir.join("b")).unwrap();
        assert_eq!(vfs.read_dir_names(&dir).unwrap(), vec!["b".to_string()]);
        vfs.remove_file(&dir.join("b")).unwrap();
        assert!(vfs.read_dir_names(&dir).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fault_plans_are_deterministic() {
        let dir = tmpdir("det");
        let run = || {
            let vfs = FaultVfs::new(Arc::new(StdVfs), FaultPlan::seeded(42));
            let mut outcomes = Vec::new();
            for i in 0..200 {
                let path = dir.join(format!("f{i}"));
                let r = vfs.create(&path).and_then(|f| {
                    f.write_all(b"x")?;
                    f.sync_data()
                });
                outcomes.push(r.is_ok());
                let _ = std::fs::remove_file(&path);
            }
            (outcomes, vfs.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert!(!sa.injected.is_empty(), "the default mix injects faults");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scripted_faults_fire_and_heal() {
        let dir = tmpdir("script");
        let plan = FaultPlan::none()
            .script(OpSel::NthOfKind(StorageOp::Append, 1), Fault::Enospc)
            .script(OpSel::PathContains("ckpt".into()), Fault::Eio);
        let vfs = FaultVfs::new(Arc::new(StdVfs), plan);
        assert!(vfs.create(&dir.join("x.ckpt")).is_err(), "path script");
        let f = vfs.create(&dir.join("plain")).unwrap();
        f.write_all(b"first").unwrap();
        let err = f.write_all(b"second").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28), "ENOSPC");
        // ENOSPC is persistent: everything fails until heal().
        assert!(f.write_all(b"third").is_err());
        assert!(vfs.sync_dir(&dir).is_err());
        vfs.heal();
        f.write_all(b"fourth").unwrap();
        assert!(vfs.create(&dir.join("y.ckpt")).is_ok(), "script healed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_freezes_the_image() {
        let dir = tmpdir("crash");
        let plan = FaultPlan::none().script(OpSel::Nth(2), Fault::Crash);
        let vfs = FaultVfs::new(Arc::new(StdVfs), plan);
        let f = vfs.create(&dir.join("a")).unwrap(); // op 0
        f.write_all(b"durable").unwrap(); // op 1
        assert!(f.write_all(b" lost").is_err()); // op 2: crash
        assert!(vfs.crashed());
        assert!(f.sync_data().is_err());
        assert!(vfs.create(&dir.join("b")).is_err());
        vfs.heal();
        assert!(vfs.crashed(), "a crash is not healable");
        assert_eq!(std::fs::read(dir.join("a")).unwrap(), b"durable");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_writes_leave_a_prefix() {
        let dir = tmpdir("short");
        let plan =
            FaultPlan::none().script(OpSel::NthOfKind(StorageOp::Append, 0), Fault::ShortWrite);
        let vfs = FaultVfs::new(Arc::new(StdVfs), plan);
        let f = vfs.create(&dir.join("a")).unwrap();
        let err = f.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted, "transient class");
        assert_eq!(std::fs::read(dir.join("a")).unwrap(), b"01234");
        f.write_all(b"ok").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
