//! The concurrent view service: per-predicate writer lanes, many
//! snapshot readers.
//!
//! # Concurrency model
//!
//! The clause dependency graph partitions the database's predicates
//! into independent groups ([`ShardMap`]); the service gives each group
//! its own **writer lane** — a mutable shard view plus a shard epoch,
//! guarded by the lane's own `Mutex` — and each lane maintains its
//! slice of the view with the sub-database of its own clauses (original
//! clause numbering preserved, so supports are identical to the
//! unsharded run). Batches that touch one shard take only that lane's
//! lock, so updates to independent predicates maintain concurrently;
//! cross-shard batches acquire their lanes in canonical (ascending
//! shard id) order, which makes lane deadlock impossible.
//!
//! Publication is **two-phase**: after maintenance, each touched lane's
//! view is frozen into a per-shard [`ViewSnapshot`] (phase one, an
//! `Arc`-bump clone under the CoW store), and then all of them are
//! swapped into the published table inside one critical section of a
//! small publication lock, which also advances the global epoch (phase
//! two). Readers call [`ViewService::snapshot`], which clones the whole
//! table under the same lock into a composite [`ServiceSnapshot`] —
//! so a reader observes either none or all of a cross-shard batch's
//! shard snapshots, never a torn multi-shard epoch. Queries then run
//! entirely on the caller's own handles, unsynchronized: readers are
//! never blocked by maintenance and never observe a half-applied batch.
//! The global epoch (one tick per batch) and every shard epoch (one
//! tick per batch touching the shard) increase monotonically.
//!
//! # Failure semantics
//!
//! A batch that fails with an error publishes nothing: every locked
//! lane's writer view is restored from its last published shard
//! snapshot (an `Arc` re-adoption, not a rebuild) and the batch is
//! rejected with [`ServiceError::Batch`].
//!
//! A batch that *panics* mid-application poisons the mutexes of the
//! lanes it held. Poison is not fatal and not contagious: the other
//! lanes keep accepting batches and readers keep being served from the
//! published table throughout. The next `apply` that routes a batch to
//! a poisoned lane recovers it — the poison is cleared, the lane's
//! writer view is rebuilt from its last published shard snapshot, and a
//! [`Recovery`] record is logged — so exactly the panicking batch is
//! lost, and the service keeps serving and accepting batches on every
//! lane. (Historically the writer was a single lane whose poisoned lock
//! made every later call panic; the per-lane recovery above replaced
//! that.)

use crate::log::{LogRecord, Recovery, UpdateLog};
use crate::snapshot::{Epoch, PublishStats, ServiceSnapshot, ViewSnapshot};
use mmv_constraints::solver::SolverConfig;
use mmv_constraints::{DomainResolver, Value};
use mmv_core::batch::{apply_batch_ticketed, BatchError, BatchStats, UpdateBatch};
use mmv_core::shard::{ShardId, ShardMap, ShardSpec};
use mmv_core::tp::{fixpoint, FixpointConfig, FixpointError, Operator};
use mmv_core::view::ShareStats;
use mmv_core::{ConstrainedDatabase, InstanceError, MaterializedView, SupportMode};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// A resolver the service can share across reader and writer threads.
pub type SharedResolver = Arc<dyn DomainResolver + Send + Sync>;

/// A fault-injection hook: called with the shard id right before each
/// per-lane maintenance step. Tests install one that panics to exercise
/// the poisoned-lane recovery path.
pub type FaultHook = Box<dyn FnMut(ShardId) + Send>;

/// Service failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Building the initial view failed.
    Build(FixpointError),
    /// Applying a batch failed; every touched lane was rolled back and
    /// nothing was published.
    Batch(BatchError),
    /// The worker channel is closed (the worker already shut down).
    WorkerGone,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Build(e) => write!(f, "service build: {e}"),
            ServiceError::Batch(e) => write!(f, "service batch: {e}"),
            ServiceError::WorkerGone => write!(f, "service worker has shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The outcome of one applied batch.
#[derive(Debug, Clone, Copy)]
pub struct Applied {
    /// The global epoch the batch produced.
    pub epoch: Epoch,
    /// Maintenance statistics (merged across the touched shards).
    pub stats: BatchStats,
    /// Wall-clock maintenance latency (excluding snapshot publication).
    pub latency: std::time::Duration,
    /// Publication cost: the two-phase freeze-and-swap time and the
    /// batch's copied-vs-shared page accounting over touched shards.
    pub publish: PublishStats,
    /// Writer lanes the batch touched (≥ 2: a cross-shard publish).
    pub shards_touched: usize,
}

/// One writer lane's mutable state.
struct LaneState {
    view: MaterializedView,
    epoch: Epoch,
}

/// The published table: one frozen snapshot per shard plus the global
/// epoch, swapped together under the publication lock. The composite
/// is prebuilt here at publish time so a reader's
/// [`ViewService::snapshot`] is a single `Arc` clone, not an O(shards)
/// assembly under the read lock.
struct Published {
    shards: Vec<Arc<ViewSnapshot>>,
    epoch: Epoch,
    composite: Arc<ServiceSnapshot>,
}

/// Locks a mutex whose guarded state a panic can never leave torn
/// (counters, append-only logs, the hook slot): a poisoned guard is
/// recovered as-is.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => {
            m.clear_poison();
            p.into_inner()
        }
    }
}

/// A batch's reserved external-insertion ticket range, rolled back on
/// drop unless committed. The rollback covers every way maintenance
/// can fail to publish — an error return *or a panic unwinding out of
/// `apply`* — so the global counter stays in step with what
/// [`UpdateLog::replay`] will draw (a panicked batch must not burn
/// tickets: its lanes recover to the pre-batch published state). The
/// rollback is conditional on nothing having interleaved, which makes
/// it exact under sequential use — the scope of the replay guarantee
/// (see `crate::log`).
struct TicketReservation<'a> {
    counter: &'a Mutex<u64>,
    base: u64,
    n: u64,
    committed: bool,
}

impl<'a> TicketReservation<'a> {
    fn reserve(counter: &'a Mutex<u64>, n: u64) -> Self {
        let mut t = lock_clean(counter);
        let base = *t;
        *t += n;
        TicketReservation {
            counter,
            base,
            n,
            committed: false,
        }
    }

    /// Marks the tickets as consumed — called once the batch's shard
    /// snapshots are published (the point of no return).
    fn commit(mut self) {
        self.committed = true;
    }
}

impl Drop for TicketReservation<'_> {
    fn drop(&mut self) {
        if self.committed || self.n == 0 {
            return;
        }
        let mut t = lock_clean(self.counter);
        if *t == self.base + self.n {
            *t = self.base;
        }
    }
}

/// A long-lived concurrent view service over one constrained database.
///
/// Construct with [`ViewService::build`] (one writer lane per clause
/// dependency component) or [`ViewService::build_with_shards`], share
/// behind an `Arc`, read via [`ViewService::snapshot`] from any thread,
/// and write via [`ViewService::apply`] (directly, or through a
/// [`ServiceWorker`][crate::ServiceWorker]).
pub struct ViewService {
    db: ConstrainedDatabase,
    resolver: SharedResolver,
    op: Operator,
    config: FixpointConfig,
    shards: Arc<ShardMap>,
    /// Per lane: the sub-database of the shard's clauses.
    lane_dbs: Vec<ConstrainedDatabase>,
    lanes: Vec<Mutex<LaneState>>,
    published: RwLock<Published>,
    log: Mutex<UpdateLog>,
    /// Global external-insertion ticket counter: each batch reserves
    /// one ticket per insertion request, so a split batch issues the
    /// same tickets the unsplit batch would.
    tickets: Mutex<u64>,
    /// Cheap "a fault hook is installed" flag so the hot write path
    /// never touches the hook mutex (a cross-lane serialization point)
    /// outside of tests.
    fault_armed: AtomicBool,
    fault: Mutex<Option<FaultHook>>,
}

impl fmt::Debug for ViewService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("ViewService")
            .field("epoch", &snap.epoch())
            .field("shards", &snap.shard_count())
            .field("entries", &snap.len())
            .field("mode", &snap.mode())
            .finish()
    }
}

impl ViewService {
    /// Builds the initial materialized view (`op ↑ ω (∅)` of `db` in
    /// `mode`), partitions it into one writer lane per clause
    /// dependency component, and publishes the composite as global
    /// epoch 0 (every shard at shard epoch 0).
    pub fn build(
        db: ConstrainedDatabase,
        resolver: SharedResolver,
        op: Operator,
        mode: SupportMode,
        config: FixpointConfig,
    ) -> Result<Self, ServiceError> {
        Self::build_with_shards(db, resolver, op, mode, config, ShardSpec::auto())
    }

    /// [`ViewService::build`] with an explicit shard layout —
    /// [`ShardSpec::at_most`] caps the lane count (components are
    /// merged, balanced by predicate count), and
    /// [`ShardSpec::single_lane`] restores the one-writer-lock layout.
    pub fn build_with_shards(
        db: ConstrainedDatabase,
        resolver: SharedResolver,
        op: Operator,
        mode: SupportMode,
        config: FixpointConfig,
        spec: ShardSpec,
    ) -> Result<Self, ServiceError> {
        let (mut view, _) =
            fixpoint(&db, resolver.as_ref(), op, mode, &config).map_err(ServiceError::Build)?;
        let shards = Arc::new(ShardMap::from_db(&db, &spec));
        // Split the built view into per-shard views: each lane re-hosts
        // its predicates' entries (supports and children metadata moved
        // verbatim — clause numbering is global, so they stay valid
        // against the lane's restricted sub-database). A single lane
        // adopts the built view as-is.
        let lane_views: Vec<MaterializedView> = if shards.is_single() {
            vec![view]
        } else {
            let gen = view.var_gen_mut().clone();
            let mut lane_views: Vec<MaterializedView> = (0..shards.num_shards())
                .map(|_| MaterializedView::new(mode, gen.clone()))
                .collect();
            for (_, e) in view.live_entries() {
                let s = shards.shard_of(&e.atom.pred);
                lane_views[s].insert(e.atom.clone(), e.support.clone(), e.children_args.clone());
            }
            lane_views
        };
        let lane_dbs: Vec<ConstrainedDatabase> = (0..shards.num_shards())
            .map(|s| shards.restrict_db(&db, s))
            .collect();
        let mut published = Vec::with_capacity(lane_views.len());
        let mut lanes = Vec::with_capacity(lane_views.len());
        for lane_view in lane_views {
            // The lane adopts a structurally-shared clone of the
            // published shard snapshot (a few Arc bumps).
            let snapshot = Arc::new(ViewSnapshot::new(0, lane_view));
            lanes.push(Mutex::new(LaneState {
                view: snapshot.view().clone(),
                epoch: 0,
            }));
            published.push(snapshot);
        }
        let composite = Arc::new(ServiceSnapshot::new(0, published.clone(), shards.clone()));
        Ok(ViewService {
            db,
            resolver,
            op,
            config,
            shards,
            lane_dbs,
            lanes,
            published: RwLock::new(Published {
                shards: published,
                epoch: 0,
                composite,
            }),
            log: Mutex::new(UpdateLog::new()),
            tickets: Mutex::new(0),
            fault_armed: AtomicBool::new(false),
            fault: Mutex::new(None),
        })
    }

    /// The database the service maintains the view of.
    pub fn db(&self) -> &ConstrainedDatabase {
        &self.db
    }

    /// The service's shared resolver.
    pub fn resolver(&self) -> &SharedResolver {
        &self.resolver
    }

    /// The fixpoint configuration batches are applied under.
    pub fn config(&self) -> &FixpointConfig {
        &self.config
    }

    /// The predicate → writer-lane partition.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shards
    }

    /// Installs (or clears) the fault-injection hook called with the
    /// shard id right before each per-lane maintenance step. Test
    /// support: a hook that panics exercises exactly the mid-batch
    /// writer panic the poisoned-lane recovery exists for.
    pub fn set_fault_hook(&self, hook: Option<FaultHook>) {
        self.fault_armed.store(hook.is_some(), Ordering::Release);
        *lock_clean(&self.fault) = hook;
    }

    /// The publication table, poison-recovered: the write section only
    /// swaps `Arc`s and bumps counters, so a panic can interrupt but
    /// never tear it.
    fn read_published(&self) -> RwLockReadGuard<'_, Published> {
        match self.published.read() {
            Ok(g) => g,
            Err(p) => {
                self.published.clear_poison();
                p.into_inner()
            }
        }
    }

    /// Write side of [`ViewService::read_published`], same recovery.
    fn write_published(&self) -> RwLockWriteGuard<'_, Published> {
        match self.published.write() {
            Ok(g) => g,
            Err(p) => {
                self.published.clear_poison();
                p.into_inner()
            }
        }
    }

    /// Locks one writer lane, recovering it if a previous batch's panic
    /// poisoned the mutex: the poison is cleared, the lane's writer
    /// view re-adopts its last published shard snapshot (dropping
    /// whatever the panicking batch half-applied), and the recovery is
    /// logged. Lanes must be locked in ascending shard order.
    fn lock_lane(&self, shard: ShardId) -> MutexGuard<'_, LaneState> {
        match self.lanes[shard].lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.lanes[shard].clear_poison();
                let mut g = poisoned.into_inner();
                let snap = self.read_published().shards[shard].clone();
                g.view = snap.view().clone();
                g.epoch = snap.epoch();
                lock_clean(&self.log).record_recovery(Recovery {
                    shard,
                    epoch: snap.epoch(),
                });
                g
            }
        }
    }

    /// The current composite snapshot, prebuilt at publish time. The
    /// publication lock is held only for one `Arc` clone; all queries
    /// on the returned snapshot run without any synchronization with
    /// the writer lanes.
    pub fn snapshot(&self) -> Arc<ServiceSnapshot> {
        self.read_published().composite.clone()
    }

    /// The global epoch of the current published state.
    pub fn epoch(&self) -> Epoch {
        self.read_published().epoch
    }

    /// Applies one batch as a transaction: split it by shard, lock the
    /// touched lanes in canonical order, maintain each lane's view with
    /// its own sub-database, then publish all touched shard snapshots
    /// atomically (two-phase publish) and append to the log. Batches on
    /// disjoint shards run concurrently; readers are never blocked.
    ///
    /// On error every touched lane's writer view is restored from its
    /// published shard snapshot and nothing is published or logged —
    /// the failed batch is simply rejected.
    pub fn apply(&self, batch: UpdateBatch) -> Result<Applied, ServiceError> {
        // Route the batch. The common case — every request in one
        // shard (always true single-lane) — borrows the batch as-is;
        // only genuinely cross-shard batches pay the split's per-atom
        // clones.
        let touched: std::collections::BTreeSet<ShardId> = batch
            .deletes
            .iter()
            .chain(&batch.inserts)
            .map(|a| self.shards.shard_of(&a.pred))
            .collect();
        let whole_positions: Vec<usize> = (0..batch.inserts.len()).collect();
        let split_parts;
        // Per touched shard, ascending: its slice of the batch and the
        // original positions of its insertions (the ticket offsets).
        let parts: Vec<(ShardId, &UpdateBatch, &[usize])> = if touched.len() <= 1 {
            touched
                .iter()
                .map(|&s| (s, &batch, whole_positions.as_slice()))
                .collect()
        } else {
            split_parts = self.shards.split(&batch);
            split_parts
                .iter()
                .map(|p| (p.shard, &p.batch, p.insert_positions.as_slice()))
                .collect()
        };
        // Reserve the batch's external-insertion tickets: one per
        // request, globally ordered, so shard-split insertion supports
        // match the single-lane (and log-replay) numbering. The RAII
        // reservation rolls the counter back if the batch errors or
        // panics before publication.
        let reservation = TicketReservation::reserve(&self.tickets, batch.inserts.len() as u64);
        let ticket_base = reservation.base;
        // Lock the touched lanes in ascending shard order (parts are
        // sorted) — the canonical order that makes deadlock impossible.
        let mut guards: Vec<(ShardId, MutexGuard<'_, LaneState>)> = parts
            .iter()
            .map(|&(s, _, _)| (s, self.lock_lane(s)))
            .collect();
        let befores: Vec<ShareStats> = guards.iter().map(|(_, g)| g.view.share_stats()).collect();

        let start = Instant::now();
        let mut stats = BatchStats::empty();
        for (&(shard, part_batch, positions), (_, guard)) in parts.iter().zip(guards.iter_mut()) {
            // Fault injection (tests): may panic, poisoning every lane
            // this call still holds — exactly a mid-batch writer panic.
            // The armed flag keeps the hot path off the shared hook
            // mutex when no hook is installed.
            if self.fault_armed.load(Ordering::Acquire) {
                if let Some(hook) = lock_clean(&self.fault).as_mut() {
                    hook(shard);
                }
            }
            let tickets: Vec<u64> = positions.iter().map(|&i| ticket_base + i as u64).collect();
            match apply_batch_ticketed(
                &self.lane_dbs[shard],
                &mut guard.view,
                part_batch,
                &tickets,
                self.resolver.as_ref(),
                self.op,
                &self.config,
            ) {
                Ok(s) => stats.absorb(&s),
                Err(e) => {
                    // Roll back every touched lane — the failing part
                    // may have half-applied, and earlier parts must not
                    // outlive a rejected transaction. Re-adopting the
                    // published handles is a few Arc bumps.
                    {
                        let p = self.read_published();
                        for (s, g) in guards.iter_mut() {
                            g.view = p.shards[*s].view().clone();
                        }
                    }
                    // `reservation` drops here, un-reserving the
                    // tickets (exact under sequential use).
                    return Err(ServiceError::Batch(e));
                }
            }
        }
        let latency = start.elapsed();
        let shards_touched = parts.len();
        drop(parts); // releases the borrow of `batch` for the log record

        // ---- Two-phase publish -----------------------------------------
        // Phase one: freeze each touched lane into its next shard
        // snapshot (Arc bumps under the shared store, O(touched)).
        let publish_start = Instant::now();
        let mut publish = PublishStats::default();
        let mut frozen: Vec<(ShardId, Arc<ViewSnapshot>)> = Vec::with_capacity(guards.len());
        for ((shard, guard), before) in guards.iter_mut().zip(&befores) {
            guard.epoch += 1;
            let after = guard.view.share_stats();
            publish.entry_pages_copied += after.entry_pages_copied - before.entry_pages_copied;
            publish.entry_pages_total += after.entry_pages;
            publish.pred_indexes_copied += after.pred_indexes_copied - before.pred_indexes_copied;
            publish.pred_indexes_total += after.pred_indexes;
            frozen.push((
                *shard,
                Arc::new(ViewSnapshot::new(guard.epoch, guard.view.clone())),
            ));
        }
        // Phase two: swap all touched shards and advance the global
        // epoch inside one publication critical section — readers see
        // the whole batch or none of it. The log record is appended in
        // the same section so epochs append in order even when disjoint
        // batches publish concurrently.
        let epoch = {
            let mut p = self.write_published();
            for (shard, snapshot) in frozen {
                p.shards[shard] = snapshot;
            }
            p.epoch += 1;
            // The swap is the point of no return: the published state
            // now contains the batch's tickets, so they stay consumed.
            reservation.commit();
            p.composite = Arc::new(ServiceSnapshot::new(
                p.epoch,
                p.shards.clone(),
                self.shards.clone(),
            ));
            stats.view_entries = p.shards.iter().map(|s| s.len()).sum();
            publish.publish_latency = publish_start.elapsed();
            lock_clean(&self.log).append(LogRecord {
                epoch: p.epoch,
                batch,
                stats,
                latency,
                publish,
                shards_touched,
            });
            p.epoch
        };
        Ok(Applied {
            epoch,
            stats,
            latency,
            publish,
            shards_touched,
        })
    }

    /// Clones the update log (epoch-ordered records of every applied
    /// batch, plus lane recoveries) for replay or inspection.
    pub fn log(&self) -> UpdateLog {
        lock_clean(&self.log).clone()
    }

    /// Convenience read: query the *current* snapshot with the
    /// service's own resolver.
    pub fn query(
        &self,
        pred: &str,
        pattern: &[Option<Value>],
        config: &SolverConfig,
    ) -> Result<BTreeSet<Vec<Value>>, InstanceError> {
        self.snapshot()
            .query(pred, pattern, self.resolver.as_ref(), config)
    }

    /// Convenience read: boolean query against the current snapshot.
    pub fn ask(
        &self,
        pred: &str,
        args: &[Value],
        config: &SolverConfig,
    ) -> Result<bool, InstanceError> {
        self.snapshot()
            .ask(pred, args, self.resolver.as_ref(), config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmv_constraints::{CmpOp, Constraint, NoDomains, Term, Var};
    use mmv_core::{BodyAtom, Clause, ConstrainedAtom};

    fn x() -> Term {
        Term::var(Var(0))
    }

    fn db() -> ConstrainedDatabase {
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "b",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(9),
                )),
            ),
            Clause::new(
                "a",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("b", vec![x()])],
            ),
        ])
    }

    fn point(v: i64) -> ConstrainedAtom {
        ConstrainedAtom::new("b", vec![x()], Constraint::eq(x(), Term::int(v)))
    }

    fn service(mode: SupportMode) -> ViewService {
        ViewService::build(
            db(),
            Arc::new(NoDomains),
            Operator::Tp,
            mode,
            FixpointConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn snapshots_are_epoch_tagged_and_isolated() {
        let svc = service(SupportMode::WithSupports);
        let before = svc.snapshot();
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.shard_count(), 1, "b and a share a component");
        let cfg = SolverConfig::default();
        assert!(before.ask("a", &[Value::int(3)], &NoDomains, &cfg).unwrap());

        let applied = svc
            .apply(UpdateBatch::deleting(vec![point(3)]))
            .expect("batch applies");
        assert_eq!(applied.epoch, 1);
        assert_eq!(applied.shards_touched, 1);
        assert_eq!(svc.epoch(), 1);
        // The old snapshot still answers with the pre-batch state.
        assert!(before.ask("a", &[Value::int(3)], &NoDomains, &cfg).unwrap());
        // The new snapshot reflects the deletion.
        assert!(!svc.ask("a", &[Value::int(3)], &cfg).unwrap());
        assert!(svc.query("a", &[Some(Value::int(4))], &cfg).unwrap().len() == 1);
    }

    #[test]
    fn exhausted_build_budget_is_a_build_error() {
        let svc = ViewService::build(
            db(),
            Arc::new(NoDomains),
            Operator::Tp,
            SupportMode::WithSupports,
            FixpointConfig {
                max_iterations: 0,
                ..FixpointConfig::default()
            },
        );
        assert!(matches!(svc, Err(ServiceError::Build(_))));
    }

    #[test]
    fn failed_batches_publish_nothing() {
        // max_entries = 3 admits the 2-entry base view; the two-insert
        // batch (2 adds + a propagated `a` entry) overflows it.
        let svc = ViewService::build(
            db(),
            Arc::new(NoDomains),
            Operator::Tp,
            SupportMode::WithSupports,
            FixpointConfig {
                max_entries: 3,
                ..FixpointConfig::default()
            },
        )
        .expect("base view fits the budget");
        let err = svc
            .apply(UpdateBatch::inserting(vec![point(30), point(40)]))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Batch(_)));
        assert_eq!(svc.epoch(), 0, "failed batch must not publish");
        assert!(svc.log().is_empty());
        // The writer view was rolled back to the published state: a
        // subsequent in-budget batch applies cleanly.
        let ok = svc.apply(UpdateBatch::deleting(vec![point(5)])).unwrap();
        assert_eq!(ok.epoch, 1);
    }

    #[test]
    fn publication_counts_copied_vs_shared_pages() {
        // Three predicates; b/a form one dependency component and c its
        // own, so the batch below (insert into b, propagate to a) locks
        // only the b/a lane — c's shard is not even touched, let alone
        // copied, and the publish accounting covers the touched lane.
        let db = ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "b",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(9),
                )),
            ),
            Clause::new(
                "a",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("b", vec![x()])],
            ),
            Clause::fact(
                "c",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(100)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(109),
                )),
            ),
        ]);
        let svc = ViewService::build(
            db,
            Arc::new(NoDomains),
            Operator::Tp,
            SupportMode::WithSupports,
            FixpointConfig::default(),
        )
        .unwrap();
        assert_eq!(svc.shard_map().num_shards(), 2);
        let c_shard = svc.shard_map().shard_of("c");
        let applied = svc
            .apply(UpdateBatch::inserting(vec![point(30)]))
            .expect("batch applies");
        assert_eq!(applied.shards_touched, 1);
        let p = applied.publish;
        assert_eq!(p.pred_indexes_total, 2, "the touched lane hosts b and a");
        assert_eq!(
            p.pred_indexes_copied, 2,
            "b (insert) and a (propagation) copied: {p:?}"
        );
        assert!(p.entry_pages_copied >= 1, "the batch touched the slab");
        assert!(p.entry_pages_copied <= p.entry_pages_total as u64);
        // c's shard stayed at epoch 0 while the global epoch moved.
        let snap = svc.snapshot();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.shard_epoch(c_shard), 0);
        assert_eq!(snap.shard_epoch(1 - c_shard), 1);
        // The log carries the same per-epoch accounting.
        assert_eq!(svc.log().records()[0].publish, p);
    }

    #[test]
    fn cross_shard_batches_publish_atomically() {
        // b/a and c are independent; one batch touching both publishes
        // one global epoch with both shard epochs advanced.
        let db = ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "b",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(9),
                )),
            ),
            Clause::new(
                "a",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("b", vec![x()])],
            ),
            Clause::fact(
                "c",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(100)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(109),
                )),
            ),
        ]);
        let svc = ViewService::build(
            db,
            Arc::new(NoDomains),
            Operator::Tp,
            SupportMode::WithSupports,
            FixpointConfig::default(),
        )
        .unwrap();
        let del_c = ConstrainedAtom::new("c", vec![x()], Constraint::eq(x(), Term::int(105)));
        let applied = svc
            .apply(UpdateBatch::deleting(vec![point(3), del_c]))
            .expect("cross-shard batch applies");
        assert_eq!(applied.shards_touched, 2);
        assert_eq!(applied.epoch, 1);
        let snap = svc.snapshot();
        assert_eq!(snap.shard_epoch(0), 1);
        assert_eq!(snap.shard_epoch(1), 1);
        let cfg = SolverConfig::default();
        assert!(!snap.ask("b", &[Value::int(3)], &NoDomains, &cfg).unwrap());
        assert!(!snap.ask("c", &[Value::int(105)], &NoDomains, &cfg).unwrap());
        assert!(snap.ask("c", &[Value::int(104)], &NoDomains, &cfg).unwrap());
        assert_eq!(svc.log().records()[0].shards_touched, 2);
    }

    #[test]
    fn empty_batches_publish_an_epoch_touching_no_lane() {
        let svc = service(SupportMode::WithSupports);
        let applied = svc.apply(UpdateBatch::new()).expect("empty batch applies");
        assert_eq!(applied.epoch, 1);
        assert_eq!(applied.shards_touched, 0);
        let snap = svc.snapshot();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.shard_epoch(0), 0, "no lane was touched");
    }
}
