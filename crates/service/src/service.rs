//! The concurrent view service: one writer, many snapshot readers.
//!
//! # Concurrency model
//!
//! The service keeps two copies of the view state:
//!
//! * the **writer view** — the mutable master, guarded by a `Mutex`
//!   together with the update log. Only [`ViewService::apply`] touches
//!   it, so batches serialize naturally;
//! * the **published snapshot** — an `Arc<ViewSnapshot>` behind an
//!   `RwLock`, replaced wholesale after each successful batch.
//!
//! Readers call [`ViewService::snapshot`], which holds the read lock
//! only long enough to clone the `Arc` — queries then run entirely on
//! the caller's own handle, unsynchronized. A reader is therefore never
//! blocked by maintenance (it reads the previous epoch until the next
//! one is published) and never observes a half-applied batch. Epochs
//! increase monotonically with each publication, so readers can detect
//! staleness and order observations.
//!
//! Failed batches publish nothing: the writer view is rebuilt from the
//! last snapshot, so one poisoned batch cannot corrupt subsequent ones.

use crate::log::{LogRecord, UpdateLog};
use crate::snapshot::{Epoch, PublishStats, ViewSnapshot};
use mmv_constraints::solver::SolverConfig;
use mmv_constraints::{DomainResolver, Value};
use mmv_core::batch::{apply_batch, BatchError, BatchStats, UpdateBatch};
use mmv_core::tp::{fixpoint, FixpointConfig, FixpointError, Operator};
use mmv_core::{ConstrainedDatabase, InstanceError, SupportMode};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A resolver the service can share across reader and writer threads.
pub type SharedResolver = Arc<dyn DomainResolver + Send + Sync>;

/// Service failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Building the initial view failed.
    Build(FixpointError),
    /// Applying a batch failed; the batch was rolled back and the
    /// published snapshot is unchanged.
    Batch(BatchError),
    /// The worker channel is closed (the worker already shut down).
    WorkerGone,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Build(e) => write!(f, "service build: {e}"),
            ServiceError::Batch(e) => write!(f, "service batch: {e}"),
            ServiceError::WorkerGone => write!(f, "service worker has shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The outcome of one applied batch.
#[derive(Debug, Clone, Copy)]
pub struct Applied {
    /// The epoch the batch produced.
    pub epoch: Epoch,
    /// Maintenance statistics.
    pub stats: BatchStats,
    /// Wall-clock maintenance latency (excluding snapshot publication).
    pub latency: Duration,
    /// Publication cost: snapshot freeze-and-swap time and the batch's
    /// copied-vs-shared page accounting.
    pub publish: PublishStats,
}

struct WriterState {
    view: mmv_core::MaterializedView,
    log: UpdateLog,
    epoch: Epoch,
}

/// A long-lived concurrent view service over one constrained database.
///
/// Construct with [`ViewService::build`], share behind an `Arc`, read
/// via [`ViewService::snapshot`] from any thread, and write via
/// [`ViewService::apply`] (directly, or through a [`ServiceWorker`]).
pub struct ViewService {
    db: ConstrainedDatabase,
    resolver: SharedResolver,
    op: Operator,
    config: FixpointConfig,
    published: RwLock<Arc<ViewSnapshot>>,
    writer: Mutex<WriterState>,
}

impl fmt::Debug for ViewService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("ViewService")
            .field("epoch", &snap.epoch())
            .field("entries", &snap.len())
            .field("mode", &snap.mode())
            .finish()
    }
}

impl ViewService {
    /// Builds the initial materialized view (`op ↑ ω (∅)` of `db` in
    /// `mode`) and publishes it as epoch 0.
    pub fn build(
        db: ConstrainedDatabase,
        resolver: SharedResolver,
        op: Operator,
        mode: SupportMode,
        config: FixpointConfig,
    ) -> Result<Self, ServiceError> {
        let (view, _) =
            fixpoint(&db, resolver.as_ref(), op, mode, &config).map_err(ServiceError::Build)?;
        // Epoch 0 takes the freshly built view; the writer's handle is a
        // structurally-shared clone (a few Arc bumps, not a deep copy).
        let snapshot = Arc::new(ViewSnapshot::new(0, view));
        let writer_view = snapshot.view().clone();
        Ok(ViewService {
            db,
            resolver,
            op,
            config,
            published: RwLock::new(snapshot),
            writer: Mutex::new(WriterState {
                view: writer_view,
                log: UpdateLog::new(),
                epoch: 0,
            }),
        })
    }

    /// The database the service maintains the view of.
    pub fn db(&self) -> &ConstrainedDatabase {
        &self.db
    }

    /// The service's shared resolver.
    pub fn resolver(&self) -> &SharedResolver {
        &self.resolver
    }

    /// The fixpoint configuration batches are applied under.
    pub fn config(&self) -> &FixpointConfig {
        &self.config
    }

    /// The current published snapshot. The read lock is held only for
    /// the `Arc` clone; all queries on the returned handle run without
    /// any synchronization with the writer.
    pub fn snapshot(&self) -> Arc<ViewSnapshot> {
        self.published
            .read()
            .expect("snapshot lock poisoned")
            .clone()
    }

    /// The epoch of the current published snapshot.
    pub fn epoch(&self) -> Epoch {
        self.snapshot().epoch()
    }

    /// Applies one batch as a transaction: maintain the writer view,
    /// append to the log, publish the next snapshot. Concurrent calls
    /// serialize on the writer lock; readers are never blocked.
    ///
    /// On error the writer view is restored from the published snapshot
    /// and nothing is published or logged — the failed batch is simply
    /// rejected.
    pub fn apply(&self, batch: UpdateBatch) -> Result<Applied, ServiceError> {
        let mut w = self.writer.lock().expect("writer lock poisoned");
        let before = w.view.share_stats();
        let start = Instant::now();
        let stats = match apply_batch(
            &self.db,
            &mut w.view,
            &batch,
            self.resolver.as_ref(),
            self.op,
            &self.config,
        ) {
            Ok(stats) => stats,
            Err(e) => {
                // Roll back: the failed batch may have half-applied.
                // Re-adopting the published snapshot's handle is a few
                // Arc bumps — the half-applied copies are simply dropped.
                w.view = self.snapshot().view().clone();
                return Err(ServiceError::Batch(e));
            }
        };
        let latency = start.elapsed();
        w.epoch += 1;
        let epoch = w.epoch;
        // Publication: freeze the writer's handle into a snapshot and
        // swap it in. Under the shared store this clones page tables and
        // `Arc`s — O(touched), never O(view) — so a 1-entry batch no
        // longer pays for the whole view to become visible.
        let after = w.view.share_stats();
        let publish_start = Instant::now();
        let snapshot = Arc::new(ViewSnapshot::new(epoch, w.view.clone()));
        *self.published.write().expect("snapshot lock poisoned") = snapshot;
        let publish = PublishStats {
            publish_latency: publish_start.elapsed(),
            entry_pages_copied: after.entry_pages_copied - before.entry_pages_copied,
            entry_pages_total: after.entry_pages,
            pred_indexes_copied: after.pred_indexes_copied - before.pred_indexes_copied,
            pred_indexes_total: after.pred_indexes,
        };
        w.log.append(LogRecord {
            epoch,
            batch,
            stats,
            latency,
            publish,
        });
        Ok(Applied {
            epoch,
            stats,
            latency,
            publish,
        })
    }

    /// Clones the update log (epoch-ordered records of every applied
    /// batch) for replay or inspection.
    pub fn log(&self) -> UpdateLog {
        self.writer
            .lock()
            .expect("writer lock poisoned")
            .log
            .clone()
    }

    /// Convenience read: query the *current* snapshot with the
    /// service's own resolver.
    pub fn query(
        &self,
        pred: &str,
        pattern: &[Option<Value>],
        config: &SolverConfig,
    ) -> Result<BTreeSet<Vec<Value>>, InstanceError> {
        self.snapshot()
            .query(pred, pattern, self.resolver.as_ref(), config)
    }

    /// Convenience read: boolean query against the current snapshot.
    pub fn ask(
        &self,
        pred: &str,
        args: &[Value],
        config: &SolverConfig,
    ) -> Result<bool, InstanceError> {
        self.snapshot()
            .ask(pred, args, self.resolver.as_ref(), config)
    }
}

/// A dedicated writer thread: callers submit batches through a channel
/// and continue immediately; the worker applies them in submission
/// order against the shared service.
///
/// Dropping the last [`BatchSender`] shuts the worker down;
/// [`ServiceWorker::join`] then returns how many batches were applied,
/// or the first error (the worker stops at the first failed batch —
/// submission order is the transaction order, so skipping a failed
/// transaction silently would reorder history).
pub struct ServiceWorker {
    handle: JoinHandle<Result<usize, ServiceError>>,
}

/// The submission side of a [`ServiceWorker`]. Cloneable; all clones
/// feed the same worker.
#[derive(Clone)]
pub struct BatchSender {
    tx: mpsc::Sender<UpdateBatch>,
}

impl BatchSender {
    /// Enqueues a batch for the worker. Fails only if the worker has
    /// already shut down.
    pub fn submit(&self, batch: UpdateBatch) -> Result<(), ServiceError> {
        self.tx.send(batch).map_err(|_| ServiceError::WorkerGone)
    }
}

impl ServiceWorker {
    /// Spawns the writer thread for `service`.
    pub fn spawn(service: Arc<ViewService>) -> (BatchSender, ServiceWorker) {
        let (tx, rx) = mpsc::channel::<UpdateBatch>();
        let handle = std::thread::spawn(move || {
            let mut applied = 0usize;
            for batch in rx {
                service.apply(batch)?;
                applied += 1;
            }
            Ok(applied)
        });
        (BatchSender { tx }, ServiceWorker { handle })
    }

    /// Waits for the worker to drain and shut down (drop every
    /// [`BatchSender`] first, or this blocks forever). Returns the
    /// number of batches applied.
    pub fn join(self) -> Result<usize, ServiceError> {
        self.handle.join().expect("service worker panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmv_constraints::{CmpOp, Constraint, NoDomains, Term, Var};
    use mmv_core::{BodyAtom, Clause, ConstrainedAtom};

    fn x() -> Term {
        Term::var(Var(0))
    }

    fn db() -> ConstrainedDatabase {
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "b",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(9),
                )),
            ),
            Clause::new(
                "a",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("b", vec![x()])],
            ),
        ])
    }

    fn point(v: i64) -> ConstrainedAtom {
        ConstrainedAtom::new("b", vec![x()], Constraint::eq(x(), Term::int(v)))
    }

    fn service(mode: SupportMode) -> ViewService {
        ViewService::build(
            db(),
            Arc::new(NoDomains),
            Operator::Tp,
            mode,
            FixpointConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn snapshots_are_epoch_tagged_and_isolated() {
        let svc = service(SupportMode::WithSupports);
        let before = svc.snapshot();
        assert_eq!(before.epoch(), 0);
        let cfg = SolverConfig::default();
        assert!(before.ask("a", &[Value::int(3)], &NoDomains, &cfg).unwrap());

        let applied = svc
            .apply(UpdateBatch::deleting(vec![point(3)]))
            .expect("batch applies");
        assert_eq!(applied.epoch, 1);
        assert_eq!(svc.epoch(), 1);
        // The old snapshot still answers with the pre-batch state.
        assert!(before.ask("a", &[Value::int(3)], &NoDomains, &cfg).unwrap());
        // The new snapshot reflects the deletion.
        assert!(!svc.ask("a", &[Value::int(3)], &cfg).unwrap());
        assert!(svc.query("a", &[Some(Value::int(4))], &cfg).unwrap().len() == 1);
    }

    #[test]
    fn exhausted_build_budget_is_a_build_error() {
        let svc = ViewService::build(
            db(),
            Arc::new(NoDomains),
            Operator::Tp,
            SupportMode::WithSupports,
            FixpointConfig {
                max_iterations: 0,
                ..FixpointConfig::default()
            },
        );
        assert!(matches!(svc, Err(ServiceError::Build(_))));
    }

    #[test]
    fn failed_batches_publish_nothing() {
        // max_entries = 3 admits the 2-entry base view; the two-insert
        // batch (2 adds + a propagated `a` entry) overflows it.
        let svc = ViewService::build(
            db(),
            Arc::new(NoDomains),
            Operator::Tp,
            SupportMode::WithSupports,
            FixpointConfig {
                max_entries: 3,
                ..FixpointConfig::default()
            },
        )
        .expect("base view fits the budget");
        let err = svc
            .apply(UpdateBatch::inserting(vec![point(30), point(40)]))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Batch(_)));
        assert_eq!(svc.epoch(), 0, "failed batch must not publish");
        assert!(svc.log().is_empty());
        // The writer view was rolled back to the published state: a
        // subsequent in-budget batch applies cleanly.
        let ok = svc.apply(UpdateBatch::deleting(vec![point(5)])).unwrap();
        assert_eq!(ok.epoch, 1);
    }

    #[test]
    fn publication_counts_copied_vs_shared_pages() {
        // Three predicates; the batch below touches only b (insert) and
        // a (propagation) — c's index page must stay physically shared.
        let db = ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "b",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(9),
                )),
            ),
            Clause::new(
                "a",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("b", vec![x()])],
            ),
            Clause::fact(
                "c",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(100)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(109),
                )),
            ),
        ]);
        let svc = ViewService::build(
            db,
            Arc::new(NoDomains),
            Operator::Tp,
            SupportMode::WithSupports,
            FixpointConfig::default(),
        )
        .unwrap();
        let applied = svc
            .apply(UpdateBatch::inserting(vec![point(30)]))
            .expect("batch applies");
        let p = applied.publish;
        assert_eq!(p.pred_indexes_total, 3);
        assert_eq!(
            p.pred_indexes_copied, 2,
            "b (insert) and a (propagation) copied; c shared: {p:?}"
        );
        assert!(p.entry_pages_copied >= 1, "the batch touched the slab");
        assert!(p.entry_pages_copied <= p.entry_pages_total as u64);
        // The log carries the same per-epoch accounting.
        assert_eq!(svc.log().records()[0].publish, p);
    }

    #[test]
    fn worker_applies_in_submission_order() {
        let svc = Arc::new(service(SupportMode::WithSupports));
        let (tx, worker) = ServiceWorker::spawn(svc.clone());
        for v in [2, 4, 6] {
            tx.submit(UpdateBatch::deleting(vec![point(v)])).unwrap();
        }
        drop(tx);
        assert_eq!(worker.join().unwrap(), 3);
        assert_eq!(svc.epoch(), 3);
        let cfg = SolverConfig::default();
        for v in [2, 4, 6] {
            assert!(!svc.ask("b", &[Value::int(v)], &cfg).unwrap());
        }
        assert!(svc.ask("b", &[Value::int(5)], &cfg).unwrap());
        let log = svc.log();
        assert_eq!(log.len(), 3);
        let epochs: Vec<_> = log.records().iter().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![1, 2, 3]);
    }
}
