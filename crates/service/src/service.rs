//! The concurrent view service: per-predicate writer lanes, many
//! snapshot readers.
//!
//! # Concurrency model
//!
//! The clause dependency graph partitions the database's predicates
//! into independent groups ([`ShardMap`]); the service gives each group
//! its own **writer lane** — a mutable shard view plus a shard epoch,
//! guarded by the lane's own `Mutex` — and each lane maintains its
//! slice of the view with the sub-database of its own clauses (original
//! clause numbering preserved, so supports are identical to the
//! unsharded run). Batches that touch one shard take only that lane's
//! lock, so updates to independent predicates maintain concurrently;
//! cross-shard batches acquire their lanes in canonical (ascending
//! shard id) order, which makes lane deadlock impossible.
//!
//! Publication is **two-phase**: after maintenance, each touched lane's
//! view is frozen into a per-shard [`ViewSnapshot`] (phase one, an
//! `Arc`-bump clone under the CoW store), and then all of them are
//! swapped into the published table inside one critical section of a
//! small publication lock, which also advances the global epoch (phase
//! two). Readers call [`ViewService::snapshot`], which clones the whole
//! table under the same lock into a composite [`ServiceSnapshot`] —
//! so a reader observes either none or all of a cross-shard batch's
//! shard snapshots, never a torn multi-shard epoch. Queries then run
//! entirely on the caller's own handles, unsynchronized: readers are
//! never blocked by maintenance and never observe a half-applied batch.
//! The global epoch (one tick per batch) and every shard epoch (one
//! tick per batch touching the shard) increase monotonically.
//!
//! # Durability
//!
//! With [`Durability::durable`] the same critical section also appends
//! the batch as a write-ahead-log frame *before* the swap — a frame
//! that fails to reach the OS rejects the batch like any other error —
//! and the writer then waits (outside all locks) for the group-commit
//! flusher to make the frame durable ([`crate::wal`]). A background
//! thread periodically checkpoints the whole served view
//! ([`crate::checkpoint`]); [`ViewService::recover`] rebuilds the
//! service from the newest valid checkpoint plus the WAL tail.
//!
//! # Failure semantics
//!
//! A batch that fails with an error publishes nothing: every locked
//! lane's writer view is restored from its last published shard
//! snapshot (an `Arc` re-adoption, not a rebuild) and the batch is
//! rejected with [`ServiceError::Batch`] (or
//! [`ServiceError::Storage`], when the WAL append failed). Under
//! [`FsyncPolicy::GroupCommit`] publication is *deferred* until the
//! flusher reports the frame durable — the touched lanes stay locked
//! across the wait — so a batch whose fsync fails is rolled back
//! (lanes, log record, epoch) before any reader could observe it.
//!
//! # Degraded serving
//!
//! Storage faults are classified transient or persistent
//! ([`StorageError::is_transient`]). Transient faults are absorbed by
//! bounded exponential retry ([`crate::RetryPolicy`], configured via
//! [`ServiceConfig::retry`][crate::ServiceConfig]) inside the WAL and
//! checkpointer and never surface. A *persistent* WAL failure rejects
//! the batch and flips the service [`ServiceHealth::ReadOnly`]:
//! subsequent writes fail fast with [`ServiceError::ReadOnly`] (no
//! lane is locked, no ticket burned) while readers keep being served
//! the last published composite snapshot, untouched. A background
//! probe periodically re-opens the WAL and restores
//! [`ServiceHealth::Healthy`] when storage recovers; every transition
//! is journaled ([`ViewService::health_transitions`]) and written to
//! the WAL as a `health` frame. Persistent *checkpoint* failures only
//! degrade health ([`ServiceHealth::Degraded`]) — writes and reads
//! continue, recovery just replays a longer WAL tail — and the
//! checkpointer retries in the background rather than dying.
//!
//! A batch that *panics* mid-application poisons the mutexes of the
//! lanes it held. Poison is not fatal and not contagious: the other
//! lanes keep accepting batches and readers keep being served from the
//! published table throughout. The next `apply` that routes a batch to
//! a poisoned lane recovers it — the poison is cleared, the lane's
//! writer view is rebuilt from its last published shard snapshot, and a
//! [`Recovery`] record is logged — so exactly the panicking batch is
//! lost, and the service keeps serving and accepting batches on every
//! lane. (Historically the writer was a single lane whose poisoned lock
//! made every later call panic; the per-lane recovery above replaced
//! that.)

use crate::checkpoint::{self, CheckpointStats, Checkpointer};
use crate::config::{Durability, ObsOptions, RecoveryReport, ServiceConfig, ViewServiceBuilder};
use crate::health::{Health, HealthProbe, HealthTransition, ServiceHealth};
use crate::log::{DurableLog, LogRecord, LogSink, Recovery, ReplayError, UpdateLog};
use crate::obs::{ServiceObs, StageClock};
use crate::snapshot::{Epoch, PublishStats, ServiceSnapshot, ViewSnapshot};
use crate::vfs::{StdVfs, StorageOp, Vfs};
use crate::wal::{self, FsyncPolicy, StorageError, Wal, WalStats};
use mmv_constraints::solver::SolverConfig;
use mmv_constraints::{DomainResolver, Value};
use mmv_core::batch::{apply_batch_ticketed, BatchError, BatchStats, UpdateBatch};
use mmv_core::delete_dred::DredError;
use mmv_core::parser::WalPayload;
use mmv_core::pool::WorkerPool;
use mmv_core::shard::{ShardId, ShardMap, ShardSpec};
use mmv_core::tp::{fixpoint, FixpointConfig, FixpointError, Operator, ParallelFixpoint};
use mmv_core::view::ShareStats;
use mmv_core::{ConstrainedDatabase, InstanceError, MaterializedView, SupportMode};
use mmv_obs::{BatchTrace, HistogramSnapshot, MetricsRegistry, Stage};
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A resolver the service can share across reader and writer threads.
pub type SharedResolver = Arc<dyn DomainResolver + Send + Sync>;

/// A fault-injection hook: called with the shard id right before each
/// per-lane maintenance step. Tests install one that panics to exercise
/// the poisoned-lane recovery path.
pub type FaultHook = Box<dyn FnMut(ShardId) + Send>;

/// Service failure — the one error type every `mmv-service` entry
/// point reports, layered over the lower-level errors it wraps
/// (reachable through [`std::error::Error::source`]).
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// Building the initial view failed.
    Build(FixpointError),
    /// Applying a batch failed; every touched lane was rolled back and
    /// nothing was published.
    Batch(BatchError),
    /// Re-applying a logged batch during recovery failed.
    Replay(ReplayError),
    /// Durable storage failed: a WAL append or flush, or corrupt
    /// on-disk state during recovery.
    Storage(StorageError),
    /// The service is read-only after a persistent storage failure:
    /// the batch was rejected before touching any lane. Readers are
    /// unaffected; the background probe restores write service when
    /// storage recovers (watch [`ViewService::health`]).
    ReadOnly,
    /// The worker channel is closed (the worker already shut down).
    /// Carries the worker's panic message when it died panicking and
    /// the payload was a string.
    WorkerGone(Option<String>),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Build(e) => write!(f, "service build: {e}"),
            ServiceError::Batch(e) => write!(f, "service batch: {e}"),
            ServiceError::Replay(e) => write!(f, "service recovery: {e}"),
            ServiceError::Storage(e) => write!(f, "service storage: {e}"),
            ServiceError::ReadOnly => write!(
                f,
                "service is read-only: durable storage is unavailable \
                 (reads keep serving the last published snapshot)"
            ),
            ServiceError::WorkerGone(None) => write!(f, "service worker has shut down"),
            ServiceError::WorkerGone(Some(msg)) => {
                write!(f, "service worker has shut down (panicked: {msg})")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Build(e) => Some(e),
            ServiceError::Batch(e) => Some(e),
            ServiceError::Replay(e) => Some(e),
            ServiceError::Storage(e) => Some(e),
            ServiceError::ReadOnly | ServiceError::WorkerGone(_) => None,
        }
    }
}

/// The outcome of one applied batch.
#[derive(Debug, Clone, Copy)]
pub struct Applied {
    /// The global epoch the batch produced.
    pub epoch: Epoch,
    /// Maintenance statistics (merged across the touched shards).
    pub stats: BatchStats,
    /// Wall-clock maintenance latency (excluding snapshot publication).
    pub latency: std::time::Duration,
    /// Publication cost: the two-phase freeze-and-swap time and the
    /// batch's copied-vs-shared page accounting over touched shards.
    pub publish: PublishStats,
    /// Writer lanes the batch touched (≥ 2: a cross-shard publish).
    pub shards_touched: usize,
}

/// One writer lane's mutable state.
struct LaneState {
    view: MaterializedView,
    epoch: Epoch,
}

/// The published table: one frozen snapshot per shard plus the global
/// epoch, swapped together under the publication lock. The composite
/// is prebuilt here at publish time so a reader's
/// [`ViewService::snapshot`] is a single `Arc` clone, not an O(shards)
/// assembly under the read lock.
struct Published {
    shards: Vec<Arc<ViewSnapshot>>,
    epoch: Epoch,
    composite: Arc<ServiceSnapshot>,
    /// Batches appended to the WAL whose publication is deferred on
    /// the group-commit flusher. Checkpoints are staged only when this
    /// is zero: a composite snapshotted with a lower-epoch batch still
    /// in flight would claim WAL coverage it does not have.
    deferred_inflight: usize,
}

/// The durable half of the service: the open WAL, the background
/// checkpointer + health probe, and the checkpoint cadence.
struct DurableState {
    /// Declared first so the probe stops before the rest tears down.
    _probe: HealthProbe,
    wal: Arc<Wal>,
    checkpointer: Checkpointer,
    checkpoint_every: u64,
}

/// Locks a mutex whose guarded state a panic can never leave torn
/// (counters, append-only logs, the hook slot): a poisoned guard is
/// recovered as-is.
fn lock_clean<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => {
            m.clear_poison();
            p.into_inner()
        }
    }
}

/// A batch's reserved external-insertion ticket range, rolled back on
/// drop unless committed. The rollback covers every way maintenance
/// can fail to publish — an error return *or a panic unwinding out of
/// `apply`* — so the global counter stays in step with what
/// [`UpdateLog::replay`] will draw (a panicked batch must not burn
/// tickets: its lanes recover to the pre-batch published state). The
/// rollback is conditional on nothing having interleaved, which makes
/// it exact under sequential use — the scope of the replay guarantee
/// (see `crate::log`).
struct TicketReservation<'a> {
    counter: &'a Mutex<u64>,
    base: u64,
    n: u64,
    committed: bool,
}

impl<'a> TicketReservation<'a> {
    fn reserve(counter: &'a Mutex<u64>, n: u64) -> Self {
        let mut t = lock_clean(counter);
        let base = *t;
        *t += n;
        TicketReservation {
            counter,
            base,
            n,
            committed: false,
        }
    }

    /// Marks the tickets as consumed — called once the batch's shard
    /// snapshots are published (the point of no return).
    fn commit(mut self) {
        self.committed = true;
    }
}

impl Drop for TicketReservation<'_> {
    fn drop(&mut self) {
        if self.committed || self.n == 0 {
            return;
        }
        let mut t = lock_clean(self.counter);
        if *t == self.base + self.n {
            *t = self.base;
        }
    }
}

/// Replay context for one logged batch: publish under the *recorded*
/// epoch with the *recorded* ticket base, and skip the WAL (the record
/// being replayed is already on disk).
struct ReplayCtx {
    epoch: Epoch,
    ticket_base: u64,
}

/// A borrowed view of the service's update log (see
/// [`ViewService::log`]): derefs to [`UpdateLog`]. The guard holds the
/// log lock — writers block while it lives, and calling
/// [`ViewService::apply`] from the same thread while holding one
/// deadlocks — so read what you need and drop it (or `clone()` the
/// `UpdateLog` out for longer inspection).
pub struct LogRead<'a>(MutexGuard<'a, Box<dyn LogSink>>);

impl std::ops::Deref for LogRead<'_> {
    type Target = UpdateLog;

    fn deref(&self) -> &UpdateLog {
        self.0.memory()
    }
}

impl fmt::Debug for LogRead<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.0.memory(), f)
    }
}

/// A long-lived concurrent view service over one constrained database.
///
/// Construct with [`ViewService::builder`] (all knobs defaulted —
/// shard layout, durability, resolver, operator, support mode,
/// fixpoint budgets), share behind an `Arc`, read via
/// [`ViewService::snapshot`] from any thread, and write via
/// [`ViewService::apply`] (directly, or through a
/// [`ServiceWorker`][crate::ServiceWorker]). A durable service is
/// rebuilt after a crash with [`ViewService::recover`].
pub struct ViewService {
    db: ConstrainedDatabase,
    resolver: SharedResolver,
    op: Operator,
    config: FixpointConfig,
    /// The shared intra-lane work-stealing pool, `None` when the
    /// resolved width is 1 (parallelism disabled — batches run the
    /// sequential fixpoint paths). When present, `config.parallel`
    /// routes every lane's hot loops through it.
    pool: Option<Arc<WorkerPool>>,
    shards: Arc<ShardMap>,
    /// Per lane: the sub-database of the shard's clauses.
    lane_dbs: Vec<ConstrainedDatabase>,
    lanes: Vec<Mutex<LaneState>>,
    published: RwLock<Published>,
    /// The update-log sink (in-memory, or WAL-backed). Lock order: the
    /// sink lock is always taken *before* the publication lock by any
    /// thread that holds both.
    log: Mutex<Box<dyn LogSink>>,
    /// Global external-insertion ticket counter: each batch reserves
    /// one ticket per insertion request, so a split batch issues the
    /// same tickets the unsplit batch would.
    tickets: Mutex<u64>,
    /// The next-global-epoch allocator (the last allocated epoch).
    /// Under deferred publication the *published* epoch lags frames
    /// already in the WAL, so allocation cannot read it; this counter
    /// is the source of truth, advanced under the sink lock so WAL
    /// frames append in epoch order.
    next_epoch: Mutex<Epoch>,
    /// Health state machine + transition journal (shared with the
    /// checkpointer and the storage probe).
    health: Arc<Health>,
    durable: Option<DurableState>,
    /// Cheap "a fault hook is installed" flag so the hot write path
    /// never touches the hook mutex (a cross-lane serialization point)
    /// outside of tests.
    fault_armed: AtomicBool,
    fault: Mutex<Option<FaultHook>>,
    /// Unified metrics registry + batch-lifecycle trace ring; every
    /// subsystem's detached counters are registered here.
    pub(crate) obs: ServiceObs,
}

impl fmt::Debug for ViewService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("ViewService")
            .field("epoch", &snap.epoch())
            .field("shards", &snap.shard_count())
            .field("entries", &snap.len())
            .field("mode", &snap.mode())
            .field("durable", &self.durable.is_some())
            .finish()
    }
}

impl ViewService {
    /// A builder with every knob at its default — the construction
    /// API. `ViewService::builder().build(db)` is the minimal service.
    pub fn builder() -> ViewServiceBuilder {
        ViewServiceBuilder::new()
    }

    /// Builds the initial materialized view (`op ↑ ω (∅)` of `db`),
    /// partitions it into writer lanes, and publishes the composite as
    /// global epoch 0. With [`Durability::durable`] the WAL is opened
    /// too — the directory must hold no earlier WAL/checkpoint state
    /// (that is what [`ViewService::recover`] is for).
    pub fn with_config(
        db: ConstrainedDatabase,
        config: ServiceConfig,
    ) -> Result<Self, ServiceError> {
        let ServiceConfig {
            resolver,
            op,
            mode,
            fixpoint: fx,
            shards: spec,
            durability,
            retry,
            observability,
            pool_threads,
            ..
        } = config;
        let (view, _) =
            fixpoint(&db, resolver.as_ref(), op, mode, &fx).map_err(ServiceError::Build)?;
        let shards = Arc::new(ShardMap::from_db(&db, &spec));
        let lane_views = Self::split_view(view, &shards, mode);
        let lane_epochs = vec![0; lane_views.len()];
        let mut svc = Self::assemble(AssembleParts {
            db,
            resolver,
            op,
            config: fx,
            shards,
            lane_views,
            lane_epochs,
            epoch: 0,
            tickets: 0,
            obs: observability,
            pool_threads,
        });
        if let Durability::Durable {
            dir,
            fsync,
            checkpoint_every,
            segment_bytes,
            vfs,
            probe_interval,
        } = durability
        {
            Self::require_fresh_dir(&dir)?;
            let wal = Wal::open_with(vfs.clone(), &dir, fsync, segment_bytes, 1, retry)
                .map_err(ServiceError::Storage)?;
            vfs.register_metrics(&svc.obs.registry);
            wal.metrics().register_into(&svc.obs.registry);
            let checkpointer = Checkpointer::spawn_with(
                vfs,
                dir,
                op,
                wal.clone(),
                retry,
                svc.health.clone(),
                probe_interval,
            );
            checkpointer.metrics().register_into(&svc.obs.registry);
            let probe = HealthProbe::spawn(svc.health.clone(), wal.clone(), probe_interval);
            svc.log = Mutex::new(Box::new(DurableLog::new(wal.clone())));
            svc.durable = Some(DurableState {
                _probe: probe,
                wal,
                checkpointer,
                checkpoint_every,
            });
        }
        Ok(svc)
    }

    /// Recovers a durable service from `dir`: loads the newest valid
    /// checkpoint (if any — otherwise the base fixpoint is rebuilt),
    /// replays every WAL record past it through the normal ticketed
    /// batch path, truncates a torn final frame per the torn-tail
    /// contract, and reopens the WAL for appending. The recovered view
    /// is syntactically identical to the pre-crash served view (for
    /// sequentially applied batches; see the ticket-permutation caveat
    /// in [`crate::log`]).
    ///
    /// `config` must match the database the WAL was written against
    /// (same operator, support mode, and shard layout); fsync and
    /// checkpoint knobs are taken from `config.durability` when it is
    /// durable (its directory is ignored in favor of `dir`).
    pub fn recover(
        dir: &Path,
        db: ConstrainedDatabase,
        config: ServiceConfig,
    ) -> Result<(Self, RecoveryReport), ServiceError> {
        let ServiceConfig {
            resolver,
            op,
            mode,
            fixpoint: fx,
            shards: spec,
            durability,
            retry,
            observability,
            pool_threads,
            ..
        } = config;
        let (fsync, checkpoint_every, segment_bytes, vfs, probe_interval) = match durability {
            Durability::Durable {
                fsync,
                checkpoint_every,
                segment_bytes,
                vfs,
                probe_interval,
                ..
            } => (fsync, checkpoint_every, segment_bytes, vfs, probe_interval),
            _ => (
                FsyncPolicy::GroupCommit(std::time::Duration::ZERO),
                256,
                8 << 20,
                Arc::new(StdVfs) as Arc<dyn Vfs>,
                std::time::Duration::from_millis(250),
            ),
        };
        let chk = checkpoint::load_newest(dir).map_err(ServiceError::Storage)?;
        let scan = wal::scan_dir(dir, true).map_err(ServiceError::Storage)?;
        let shards = Arc::new(ShardMap::from_db(&db, &spec));
        let mismatch = |detail: String| {
            ServiceError::Storage(StorageError::Corrupt {
                file: dir.to_path_buf(),
                offset: 0,
                detail,
            })
        };
        let (lane_views, lane_epochs, base_epoch, base_tickets) = match &chk {
            Some(c) => {
                if c.mode != mode {
                    return Err(mismatch(format!(
                        "checkpoint mode {:?} != configured {:?}",
                        c.mode, mode
                    )));
                }
                if c.op != op {
                    return Err(mismatch(format!(
                        "checkpoint op {:?} != configured {:?}",
                        c.op, op
                    )));
                }
                if c.shards.len() != shards.num_shards() {
                    return Err(mismatch(format!(
                        "checkpoint has {} shards, current layout {}",
                        c.shards.len(),
                        shards.num_shards()
                    )));
                }
                // The lanes' variable generator must clear both the
                // database's own variables and every variable a
                // checkpointed entry uses (entries are stored with
                // exact variable identity).
                let mut gen = db.fresh_gen();
                for (_, entries) in &c.shards {
                    for e in entries {
                        for v in e.atom.free_vars() {
                            gen.reserve_below(v.0 + 1);
                        }
                        let mut vs = Vec::new();
                        for args in &e.children_args {
                            for t in args {
                                t.collect_vars(&mut vs);
                            }
                        }
                        for v in vs {
                            gen.reserve_below(v.0 + 1);
                        }
                    }
                }
                let mut lane_views: Vec<MaterializedView> = (0..shards.num_shards())
                    .map(|_| MaterializedView::new(mode, gen.clone()))
                    .collect();
                for (_, entries) in &c.shards {
                    for e in entries {
                        let s = shards.shard_of(&e.atom.pred);
                        lane_views[s].insert(
                            e.atom.clone(),
                            e.support.clone(),
                            e.children_args.clone(),
                        );
                    }
                }
                let lane_epochs: Vec<Epoch> = c.shards.iter().map(|(e, _)| *e).collect();
                (lane_views, lane_epochs, c.epoch, c.tickets)
            }
            None => {
                let (view, _) =
                    fixpoint(&db, resolver.as_ref(), op, mode, &fx).map_err(ServiceError::Build)?;
                let lane_views = Self::split_view(view, &shards, mode);
                let lane_epochs = vec![0; lane_views.len()];
                (lane_views, lane_epochs, 0, 0)
            }
        };
        let mut svc = Self::assemble(AssembleParts {
            db,
            resolver,
            op,
            config: fx,
            shards,
            lane_views,
            lane_epochs,
            epoch: base_epoch,
            tickets: base_tickets,
            obs: observability,
            pool_threads,
        });
        let mut replayed = 0u64;
        let mut recoveries: Vec<Recovery> = Vec::new();
        for payload in &scan.payloads {
            match payload {
                WalPayload::Batch {
                    epoch,
                    ticket_base,
                    batch,
                } if *epoch > base_epoch => {
                    svc.apply_inner(
                        batch.clone(),
                        Some(ReplayCtx {
                            epoch: *epoch,
                            ticket_base: *ticket_base,
                        }),
                    )
                    .map_err(|e| match e {
                        ServiceError::Batch(be) => {
                            ServiceError::Replay(ReplayError::Batch(*epoch, be))
                        }
                        other => other,
                    })?;
                    replayed += 1;
                }
                WalPayload::Batch { .. } | WalPayload::Checkpoint { .. } => {}
                WalPayload::Recovery { shard, epoch } => recoveries.push(Recovery {
                    shard: *shard,
                    epoch: *epoch,
                }),
                _ => {}
            }
        }
        let recovered_epoch = svc.read_published().epoch;
        let wal = Wal::open_with(vfs.clone(), dir, fsync, segment_bytes, scan.next_seq, retry)
            .map_err(ServiceError::Storage)?;
        vfs.register_metrics(&svc.obs.registry);
        wal.metrics().register_into(&svc.obs.registry);
        let checkpointer = Checkpointer::spawn_with(
            vfs,
            dir.to_path_buf(),
            op,
            wal.clone(),
            retry,
            svc.health.clone(),
            probe_interval,
        );
        checkpointer.metrics().register_into(&svc.obs.registry);
        let probe = HealthProbe::spawn(svc.health.clone(), wal.clone(), probe_interval);
        {
            let mut sink = lock_clean(&svc.log);
            let mut mem = sink.take_memory();
            for r in recoveries {
                mem.record_recovery(r);
            }
            *sink = Box::new(DurableLog::with_memory(wal.clone(), mem));
        }
        svc.durable = Some(DurableState {
            _probe: probe,
            wal,
            checkpointer,
            checkpoint_every,
        });
        let report = RecoveryReport {
            checkpoint_epoch: chk.as_ref().map(|c| c.epoch),
            replayed_records: replayed,
            recovered_epoch,
            torn_tail: scan.torn_tail,
            segments_scanned: scan.segments,
        };
        Ok((svc, report))
    }

    /// Positional construction, superseded by [`ViewService::builder`].
    #[deprecated(since = "0.6.0", note = "use ViewService::builder()")]
    pub fn build(
        db: ConstrainedDatabase,
        resolver: SharedResolver,
        op: Operator,
        mode: SupportMode,
        config: FixpointConfig,
    ) -> Result<Self, ServiceError> {
        ViewService::builder()
            .resolver(resolver)
            .operator(op)
            .mode(mode)
            .fixpoint(config)
            .build(db)
    }

    /// Positional construction with an explicit shard layout,
    /// superseded by [`ViewService::builder`] +
    /// [`ViewServiceBuilder::shards`].
    #[deprecated(since = "0.6.0", note = "use ViewService::builder().shards(spec)")]
    pub fn build_with_shards(
        db: ConstrainedDatabase,
        resolver: SharedResolver,
        op: Operator,
        mode: SupportMode,
        config: FixpointConfig,
        spec: ShardSpec,
    ) -> Result<Self, ServiceError> {
        ViewService::builder()
            .resolver(resolver)
            .operator(op)
            .mode(mode)
            .fixpoint(config)
            .shards(spec)
            .build(db)
    }

    /// Splits a built view into per-shard views: each lane re-hosts
    /// its predicates' entries (supports and children metadata moved
    /// verbatim — clause numbering is global, so they stay valid
    /// against the lane's restricted sub-database). A single lane
    /// adopts the built view as-is.
    fn split_view(
        mut view: MaterializedView,
        shards: &ShardMap,
        mode: SupportMode,
    ) -> Vec<MaterializedView> {
        if shards.is_single() {
            return vec![view];
        }
        let gen = view.var_gen_mut().clone();
        let mut lane_views: Vec<MaterializedView> = (0..shards.num_shards())
            .map(|_| MaterializedView::new(mode, gen.clone()))
            .collect();
        for (_, e) in view.live_entries() {
            let s = shards.shard_of(&e.atom.pred);
            lane_views[s].insert(e.atom.clone(), e.support.clone(), e.children_args.clone());
        }
        lane_views
    }

    /// Assembles the in-memory service from prepared lanes (shared by
    /// fresh construction and recovery).
    fn assemble(parts: AssembleParts) -> ViewService {
        let AssembleParts {
            db,
            resolver,
            op,
            mut config,
            shards,
            lane_views,
            lane_epochs,
            epoch,
            tickets,
            obs: obs_opts,
            pool_threads,
        } = parts;
        let lane_dbs: Vec<ConstrainedDatabase> = (0..shards.num_shards())
            .map(|s| shards.restrict_db(&db, s))
            .collect();
        let mut published = Vec::with_capacity(lane_views.len());
        let mut lanes = Vec::with_capacity(lane_views.len());
        for (lane_view, lane_epoch) in lane_views.into_iter().zip(lane_epochs) {
            // The lane adopts a structurally-shared clone of the
            // published shard snapshot (a few Arc bumps).
            let snapshot = Arc::new(ViewSnapshot::new(lane_epoch, lane_view));
            lanes.push(Mutex::new(LaneState {
                view: snapshot.view().clone(),
                epoch: lane_epoch,
            }));
            published.push(snapshot);
        }
        let composite = Arc::new(ServiceSnapshot::new(
            epoch,
            published.clone(),
            shards.clone(),
        ));
        let health = Arc::new(Health::default());
        health.note_epoch(epoch);
        let obs = ServiceObs::new(&obs_opts, shards.num_shards());
        health.register_into(&obs.registry);
        obs.publish_epoch_hint(epoch);
        // The shared work-stealing pool: builder override, then the
        // MMV_POOL_THREADS environment variable, then the host's
        // available parallelism. Width 1 means no pool at all — every
        // lane runs the sequential fixpoint paths. An explicitly
        // pre-wired `config.parallel` (a caller-owned pool) is
        // respected as-is.
        let threads = Self::resolve_pool_threads(pool_threads);
        let pool = if threads > 1 && config.parallel.is_none() {
            let pool = Arc::new(WorkerPool::new(threads));
            pool.metrics().register_into(&obs.registry);
            config.parallel = Some(ParallelFixpoint {
                pool: Arc::clone(&pool),
                resolver: resolver.clone(),
            });
            Some(pool)
        } else {
            None
        };
        ViewService {
            db,
            resolver,
            op,
            config,
            pool,
            shards,
            lane_dbs,
            lanes,
            published: RwLock::new(Published {
                shards: published,
                epoch,
                composite,
                deferred_inflight: 0,
            }),
            log: Mutex::new(Box::new(UpdateLog::new())),
            tickets: Mutex::new(tickets),
            next_epoch: Mutex::new(epoch),
            health,
            durable: None,
            fault_armed: AtomicBool::new(false),
            fault: Mutex::new(None),
            obs,
        }
    }

    /// Rejects a durable-build directory that already holds WAL or
    /// checkpoint state — building over history would shadow it;
    /// recovery is the explicit path.
    fn require_fresh_dir(dir: &Path) -> Result<(), ServiceError> {
        let dir_err = |op: StorageOp| {
            move |e: std::io::Error| ServiceError::Storage(StorageError::io(op, dir, e))
        };
        std::fs::create_dir_all(dir).map_err(dir_err(StorageOp::Create))?; // mmv-lint: allow(vfs-confine) pre-build freshness probe; runs before the service's Vfs exists
        let entries = std::fs::read_dir(dir).map_err(dir_err(StorageOp::ReadDir))?; // mmv-lint: allow(vfs-confine) pre-build freshness probe; runs before the service's Vfs exists
        for entry in entries {
            let entry = entry.map_err(dir_err(StorageOp::ReadDir))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.starts_with("wal-") || name.starts_with("chk-") {
                return Err(ServiceError::Storage(StorageError::io(
                    StorageOp::Create,
                    dir,
                    std::io::Error::new(
                        std::io::ErrorKind::AlreadyExists,
                        format!(
                            "{} already holds durable state ({name}); use ViewService::recover",
                            dir.display()
                        ),
                    ),
                )));
            }
        }
        Ok(())
    }

    /// The database the service maintains the view of.
    pub fn db(&self) -> &ConstrainedDatabase {
        &self.db
    }

    /// The service's shared resolver.
    pub fn resolver(&self) -> &SharedResolver {
        &self.resolver
    }

    /// The fixpoint configuration batches are applied under.
    pub fn config(&self) -> &FixpointConfig {
        &self.config
    }

    /// The shared intra-lane work-stealing pool, `None` when the
    /// resolved width is 1 (parallelism disabled). All lanes submit
    /// their hot-loop tasks here; its instruments
    /// (`mmv_pool_tasks_total`, `mmv_pool_steals_total`,
    /// `mmv_pool_workers_busy`) are registered in
    /// [`ViewService::metrics`].
    pub fn pool(&self) -> Option<&Arc<WorkerPool>> {
        self.pool.as_ref()
    }

    /// The pool width to use: the builder's override, else the
    /// `MMV_POOL_THREADS` environment variable, else the host's
    /// available parallelism (0 and unparsable values fall through to
    /// the next source).
    fn resolve_pool_threads(requested: Option<usize>) -> usize {
        requested
            .filter(|&n| n > 0)
            .or_else(|| {
                std::env::var("MMV_POOL_THREADS")
                    .ok()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
            })
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    }

    /// The predicate → writer-lane partition.
    pub fn shard_map(&self) -> &ShardMap {
        &self.shards
    }

    /// Cumulative WAL I/O counters (`None` for an in-memory service).
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.durable.as_ref().map(|d| d.wal.stats())
    }

    /// Cumulative checkpoint counters (`None` for an in-memory
    /// service).
    pub fn checkpoint_stats(&self) -> Option<CheckpointStats> {
        self.durable.as_ref().map(|d| d.checkpointer.stats())
    }

    /// The service's current health: `Healthy`, `Degraded` (checkpoints
    /// failing, writes and reads fine), or `ReadOnly` (WAL down, writes
    /// rejected, reads served from the last published snapshot). An
    /// in-memory service is always `Healthy`.
    pub fn health(&self) -> ServiceHealth {
        self.health.current()
    }

    /// The journal of health transitions, oldest first: every flip
    /// between `Healthy`, `Degraded`, and `ReadOnly`, with the epoch it
    /// happened at and the storage error (or probe success) behind it.
    /// The journal is a bounded ring (the newest
    /// [`HEALTH_TRANSITION_CAP`][crate::health::HEALTH_TRANSITION_CAP]
    /// entries); [`ViewService::health_transitions_total`] counts every
    /// transition ever, including evicted ones.
    pub fn health_transitions(&self) -> Vec<HealthTransition> {
        self.health.transitions()
    }

    /// Total health transitions since construction — monotone even
    /// after the bounded journal starts evicting old entries.
    pub fn health_transitions_total(&self) -> u64 {
        self.health.transitions_total()
    }

    /// The service's unified metrics registry: writer-lane, WAL,
    /// checkpoint, health, storage-fault, and core maintenance
    /// counters, all behind lock-free handles. Scrape with
    /// [`MetricsRegistry::render_prometheus`] or
    /// [`MetricsRegistry::render_json`] from any thread, concurrently
    /// with writers — rendering never takes a lock the write path
    /// takes.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.obs.registry
    }

    /// The most recent completed batch traces, oldest first: per-stage
    /// wall-clock through split → lock wait → apply → WAL render →
    /// append → fsync wait → publish → checkpoint staging. Bounded by
    /// [`ObsOptions::trace_capacity`][crate::config::ObsOptions];
    /// empty when observability is disabled.
    pub fn recent_traces(&self) -> Vec<BatchTrace> {
        self.obs.traces.recent()
    }

    /// A snapshot of one pipeline stage's cumulative latency histogram
    /// (nanosecond buckets; derive p50/p99 with
    /// [`HistogramSnapshot::quantile`]).
    pub fn stage_timings(&self, stage: Stage) -> HistogramSnapshot {
        self.obs.stage_histogram(stage).snapshot()
    }

    /// Hands the current composite snapshot to the background
    /// checkpointer regardless of cadence. Returns `false` for an
    /// in-memory service or when a checkpoint is already in flight.
    pub fn request_checkpoint(&self) -> bool {
        let Some(d) = &self.durable else { return false };
        let snap = self.snapshot();
        let tickets = *lock_clean(&self.tickets);
        d.checkpointer.request(snap, tickets)
    }

    /// Installs (or clears) the fault-injection hook called with the
    /// shard id right before each per-lane maintenance step. Test
    /// support: a hook that panics exercises exactly the mid-batch
    /// writer panic the poisoned-lane recovery exists for.
    pub fn set_fault_hook(&self, hook: Option<FaultHook>) {
        self.fault_armed.store(hook.is_some(), Ordering::Release); // order: armed is a fast-path hint; the fault mutex orders the hook value itself
        *lock_clean(&self.fault) = hook;
    }

    /// The publication table, poison-recovered: the write section only
    /// swaps `Arc`s and bumps counters, so a panic can interrupt but
    /// never tear it.
    fn read_published(&self) -> RwLockReadGuard<'_, Published> {
        match self.published.read() {
            Ok(g) => g,
            Err(p) => {
                self.published.clear_poison();
                p.into_inner()
            }
        }
    }

    /// Write side of [`ViewService::read_published`], same recovery.
    fn write_published(&self) -> RwLockWriteGuard<'_, Published> {
        match self.published.write() {
            Ok(g) => g,
            Err(p) => {
                self.published.clear_poison();
                p.into_inner()
            }
        }
    }

    /// Locks one writer lane, recovering it if a previous batch's panic
    /// poisoned the mutex: the poison is cleared, the lane's writer
    /// view re-adopts its last published shard snapshot (dropping
    /// whatever the panicking batch half-applied), and the recovery is
    /// logged. Lanes must be locked in ascending shard order.
    fn lock_lane(&self, shard: ShardId) -> MutexGuard<'_, LaneState> {
        match self.lanes[shard].lock() {
            Ok(g) => g,
            Err(poisoned) => {
                self.lanes[shard].clear_poison();
                let mut g = poisoned.into_inner();
                let (snap, global_epoch) = {
                    let p = self.read_published();
                    (p.shards[shard].clone(), p.epoch)
                };
                g.view = snap.view().clone();
                g.epoch = snap.epoch();
                lock_clean(&self.log).record_recovery(
                    Recovery {
                        shard,
                        epoch: snap.epoch(),
                    },
                    global_epoch,
                );
                g
            }
        }
    }

    /// The current composite snapshot, prebuilt at publish time. The
    /// publication lock is held only for one `Arc` clone; all queries
    /// on the returned snapshot run without any synchronization with
    /// the writer lanes.
    pub fn snapshot(&self) -> Arc<ServiceSnapshot> {
        self.read_published().composite.clone()
    }

    /// The global epoch of the current published state.
    pub fn epoch(&self) -> Epoch {
        self.read_published().epoch
    }

    /// Applies one batch as a transaction: split it by shard, lock the
    /// touched lanes in canonical order, maintain each lane's view with
    /// its own sub-database, then publish all touched shard snapshots
    /// atomically (two-phase publish) and append to the log — for a
    /// durable service the WAL frame is written *before* the swap, and
    /// under group commit the swap itself waits for the flusher to
    /// make the frame durable. Batches on disjoint shards run
    /// concurrently; readers are never blocked.
    ///
    /// On error every touched lane's writer view is restored from its
    /// published shard snapshot and nothing is published or logged —
    /// the failed batch is simply rejected. A persistent storage
    /// failure additionally flips the service read-only: later writes
    /// fail fast with [`ServiceError::ReadOnly`] until the background
    /// probe restores storage (see [`ViewService::health`]).
    pub fn apply(&self, batch: UpdateBatch) -> Result<Applied, ServiceError> {
        let result = self.apply_inner(batch, None);
        if result.is_err() && self.obs.enabled {
            self.obs.batches_failed.inc();
        }
        result
    }

    fn apply_inner(
        &self,
        batch: UpdateBatch,
        replay: Option<ReplayCtx>,
    ) -> Result<Applied, ServiceError> {
        // Fail fast while read-only: the batch is rejected before any
        // lane is locked or ticket reserved, so degraded-mode writes
        // cost almost nothing and never contend with readers. (Replay
        // is exempt — it rebuilds recorded history, it doesn't write.)
        if replay.is_none() && self.health.current() == ServiceHealth::ReadOnly {
            return Err(ServiceError::ReadOnly);
        }
        // The per-batch stage stopwatch. Disabled (or during replay,
        // whose WAL stages never run), it is inert: no clock reads on
        // the uninstrumented path.
        let mut clock = StageClock::new(self.obs.enabled && replay.is_none());
        // Route the batch. The common case — every request in one
        // shard (always true single-lane) — borrows the batch as-is;
        // only genuinely cross-shard batches pay the split's per-atom
        // clones.
        let touched: BTreeSet<ShardId> = batch
            .deletes
            .iter()
            .chain(&batch.inserts)
            .map(|a| self.shards.shard_of(&a.pred))
            .collect();
        let whole_positions: Vec<usize> = (0..batch.inserts.len()).collect();
        let split_parts;
        // Per touched shard, ascending: its slice of the batch and the
        // original positions of its insertions (the ticket offsets).
        let parts: Vec<(ShardId, &UpdateBatch, &[usize])> = if touched.len() <= 1 {
            touched
                .iter()
                .map(|&s| (s, &batch, whole_positions.as_slice()))
                .collect()
        } else {
            split_parts = self.shards.split(&batch);
            split_parts
                .iter()
                .map(|p| (p.shard, &p.batch, p.insert_positions.as_slice()))
                .collect()
        };
        clock.lap(Stage::Split);
        // Reserve the batch's external-insertion tickets: one per
        // request, globally ordered, so shard-split insertion supports
        // match the single-lane (and log-replay) numbering. The RAII
        // reservation rolls the counter back if the batch errors or
        // panics before publication. Replay skips the counter and uses
        // the recorded base instead.
        let n_inserts = batch.inserts.len() as u64;
        let (ticket_base, mut reservation) = match &replay {
            Some(ctx) => (ctx.ticket_base, None),
            None => {
                let r = TicketReservation::reserve(&self.tickets, n_inserts);
                (r.base, Some(r))
            }
        };
        // Lock the touched lanes in ascending shard order (parts are
        // sorted) — the canonical order that makes deadlock impossible.
        // The waiters gauge brackets each acquisition so scrapers see
        // per-lane queueing while it happens.
        let mut guards: Vec<(ShardId, MutexGuard<'_, LaneState>)> = parts
            .iter()
            .map(|&(s, _, _)| {
                if self.obs.enabled {
                    self.obs.lane_waiters[s].inc();
                }
                let g = self.lock_lane(s);
                if self.obs.enabled {
                    self.obs.lane_waiters[s].dec();
                }
                (s, g)
            })
            .collect();
        clock.lap(Stage::LockWait);
        let befores: Vec<ShareStats> = guards.iter().map(|(_, g)| g.view.share_stats()).collect();

        // Obs-gated: `None` (no clock read) when observability is off,
        // so the reported batch latency is zero rather than measured.
        let start = clock.now();
        let mut stats = BatchStats::empty();
        for (&(shard, part_batch, positions), (_, guard)) in parts.iter().zip(guards.iter_mut()) {
            // Fault injection (tests): may panic, poisoning every lane
            // this call still holds — exactly a mid-batch writer panic.
            // The armed flag keeps the hot path off the shared hook
            // mutex when no hook is installed.
            // order: pairs with set_fault_hook's Release; the mutex orders the hook value
            if self.fault_armed.load(Ordering::Acquire) {
                if let Some(hook) = lock_clean(&self.fault).as_mut() {
                    hook(shard);
                }
            }
            let tickets: Vec<u64> = positions.iter().map(|&i| ticket_base + i as u64).collect();
            match apply_batch_ticketed(
                &self.lane_dbs[shard],
                &mut guard.view,
                part_batch,
                &tickets,
                self.resolver.as_ref(),
                self.op,
                &self.config,
            ) {
                Ok(s) => stats.absorb(&s),
                Err(e) => {
                    // Roll back every touched lane — the failing part
                    // may have half-applied, and earlier parts must not
                    // outlive a rejected transaction. Re-adopting the
                    // published handles is a few Arc bumps.
                    {
                        let p = self.read_published();
                        for (s, g) in guards.iter_mut() {
                            g.view = p.shards[*s].view().clone();
                        }
                    }
                    // A contained pool-worker panic arrives here as an
                    // ordinary batch error — the lane mutex was never
                    // poisoned — and the rollback above *is* the lane
                    // recovery. Journal it in the health audit trail.
                    if let Some(msg) = worker_panic(&e) {
                        self.health.lane_event(&format!(
                            "writer lane {shard} recovered after pool worker panic: {msg}"
                        ));
                    }
                    // `reservation` drops here, un-reserving the
                    // tickets (exact under sequential use).
                    return Err(ServiceError::Batch(e));
                }
            }
        }
        let latency = clock.since(start);
        clock.lap(Stage::Apply);
        let shards_touched = parts.len();
        drop(parts); // releases the borrow of `batch` for the log record

        // ---- Two-phase publish -----------------------------------------
        // Phase one: freeze each touched lane into its next shard
        // snapshot (Arc bumps under the shared store, O(touched)).
        let publish_start = clock.now();
        let mut publish = PublishStats::default();
        let mut frozen: Vec<(ShardId, Arc<ViewSnapshot>)> = Vec::with_capacity(guards.len());
        for ((shard, guard), before) in guards.iter_mut().zip(&befores) {
            guard.epoch += 1;
            let after = guard.view.share_stats();
            publish.entry_pages_copied += after.entry_pages_copied - before.entry_pages_copied;
            publish.entry_pages_total += after.entry_pages;
            publish.pred_indexes_copied += after.pred_indexes_copied - before.pred_indexes_copied;
            publish.pred_indexes_total += after.pred_indexes;
            let (by_const_copied, slot_copied) = after.key_copies_since(before);
            publish.by_const_keys_copied += by_const_copied;
            publish.by_const_keys_total += after.by_const_keys;
            publish.slot_keys_copied += slot_copied;
            frozen.push((
                *shard,
                Arc::new(ViewSnapshot::new(guard.epoch, guard.view.clone())),
            ));
        }
        // Phase two: append the log record (for a durable sink: write
        // the WAL frame — write-ahead, so a failed append rejects the
        // batch with nothing published), then swap all touched shards
        // and advance the global epoch inside one publication critical
        // section — readers see the whole batch or none of it, and WAL
        // frames append in epoch order (the epoch allocator is bumped
        // under the sink lock) even when disjoint batches publish
        // concurrently. Under an inline fsync policy the append itself
        // settles durability, so the swap happens right here; under
        // group commit it is *deferred* until the flusher reports the
        // frame durable, so no reader ever observes an epoch that an
        // fsync failure could still roll back. Lock order: sink before
        // publication, for every thread that holds both.
        let defer_publish = replay.is_none()
            && self
                .durable
                .as_ref()
                .is_some_and(|d| matches!(d.wal.policy(), FsyncPolicy::GroupCommit(_)));
        let mut frozen = Some(frozen);
        let mut checkpoint_snapshot: Option<Arc<ServiceSnapshot>> = None;
        let (epoch, wait_lsn) = {
            let mut sink = lock_clean(&self.log);
            let epoch = {
                let mut ne = lock_clean(&self.next_epoch);
                match &replay {
                    Some(ctx) => {
                        *ne = (*ne).max(ctx.epoch);
                        ctx.epoch
                    }
                    None => {
                        *ne += 1;
                        *ne
                    }
                }
            };
            // The view size after this publish: touched shards at
            // their frozen size, the rest as published. (Relative to
            // the *published* table — with other batches' publications
            // still deferred this is a statistic, not an invariant.)
            {
                let p = self.read_published();
                let frozen = frozen.as_ref().expect("not yet consumed");
                let mut total = 0usize;
                let mut fi = 0;
                for (s, snap) in p.shards.iter().enumerate() {
                    if fi < frozen.len() && frozen[fi].0 == s {
                        total += frozen[fi].1.len();
                        fi += 1;
                    } else {
                        total += snap.len();
                    }
                }
                stats.view_entries = total;
            }
            publish.publish_latency = clock.since(publish_start);
            let record = LogRecord {
                epoch,
                batch,
                stats,
                latency,
                publish,
                shards_touched,
            };
            // WAL render and append time themselves inside the traced
            // sink; the plain path skips even that bookkeeping.
            let appended = if clock.enabled() {
                sink.append_traced(record, ticket_base, &mut clock.trace)
            } else {
                sink.append(record, ticket_base)
            };
            let lsn = match appended {
                Ok(lsn) => lsn,
                Err(e) => {
                    // The WAL rejected the frame: the batch must not
                    // publish. Restore every touched lane (view *and*
                    // epoch — phase one already bumped it), hand the
                    // global epoch back, and — on a persistent fault
                    // (transients were already retried away below us)
                    // — flip the service read-only.
                    self.rollback_lanes(&mut guards);
                    self.rewind_epoch(epoch, replay.is_some());
                    if replay.is_none() && !e.is_transient() {
                        self.health.wal_failed(&format!("WAL append failed: {e}"));
                    }
                    return Err(ServiceError::Storage(e));
                }
            };
            if defer_publish && lsn.is_some() {
                self.write_published().deferred_inflight += 1;
                (epoch, lsn)
            } else {
                clock.mark();
                checkpoint_snapshot = self.publish_frozen(
                    epoch,
                    frozen.take().expect("not yet consumed"),
                    reservation.take(),
                    replay.is_none(),
                    false,
                );
                clock.lap(Stage::Publish);
                (epoch, None)
            }
        };
        // The durability wait (group commit only). The touched lanes
        // stay locked — their writer views hold unpublished state —
        // but the sink and publication locks are free, so disjoint
        // batches keep appending and coalesce into the same fsync.
        if let Some(lsn) = wait_lsn {
            let d = self
                .durable
                .as_ref()
                .expect("deferred publication implies a durable service");
            clock.mark();
            match d.wal.wait_durable(lsn) {
                Ok(()) => {
                    clock.lap(Stage::FsyncWait);
                    checkpoint_snapshot = self.publish_frozen(
                        epoch,
                        frozen.take().expect("not yet consumed"),
                        reservation.take(),
                        true,
                        true,
                    );
                    clock.lap(Stage::Publish);
                }
                Err(e) => {
                    // The flusher gave up on this frame: it never
                    // became durable and was truncated from (or queued
                    // for truncation in) its segment. Un-publish
                    // everything — lanes, log record, epoch — and go
                    // read-only; readers keep the last published
                    // composite untouched.
                    self.rollback_lanes(&mut guards);
                    lock_clean(&self.log).retract(epoch);
                    self.rewind_epoch(epoch, false);
                    self.write_published().deferred_inflight -= 1;
                    self.health.wal_failed(&format!("WAL flush failed: {e}"));
                    return Err(ServiceError::Storage(e));
                }
            }
        }
        drop(guards);
        if let Some(ctx) = &replay {
            // Replay restores the ticket counter's high-water mark.
            let mut t = lock_clean(&self.tickets);
            *t = (*t).max(ctx.ticket_base + n_inserts);
        }
        if let Some(snap) = checkpoint_snapshot {
            clock.mark();
            let tickets = *lock_clean(&self.tickets);
            if let Some(d) = &self.durable {
                d.checkpointer.request(snap, tickets);
            }
            clock.lap(Stage::Checkpoint);
        }
        if let Some(mut trace) = clock.finish() {
            trace.epoch = epoch;
            trace.shards_touched = shards_touched as u32;
            self.obs.record_applied(
                trace,
                touched.iter().copied(),
                &stats,
                publish.entry_pages_copied,
                publish.pred_indexes_copied,
                publish.by_const_keys_copied,
                publish.slot_keys_copied,
            );
        }
        Ok(Applied {
            epoch,
            stats,
            latency,
            publish,
            shards_touched,
        })
    }

    /// Swaps a batch's frozen shard snapshots into the published table
    /// and advances the global epoch (monotonically — a deferred
    /// publication can complete after a higher-epoch batch on disjoint
    /// shards). Commits the ticket reservation at the swap, the point
    /// of no return. Returns the composite to hand to the checkpointer
    /// when the batch lands on the checkpoint cadence — only while no
    /// other deferred publication is in flight, so a checkpoint never
    /// claims WAL coverage its snapshot does not contain.
    fn publish_frozen(
        &self,
        epoch: Epoch,
        frozen: Vec<(ShardId, Arc<ViewSnapshot>)>,
        reservation: Option<TicketReservation<'_>>,
        stage_checkpoint: bool,
        was_deferred: bool,
    ) -> Option<Arc<ServiceSnapshot>> {
        let mut p = self.write_published();
        for (shard, snapshot) in frozen {
            p.shards[shard] = snapshot;
        }
        p.epoch = p.epoch.max(epoch);
        if let Some(r) = reservation {
            r.commit();
        }
        p.composite = Arc::new(ServiceSnapshot::new(
            p.epoch,
            p.shards.clone(),
            self.shards.clone(),
        ));
        self.health.note_epoch(p.epoch);
        if was_deferred {
            p.deferred_inflight -= 1;
        }
        if stage_checkpoint && p.deferred_inflight == 0 {
            if let Some(d) = &self.durable {
                if d.checkpoint_every > 0 && epoch % d.checkpoint_every == 0 {
                    return Some(p.composite.clone());
                }
            }
        }
        None
    }

    /// Restores every locked lane to its last published shard snapshot
    /// (view *and* epoch — phase one may already have bumped it): the
    /// rejected batch leaves no trace in any writer lane.
    fn rollback_lanes(&self, guards: &mut [(ShardId, MutexGuard<'_, LaneState>)]) {
        let p = self.read_published();
        for (s, g) in guards.iter_mut() {
            g.view = p.shards[*s].view().clone();
            g.epoch = p.shards[*s].epoch();
        }
    }

    /// Hands a rejected batch's global epoch back to the allocator —
    /// conditional on nothing having interleaved, like the ticket
    /// rollback, so epoch numbering stays gapless under sequential
    /// use. (Replay never allocates, so it never rewinds.)
    fn rewind_epoch(&self, epoch: Epoch, replay: bool) {
        if replay {
            return;
        }
        let mut ne = lock_clean(&self.next_epoch);
        if *ne == epoch {
            *ne = epoch - 1;
        }
    }

    /// Borrows the update log (epoch-ordered records of every applied
    /// batch, plus lane recoveries) for replay or inspection. The
    /// guard holds the log lock — see [`LogRead`].
    pub fn log(&self) -> LogRead<'_> {
        LogRead(lock_clean(&self.log))
    }

    /// Convenience read: query the *current* snapshot with the
    /// service's own resolver.
    pub fn query(
        &self,
        pred: &str,
        pattern: &[Option<Value>],
        config: &SolverConfig,
    ) -> Result<BTreeSet<Vec<Value>>, InstanceError> {
        self.snapshot()
            .query(pred, pattern, self.resolver.as_ref(), config)
    }

    /// Convenience read: boolean query against the current snapshot.
    pub fn ask(
        &self,
        pred: &str,
        args: &[Value],
        config: &SolverConfig,
    ) -> Result<bool, InstanceError> {
        self.snapshot()
            .ask(pred, args, self.resolver.as_ref(), config)
    }
}

/// The panic message when a batch error is a contained pool-worker
/// panic ([`FixpointError::WorkerPanic`]), whichever maintenance phase
/// it escaped from.
fn worker_panic(e: &BatchError) -> Option<&str> {
    match e {
        BatchError::Insert(FixpointError::WorkerPanic { message })
        | BatchError::Dred(DredError::Budget(FixpointError::WorkerPanic { message })) => {
            Some(message)
        }
        _ => None,
    }
}

/// Prepared lanes for [`ViewService::assemble`], shared by fresh
/// construction and recovery.
struct AssembleParts {
    db: ConstrainedDatabase,
    resolver: SharedResolver,
    op: Operator,
    config: FixpointConfig,
    shards: Arc<ShardMap>,
    lane_views: Vec<MaterializedView>,
    lane_epochs: Vec<Epoch>,
    epoch: Epoch,
    tickets: u64,
    obs: ObsOptions,
    pool_threads: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmv_constraints::{CmpOp, Constraint, NoDomains, Term, Var};
    use mmv_core::{BodyAtom, Clause, ConstrainedAtom};

    fn x() -> Term {
        Term::var(Var(0))
    }

    fn db() -> ConstrainedDatabase {
        ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "b",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(9),
                )),
            ),
            Clause::new(
                "a",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("b", vec![x()])],
            ),
        ])
    }

    fn point(v: i64) -> ConstrainedAtom {
        ConstrainedAtom::new("b", vec![x()], Constraint::eq(x(), Term::int(v)))
    }

    fn service(mode: SupportMode) -> ViewService {
        ViewService::builder().mode(mode).build(db()).unwrap()
    }

    #[test]
    fn snapshots_are_epoch_tagged_and_isolated() {
        let svc = service(SupportMode::WithSupports);
        let before = svc.snapshot();
        assert_eq!(before.epoch(), 0);
        assert_eq!(before.shard_count(), 1, "b and a share a component");
        let cfg = SolverConfig::default();
        assert!(before.ask("a", &[Value::int(3)], &NoDomains, &cfg).unwrap());

        let applied = svc
            .apply(UpdateBatch::deleting(vec![point(3)]))
            .expect("batch applies");
        assert_eq!(applied.epoch, 1);
        assert_eq!(applied.shards_touched, 1);
        assert_eq!(svc.epoch(), 1);
        // The old snapshot still answers with the pre-batch state.
        assert!(before.ask("a", &[Value::int(3)], &NoDomains, &cfg).unwrap());
        // The new snapshot reflects the deletion.
        assert!(!svc.ask("a", &[Value::int(3)], &cfg).unwrap());
        assert!(svc.query("a", &[Some(Value::int(4))], &cfg).unwrap().len() == 1);
    }

    #[test]
    fn exhausted_build_budget_is_a_build_error() {
        let svc = ViewService::builder()
            .fixpoint(FixpointConfig {
                max_iterations: 0,
                ..FixpointConfig::default()
            })
            .build(db());
        assert!(matches!(svc, Err(ServiceError::Build(_))));
    }

    #[test]
    fn failed_batches_publish_nothing() {
        // max_entries = 3 admits the 2-entry base view; the two-insert
        // batch (2 adds + a propagated `a` entry) overflows it.
        let svc = ViewService::builder()
            .fixpoint(FixpointConfig {
                max_entries: 3,
                ..FixpointConfig::default()
            })
            .build(db())
            .expect("base view fits the budget");
        let err = svc
            .apply(UpdateBatch::inserting(vec![point(30), point(40)]))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Batch(_)));
        assert_eq!(svc.epoch(), 0, "failed batch must not publish");
        assert!(svc.log().is_empty());
        // The writer view was rolled back to the published state: a
        // subsequent in-budget batch applies cleanly.
        let ok = svc.apply(UpdateBatch::deleting(vec![point(5)])).unwrap();
        assert_eq!(ok.epoch, 1);
    }

    #[test]
    fn publication_counts_copied_vs_shared_pages() {
        // Three predicates; b/a form one dependency component and c its
        // own, so the batch below (insert into b, propagate to a) locks
        // only the b/a lane — c's shard is not even touched, let alone
        // copied, and the publish accounting covers the touched lane.
        let db = ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "b",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(9),
                )),
            ),
            Clause::new(
                "a",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("b", vec![x()])],
            ),
            Clause::fact(
                "c",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(100)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(109),
                )),
            ),
        ]);
        let svc = ViewService::builder().build(db).unwrap();
        assert_eq!(svc.shard_map().num_shards(), 2);
        let c_shard = svc.shard_map().shard_of("c");
        let applied = svc
            .apply(UpdateBatch::inserting(vec![point(30)]))
            .expect("batch applies");
        assert_eq!(applied.shards_touched, 1);
        let p = applied.publish;
        assert_eq!(p.pred_indexes_total, 2, "the touched lane hosts b and a");
        assert_eq!(
            p.pred_indexes_copied, 2,
            "b (insert) and a (propagation) copied: {p:?}"
        );
        assert!(p.entry_pages_copied >= 1, "the batch touched the slab");
        assert!(p.entry_pages_copied <= p.entry_pages_total as u64);
        // c's shard stayed at epoch 0 while the global epoch moved.
        let snap = svc.snapshot();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.shard_epoch(c_shard), 0);
        assert_eq!(snap.shard_epoch(1 - c_shard), 1);
        // The log carries the same per-epoch accounting.
        assert_eq!(svc.log().records()[0].publish, p);
    }

    #[test]
    fn cross_shard_batches_publish_atomically() {
        // b/a and c are independent; one batch touching both publishes
        // one global epoch with both shard epochs advanced.
        let db = ConstrainedDatabase::from_clauses(vec![
            Clause::fact(
                "b",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(0)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(9),
                )),
            ),
            Clause::new(
                "a",
                vec![x()],
                Constraint::truth(),
                vec![BodyAtom::new("b", vec![x()])],
            ),
            Clause::fact(
                "c",
                vec![x()],
                Constraint::cmp(x(), CmpOp::Ge, Term::int(100)).and(Constraint::cmp(
                    x(),
                    CmpOp::Le,
                    Term::int(109),
                )),
            ),
        ]);
        let svc = ViewService::builder().build(db).unwrap();
        let del_c = ConstrainedAtom::new("c", vec![x()], Constraint::eq(x(), Term::int(105)));
        let applied = svc
            .apply(UpdateBatch::deleting(vec![point(3), del_c]))
            .expect("cross-shard batch applies");
        assert_eq!(applied.shards_touched, 2);
        assert_eq!(applied.epoch, 1);
        let snap = svc.snapshot();
        assert_eq!(snap.shard_epoch(0), 1);
        assert_eq!(snap.shard_epoch(1), 1);
        let cfg = SolverConfig::default();
        assert!(!snap.ask("b", &[Value::int(3)], &NoDomains, &cfg).unwrap());
        assert!(!snap.ask("c", &[Value::int(105)], &NoDomains, &cfg).unwrap());
        assert!(snap.ask("c", &[Value::int(104)], &NoDomains, &cfg).unwrap());
        assert_eq!(svc.log().records()[0].shards_touched, 2);
    }

    #[test]
    fn empty_batches_publish_an_epoch_touching_no_lane() {
        let svc = service(SupportMode::WithSupports);
        let applied = svc.apply(UpdateBatch::new()).expect("empty batch applies");
        assert_eq!(applied.epoch, 1);
        assert_eq!(applied.shards_touched, 0);
        let snap = svc.snapshot();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.shard_epoch(0), 0, "no lane was touched");
    }

    #[test]
    fn builder_on_a_dirty_durable_dir_is_refused() {
        let dir = std::env::temp_dir().join(format!("mmv-svc-dirty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("wal-000001.log"),
            "#mmv-wal v1 seg=1 first_epoch=1\n",
        )
        .unwrap();
        let err = ViewService::builder()
            .durability(Durability::durable(&dir))
            .build(db())
            .unwrap_err();
        assert!(matches!(err, ServiceError::Storage(_)), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
